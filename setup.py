"""Setup shim so that ``pip install -e .`` works without the ``wheel`` package.

The environment this reproduction targets has no network access and no
``wheel`` distribution, so PEP 660 editable installs (which build an editable
wheel) are unavailable; the legacy ``setup.py develop`` path used by
``pip install -e . --no-use-pep517`` works everywhere.  All project metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

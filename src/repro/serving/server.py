"""The concurrent serving layer: one mediator, many clients.

The paper's access-server architecture (Section 5) puts a long-lived
mediator process behind many concurrent applications.  Everything below the
mediator facade is now safe under concurrent mutation (see the lock
discipline map in docs/ARCHITECTURE.md); this module adds the *policy* a
shared mediator needs on top of that safety:

* **admission** -- a submission is queued, executed, or refused with an
  explicit verdict ("admitted" / "rejected" / "queue timeout" / "closed"),
  never silently dropped and never an unbounded pile-up;
* **fairness** -- queued submissions are scheduled weighted-fair by priority
  class (stride scheduling, :class:`~repro.runtime.admission.FairQueue`), so
  a flood of cheap queries cannot starve an important one;
* **deadline propagation** -- a submission's timeout covers its whole life:
  time spent waiting in the admission queue is deducted from the execution
  budget, and a submission whose deadline expires while queued is failed
  with the "queue timeout" verdict without ever touching a source;
* **backpressure** -- streamed submissions hand rows to the client through a
  :class:`~repro.runtime.backpressure.BoundedRowQueue`, so a slow reader
  stalls the serving worker (and, transitively, the source cursors) instead
  of buffering an unbounded answer;
* **observability** -- every submission carries a :class:`ServerReport`
  (verdict, queue wait, execution time, rows, backpressure stalls), and
  :meth:`MediatorServer.stats` aggregates the server-wide counters.

The in-flight budget *is* the worker pool: ``ServerConfig.workers`` threads
pop the fair queue, so at most that many queries execute concurrently and
the executor underneath is never oversubscribed by the serving layer.

Lock discipline: the server's own state (closed flag, in-flight count,
counters) is guarded by one condition; the fair queue and each submission's
future have their own locks.  No server lock is held while running a query
or while blocking on a client (the backpressure queue has its own).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import AdmissionError
from repro.runtime.admission import (
    ADMITTED,
    CLOSED,
    QUEUE_TIMEOUT,
    REJECTED,
    FairQueue,
    QueueClosed,
)
from repro.runtime.backpressure import BoundedRowQueue, StreamClosed


@dataclass
class ServerConfig:
    """Knobs of one :class:`MediatorServer`.

    ``workers``
        Serving threads -- and therefore the bounded in-flight query budget:
        at most this many submissions execute concurrently.
    ``max_queue_depth``
        Bound on the admission queue.  A submission arriving with this many
        already waiting is refused immediately with verdict ``"rejected"``
        (load shedding); ``None`` queues without bound.
    ``default_timeout``
        End-to-end deadline, in seconds, for submissions that do not pass
        their own: queue wait plus execution.  ``None`` defers to the
        mediator's configured timeout (queue wait then unbounded).
    ``default_priority``
        Priority class for submissions that do not pass their own.  Under
        contention a class of priority 3 is scheduled three times as often
        as a class of priority 1 (stride scheduling); within a class,
        submissions run FIFO.
    ``stream_buffer_rows``
        Capacity of the per-submission row queue used by streamed
        submissions: how many rows a serving worker may run ahead of a slow
        client before it stalls (backpressure).
    """

    workers: int = 4
    max_queue_depth: int | None = 64
    default_timeout: float | None = None
    default_priority: float = 1.0
    stream_buffer_rows: int = 256


@dataclass
class ServerReport:
    """What happened to one submission, end to end."""

    query: str
    verdict: str
    priority: float
    #: seconds spent queued before a worker picked the submission up.
    queue_wait: float = 0.0
    #: seconds spent executing (0 for submissions that never ran).
    execution_time: float = 0.0
    rows: int = 0
    is_partial: bool = False
    #: True when the submission ran on the streaming engine.
    streamed: bool = False
    #: times the serving worker stalled on the client's row queue
    #: (backpressure; streamed submissions only).
    stalls: int = 0
    error: str | None = None


@dataclass
class _Submission:
    """One queued query plus the future its client is holding."""

    text: str
    priority: float
    timeout: float | None
    #: monotonic end-to-end deadline (None = no deadline).
    deadline: float | None
    submitted_at: float
    stream: bool
    future: "ServerFuture"


class ServerFuture:
    """Client-side handle for one submission.

    ``result()`` blocks until the submission settles and returns the
    :class:`~repro.core.result.QueryResult` (raising
    :class:`~repro.errors.AdmissionError` when the verdict was not
    ``"admitted"``).  Streamed submissions are consumed through
    :meth:`rows` instead -- iterate it to receive rows with backpressure;
    ``result()`` then returns only after the stream is fully drained or
    closed, so don't call it first.  :attr:`report` is available as soon as
    the submission settles.
    """

    def __init__(self, submission_text: str):
        self._text = submission_text
        self._done = threading.Event()
        #: set once the worker has *started* a streamed submission (the row
        #: queue exists) or the submission failed before starting.
        self._started = threading.Event()
        self._result: Any = None
        self._error: BaseException | None = None
        self.report: ServerReport | None = None
        #: backpressure queue of a streamed submission (None otherwise).
        self._rows: BoundedRowQueue | None = None

    # -- settling (worker side) ----------------------------------------------------------
    def _start_stream(self, rows: BoundedRowQueue) -> None:
        self._rows = rows
        self._started.set()

    def _settle(self, result: Any, error: BaseException | None, report: ServerReport) -> None:
        self._result = result
        self._error = error
        self.report = report
        self._started.set()
        self._done.set()

    # -- client side ---------------------------------------------------------------------
    def done(self) -> bool:
        """True once the submission has settled (report available)."""
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> Any:
        """Block until settled; return the QueryResult or raise the failure."""
        if not self._done.wait(timeout):
            raise TimeoutError(f"submission {self._text!r} still pending")
        if self._error is not None:
            raise self._error
        return self._result

    def rows(self) -> Iterator[Any]:
        """Stream the rows of a streamed submission (backpressure-bounded).

        Blocks until the worker opens the stream; raises the admission
        failure if the submission never started, and the execution failure
        (if any) at the end of the rows.  For non-streamed submissions,
        drains ``result()`` instead.
        """
        self._started.wait()
        if self._rows is None:
            result = self.result()
            yield from result.rows()
            return
        yield from self._rows

    def close(self) -> None:
        """Give up on the rows: wakes and cancels a stalled serving worker."""
        if self._rows is not None:
            self._rows.close()

    @property
    def stream_depth(self) -> int:
        """Rows currently buffered for this client (streamed submissions)."""
        return 0 if self._rows is None else len(self._rows)


class MediatorServer:
    """Serve one mediator to many concurrent clients.

    Create via :meth:`repro.core.mediator.Mediator.serve` or directly::

        server = MediatorServer(mediator, config=ServerConfig(workers=8))
        future = server.submit("select x.name from x in person")
        result = future.result()          # QueryResult
        print(future.report.queue_wait)

    ``submit`` never blocks on execution -- it queues (or refuses) and
    returns a :class:`ServerFuture`.  ``close()`` drains gracefully by
    default: new submissions are refused, queued and running ones complete,
    workers are joined.  ``close(drain=False)`` refuses the queue instead
    (verdict ``"closed"``) and only waits for the running queries.
    """

    def __init__(self, mediator, config: ServerConfig | None = None):
        self.mediator = mediator
        self.config = config or ServerConfig()
        if self.config.workers <= 0:
            raise ValueError("workers must be positive")
        self._queue: FairQueue = FairQueue(capacity=self.config.max_queue_depth)
        self._state = threading.Condition()
        self._closed = False
        self._inflight = 0
        # server-wide counters (guarded by _state)
        self._submitted = 0
        self._rejected = 0
        self._timed_out = 0
        self._completed = 0
        self._queue_wait_total = 0.0
        self._workers = [
            threading.Thread(
                target=self._work, name=f"disco-serve-{i}", daemon=True
            )
            for i in range(self.config.workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- client surface -----------------------------------------------------------------
    def submit(
        self,
        text: str,
        timeout: float | None = None,
        priority: float | None = None,
        stream: bool = False,
    ) -> ServerFuture:
        """Queue one query; returns immediately with its future.

        Raises :class:`~repro.errors.AdmissionError` with verdict
        ``"rejected"`` when the admission queue is full and ``"closed"``
        after :meth:`close` -- refusals are synchronous, so a caller that
        got a future knows the query is queued.
        """
        timeout = self.config.default_timeout if timeout is None else timeout
        priority = self.config.default_priority if priority is None else priority
        now = time.monotonic()
        submission = _Submission(
            text=text,
            priority=priority,
            timeout=timeout,
            deadline=None if timeout is None else now + timeout,
            submitted_at=now,
            stream=stream,
            future=ServerFuture(text),
        )
        with self._state:
            if self._closed:
                raise QueueClosed("server closed")
            self._submitted += 1
        try:
            self._queue.push(submission, priority)
        except AdmissionError as exc:
            with self._state:
                if exc.verdict == REJECTED:
                    self._rejected += 1
            raise
        return submission.future

    def stats(self) -> dict[str, Any]:
        """Server-wide counters, one consistent snapshot.

        When the mediator carries an answer cache, its counters are included
        under ``answer_cache`` -- the cache is shared by every worker, so
        concurrent clients' repeated queries hit one another's entries.
        """
        with self._state:
            snapshot = {
                "submitted": self._submitted,
                "rejected": self._rejected,
                "timed_out": self._timed_out,
                "completed": self._completed,
                "inflight": self._inflight,
                "queued": len(self._queue),
                "max_queue_depth": self._queue.max_depth,
                "queue_wait_total": self._queue_wait_total,
                "workers": len(self._workers),
            }
        cache = self.mediator.answer_cache
        if cache is not None:
            snapshot["answer_cache"] = cache.stats()
        return snapshot

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop serving.  New submissions are refused from this point on.

        ``drain=True`` (the default) lets queued and in-flight submissions
        complete (bounded by ``timeout`` seconds overall, ``None`` =
        forever) before shutting the workers down.  ``drain=False`` fails
        everything still queued with verdict ``"closed"`` and waits only for
        the in-flight queries.  Either way every worker thread is joined --
        a closed server leaks nothing.  The mediator itself stays open (and
        usable directly); closing it is the owner's call.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._state:
            if self._closed:
                drain = False  # a second close never waits for new work
            self._closed = True
            if drain:
                self._state.wait_for(
                    lambda: len(self._queue) == 0 and self._inflight == 0,
                    timeout=timeout,
                )
        # Refuse whatever is still queued (nothing, after a complete drain).
        for submission in self._queue.close():
            self._refuse(submission, QueueClosed("server closed"), CLOSED)
        for worker in self._workers:
            remaining = None if deadline is None else max(deadline - time.monotonic(), 0.0)
            worker.join(remaining)

    def __enter__(self) -> "MediatorServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- worker side --------------------------------------------------------------------
    def _work(self) -> None:
        while True:
            try:
                submission = self._queue.pop()
            except QueueClosed:
                return
            with self._state:
                self._inflight += 1
            try:
                self._serve(submission)
            finally:
                with self._state:
                    self._inflight -= 1
                    self._state.notify_all()

    def _refuse(self, submission: _Submission, error: AdmissionError, verdict: str) -> None:
        report = ServerReport(
            query=submission.text,
            verdict=verdict,
            priority=submission.priority,
            queue_wait=time.monotonic() - submission.submitted_at,
            error=str(error),
        )
        submission.future._settle(None, error, report)

    def _serve(self, submission: _Submission) -> None:
        """Run one admitted submission on this worker thread."""
        picked_up = time.monotonic()
        queue_wait = picked_up - submission.submitted_at
        with self._state:
            self._queue_wait_total += queue_wait
        if submission.deadline is not None and picked_up >= submission.deadline:
            with self._state:
                self._timed_out += 1
            self._refuse(
                submission,
                AdmissionError(
                    f"deadline expired after {queue_wait:.4g}s in the serving queue",
                    verdict=QUEUE_TIMEOUT,
                ),
                QUEUE_TIMEOUT,
            )
            return
        # Deadline propagation: what is left after the queue wait is the
        # execution budget.
        remaining = (
            None
            if submission.deadline is None
            else max(submission.deadline - picked_up, 0.0)
        )
        report = ServerReport(
            query=submission.text,
            verdict=ADMITTED,
            priority=submission.priority,
            queue_wait=queue_wait,
            streamed=submission.stream,
        )
        try:
            if submission.stream:
                self._serve_stream(submission, remaining, report)
            else:
                result = self.mediator.query(submission.text, timeout=remaining)
                report.execution_time = time.monotonic() - picked_up
                report.rows = len(result.rows()) if not result.is_partial else 0
                report.is_partial = result.is_partial
                with self._state:
                    self._completed += 1
                submission.future._settle(result, None, report)
        except Exception as exc:
            # A mediator-side error (parse error, planner bug) belongs to
            # this submission's client, never to the worker: settle the
            # future with it.
            report.execution_time = time.monotonic() - picked_up
            report.error = f"{type(exc).__name__}: {exc}"
            submission.future._settle(None, exc, report)

    def _serve_stream(
        self, submission: _Submission, remaining: float | None, report: ServerReport
    ) -> None:
        """Drain a streaming query into the client's bounded row queue."""
        started = time.monotonic()
        rows = BoundedRowQueue(capacity=self.config.stream_buffer_rows)
        result = self.mediator.query_stream(submission.text, timeout=remaining)
        submission.future._start_stream(rows)
        delivered = 0
        error: BaseException | None = None
        try:
            for row in result.iter_rows():
                rows.put(row)  # blocks on a slow client: backpressure
                delivered += 1
        except StreamClosed:
            # The client gave up: cancel the in-flight source calls instead
            # of computing rows nobody will read.
            result.close()
        except Exception as exc:
            error = exc
        finally:
            rows.finish(error)
        report.execution_time = time.monotonic() - started
        report.rows = delivered
        report.stalls = rows.stalls
        report.is_partial = bool(result.unavailable_sources)
        if error is not None:
            report.error = f"{type(error).__name__}: {error}"
        with self._state:
            self._completed += 1
        submission.future._settle(result, error, report)

"""Concurrent serving of one mediator to many clients.

See :mod:`repro.serving.server` for the full story: admission with explicit
verdicts, weighted-fair scheduling, end-to-end deadline propagation, and
backpressure on streamed answers.  The usual entry point is
:meth:`repro.core.mediator.Mediator.serve`.
"""

from repro.serving.server import (
    MediatorServer,
    ServerConfig,
    ServerFuture,
    ServerReport,
)

__all__ = [
    "MediatorServer",
    "ServerConfig",
    "ServerFuture",
    "ServerReport",
]

"""Cooperative cancellation of in-flight exec calls.

A timed-out or no-longer-needed exec call cannot be killed from outside --
its worker thread may be sleeping inside a simulated server's latency model
or waiting on a real socket.  Instead the dispatcher *signals* cancellation
through a :class:`threading.Event`, and the blocking primitives on the call
path check it cooperatively:

* the executor (and the streaming engine) create one event per exec call and
  set it when the call is written off (deadline expiry, query abort, or a
  satisfied ``limit``);
* the worker thread installs its event in a thread-local slot around the
  wrapper round trip (:func:`activate`) -- including mid-stream *reopens*,
  which run on the consumer thread but must still wake when the call is
  written off;
* anything downstream that would block -- the simulated server's latency
  sleep, a retry backoff, the pre-reopen backoff of a mid-stream resume --
  calls :func:`sleep` / :func:`cancelled` instead of :func:`time.sleep`, and
  returns early when the event fires.

This is what keeps the shared worker pool free of zombie threads under
sustained timeouts: a cancelled call stops sleeping immediately instead of
serving out its full simulated latency.

The module is dependency-free on purpose: the *sources* layer may import it
without pulling in the executor.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Iterator

_local = threading.local()


@contextlib.contextmanager
def activate(event: threading.Event | None) -> Iterator[None]:
    """Install ``event`` as the current call's cancellation signal."""
    previous = getattr(_local, "event", None)
    _local.event = event
    try:
        yield
    finally:
        _local.event = previous


def current_event() -> threading.Event | None:
    """The cancellation event of the call running on this thread, if any."""
    return getattr(_local, "event", None)


def cancelled() -> bool:
    """True when the call running on this thread has been cancelled."""
    event = current_event()
    return event is not None and event.is_set()


def sleep(seconds: float) -> bool:
    """Sleep up to ``seconds``; return True when woken early by cancellation."""
    if seconds <= 0:
        return cancelled()
    event = current_event()
    if event is None:
        time.sleep(seconds)
        return False
    return event.wait(seconds)

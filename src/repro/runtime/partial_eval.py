"""Partial evaluation: turning a partly executed plan back into a query.

Paper Section 4: "the physical expression is transformed back into a high
level query.  This transformation is possible because each physical operation
has a corresponding logical operation, and each logical operation has a
corresponding OQL expression."

Concretely:

* every ``exec`` call that *succeeded* becomes a :class:`BagLiteral` holding
  the rows it returned;
* every ``exec`` call that was *unavailable* becomes the ``submit`` logical
  operator it implements (i.e. stays a query);
* every other physical operator becomes its logical counterpart;
* finally, any subtree that contains no ``submit`` is fully evaluable at the
  mediator and is collapsed into data, so the answer has the paper's two-part
  shape: a query over the unavailable sources unioned with the data already
  obtained.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.algebra import logical as log
from repro.algebra import physical as phys
from repro.algebra.unparser import logical_to_oql
from repro.datamodel.values import Struct
from repro.errors import QueryExecutionError
from repro.runtime import operators as ops

ExecOutcome = dict[int, Any]  # id(Exec node) -> list of rows, or an Unavailable marker


class Unavailable:
    """Marker stored in the outcome map for an exec that produced no rows.

    Carries the failure reason (timeout text, wrapper exception, ...) so the
    partial answer can say *why* a source branch stayed a query, not just that
    it did.
    """

    __slots__ = ("error",)

    def __init__(self, error: str | None = None):
        self.error = error

    def __repr__(self) -> str:
        return f"Unavailable({self.error!r})" if self.error else "UNAVAILABLE"


#: the anonymous marker (no recorded reason); kept for tests and callers that
#: build outcome maps by hand.
UNAVAILABLE = Unavailable()


class PartialAnswerBuilder:
    """Builds the partial-answer logical plan and its OQL text."""

    def __init__(self, subquery_evaluator: ops.SubqueryEvaluator | None = None):
        self._subquery_evaluator = subquery_evaluator

    # -- physical -> logical -------------------------------------------------------------
    def to_logical(self, plan: phys.PhysicalOp, outcomes: ExecOutcome) -> log.LogicalOp:
        """Convert a partially executed physical plan back to a logical plan."""
        if isinstance(plan, phys.Exec):
            outcome = outcomes.get(id(plan), UNAVAILABLE)
            if isinstance(outcome, Unavailable):
                return log.Submit(
                    plan.source.name, plan.expression, extent_name=plan.extent_name
                )
            return log.BagLiteral(tuple(outcome))
        if isinstance(plan, phys.MkBag):
            return log.BagLiteral(plan.values)
        if isinstance(plan, phys.MkProj):
            return log.Project(plan.attributes, self.to_logical(plan.child, outcomes))
        if isinstance(plan, phys.Filter):
            return log.Select(plan.variable, plan.predicate, self.to_logical(plan.child, outcomes))
        if isinstance(plan, phys.MkRename):
            return log.Rename(plan.pairs, self.to_logical(plan.child, outcomes))
        if isinstance(plan, phys.MkApply):
            return log.Apply(plan.variable, plan.expression, self.to_logical(plan.child, outcomes))
        if isinstance(plan, (phys.HashJoin, phys.NestedLoopJoin)):
            return log.Join(
                self.to_logical(plan.left, outcomes),
                self.to_logical(plan.right, outcomes),
                plan.on,
            )
        if isinstance(plan, phys.MkBindJoin):
            return log.BindJoin(
                self.to_logical(plan.left, outcomes),
                self.to_logical(plan.right, outcomes),
                plan.left_variable,
                plan.right_variable,
                condition=plan.condition,
            )
        if isinstance(plan, phys.ProbeJoin):
            # The probe exec is not a child (execs_in must not dispatch it
            # eagerly) but it is still an exec: batched rows recorded under it
            # collapse to data, an unprobed/unavailable right side stays the
            # submit it implements -- the ordinary bindjoin partial answer.
            return log.BindJoin(
                self.to_logical(plan.left, outcomes),
                self.to_logical(plan.probe, outcomes),
                plan.left_variable,
                plan.right_variable,
                condition=plan.condition,
            )
        if isinstance(plan, phys.MkUnion):
            return log.Union(tuple(self.to_logical(child, outcomes) for child in plan.inputs))
        if isinstance(plan, phys.MkFlatten):
            return log.Flatten(self.to_logical(plan.child, outcomes))
        if isinstance(plan, phys.MkDistinct):
            return log.Distinct(self.to_logical(plan.child, outcomes))
        if isinstance(plan, phys.MkLimit):
            return log.Limit(plan.count, self.to_logical(plan.child, outcomes))
        if isinstance(plan, phys.MkGroupBy):
            return log.GroupBy(
                plan.variable,
                plan.keys,
                plan.aggregates,
                self.to_logical(plan.child, outcomes),
            )
        raise QueryExecutionError(f"cannot convert {plan.to_text()} back to logical form")

    # -- collapsing available subtrees ---------------------------------------------------
    def simplify(self, plan: log.LogicalOp, base_env: Mapping[str, Any] | None = None) -> log.LogicalOp:
        """Evaluate every submit-free subtree and replace it with its data."""
        plan = self._distribute_over_union(plan)
        if isinstance(plan, log.Submit):
            # The whole submit stays a query: its argument belongs to the
            # unavailable source and cannot be evaluated at the mediator.
            return plan
        if not plan.contains_submit():
            values = self.evaluate_logical(plan, base_env=base_env)
            return log.BagLiteral(tuple(values))
        children = plan.children()
        if not children:
            return plan
        simplified = [self.simplify(child, base_env=base_env) for child in children]
        return plan.with_children(simplified)

    def _distribute_over_union(self, plan: log.LogicalOp) -> log.LogicalOp:
        """Distribute per-element operators over ``union``.

        ``apply(f, union(q, data))`` becomes ``union(apply(f, q), apply(f,
        data))`` so that the data branch collapses to plain values and the
        answer keeps the paper's ``union(<query>, Bag(<data>))`` shape.
        Cascades such as ``apply(project(union(...)))`` distribute fully.

        Only *per-element* operators distribute.  ``distinct`` does not:
        ``distinct(union(a, b))`` must deduplicate across branches, so
        per-branch distincts would let a row present in both the data and the
        recovered source survive resubmission twice.  It stays above the
        union (its submit-free branches still collapse during
        :meth:`simplify`).  ``limit`` likewise stays put, and so does
        ``groupby``: a group must aggregate rows from *every* branch, so
        per-branch grouping would double-count rows once the unavailable
        branch is recovered (the two-phase split that *is* sound lives in
        the optimizer's push-groupby-through-union rewrite, which emits
        combinable partials -- not here).
        """
        if isinstance(plan, (log.Apply, log.Project, log.Rename, log.Select, log.Flatten)):
            child = self._distribute_over_union(plan.child)
            if isinstance(child, log.Union):
                distributed = tuple(
                    self._distribute_over_union(plan.with_children([part]))
                    for part in child.inputs
                )
                return log.Union(distributed)
            return plan.with_children([child])
        return plan

    # -- logical evaluation over data (no submits) ------------------------------------------
    def evaluate_logical(
        self, plan: log.LogicalOp, base_env: Mapping[str, Any] | None = None
    ) -> list[Any]:
        """Evaluate a submit-free logical plan at the mediator.

        The row operators are lazy generators; this entry point materializes
        them (partial answers embed finite data), which also keeps errors --
        like a stray ``submit`` -- eager.
        """
        if isinstance(plan, log.BagLiteral):
            return [ops.as_struct(value) for value in plan.values]
        if isinstance(plan, log.Project):
            return list(
                ops.project_rows(self.evaluate_logical(plan.child, base_env), plan.attributes)
            )
        if isinstance(plan, log.Select):
            return list(
                ops.filter_rows(
                    self.evaluate_logical(plan.child, base_env),
                    plan.variable,
                    plan.predicate,
                    base_env=base_env,
                    subquery_evaluator=self._subquery_evaluator,
                )
            )
        if isinstance(plan, log.Rename):
            return list(
                ops.rename_rows(self.evaluate_logical(plan.child, base_env), plan.pairs)
            )
        if isinstance(plan, log.Apply):
            return list(
                ops.apply_rows(
                    self.evaluate_logical(plan.child, base_env),
                    plan.variable,
                    plan.expression,
                    base_env=base_env,
                    subquery_evaluator=self._subquery_evaluator,
                )
            )
        if isinstance(plan, log.Join):
            return list(
                ops.hash_join_rows(
                    self.evaluate_logical(plan.left, base_env),
                    self.evaluate_logical(plan.right, base_env),
                    plan.on,
                )
            )
        if isinstance(plan, log.BindJoin):
            return list(
                ops.bind_join_rows(
                    self.evaluate_logical(plan.left, base_env),
                    self.evaluate_logical(plan.right, base_env),
                    plan.left_variable,
                    plan.right_variable,
                    plan.condition,
                    base_env=base_env,
                    subquery_evaluator=self._subquery_evaluator,
                )
            )
        if isinstance(plan, log.Union):
            return list(
                ops.union_rows(
                    [self.evaluate_logical(child, base_env) for child in plan.inputs]
                )
            )
        if isinstance(plan, log.Flatten):
            return list(ops.flatten_rows(self.evaluate_logical(plan.child, base_env)))
        if isinstance(plan, log.Distinct):
            return list(ops.distinct_rows(self.evaluate_logical(plan.child, base_env)))
        if isinstance(plan, log.Limit):
            return self.evaluate_logical(plan.child, base_env)[: max(plan.count, 0)]
        if isinstance(plan, log.GroupBy):
            return list(
                ops.group_rows(
                    self.evaluate_logical(plan.child, base_env),
                    plan.variable,
                    plan.keys,
                    plan.aggregates,
                    base_env=base_env,
                    subquery_evaluator=self._subquery_evaluator,
                )
            )
        if isinstance(plan, log.Submit):
            raise QueryExecutionError(
                "cannot evaluate a submit at the mediator; partial evaluation should "
                "have kept it as a query"
            )
        if isinstance(plan, log.Get):
            raise QueryExecutionError(
                f"get({plan.collection}) outside a submit cannot be evaluated at the mediator"
            )
        raise QueryExecutionError(f"cannot evaluate logical operator {plan.to_text()}")

    # -- the public assembly step --------------------------------------------------------
    def build(
        self,
        plan: phys.PhysicalOp,
        outcomes: ExecOutcome,
        base_env: Mapping[str, Any] | None = None,
    ) -> log.LogicalOp:
        """Physical plan + exec outcomes -> simplified partial-answer logical plan."""
        logical = self.to_logical(plan, outcomes)
        return self.simplify(logical, base_env=base_env)

    def to_oql(self, partial_plan: log.LogicalOp) -> str:
        """Render the partial answer as OQL text (the answer *is* a query)."""
        return logical_to_oql(partial_plan)

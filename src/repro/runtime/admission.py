"""Admission control for a shared mediator: budgets, fairness, verdicts.

One long-lived mediator serving many concurrent clients needs three things
the single-query code path never did:

* a **bounded in-flight budget** -- at most N queries executing at once, so
  a traffic burst queues instead of oversubscribing the shared thread pool;
* a **bounded wait queue** -- beyond a depth limit new work is *rejected*
  immediately (the caller gets a verdict, not a hang), so memory stays
  bounded under overload;
* **weighted-fair scheduling** -- when a slot frees up, the next query is
  chosen by stride scheduling over priority classes, so a flood of
  low-priority queries cannot starve a high-priority one and one
  pathological client cannot monopolize the pool.

:class:`FairQueue` is the scheduling core: a thread-safe queue whose
``pop`` interleaves priority classes in proportion to their weights.
:class:`AdmissionController` layers the budget semantics on top:
``acquire`` blocks (fairly) for a slot, respecting per-query deadlines, and
``release`` hands the slot to the next waiter.  Both are engine-agnostic;
the serving layer (:mod:`repro.serving`) and the executor use the same
machinery.

Lock discipline: each class owns one :class:`threading.Condition` guarding
all of its mutable state; no call path holds it while blocking on anything
except the condition itself, and neither class calls out to user code under
the lock.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque

from repro.errors import AdmissionError

#: Admission verdicts, as carried by :class:`AdmissionError` and the serving
#: layer's per-query reports.
ADMITTED = "admitted"
REJECTED = "rejected"
QUEUE_TIMEOUT = "queue timeout"
CLOSED = "closed"


class QueueClosed(AdmissionError):
    """The queue/controller was closed while the caller was waiting on it."""

    def __init__(self, message: str = "admission queue closed"):
        super().__init__(message, verdict=CLOSED)


@dataclass
class _PriorityClass:
    """Book-keeping for one priority weight inside a :class:`FairQueue`."""

    weight: float
    entries: Deque[Any] = field(default_factory=deque)
    #: stride-scheduling pass value: advanced by ``1 / weight`` per pop, so
    #: a class of weight 3 is chosen three times as often as a class of
    #: weight 1 when both have work queued.
    pass_value: float = 0.0


class FairQueue:
    """A bounded, thread-safe queue with weighted-fair ordering.

    ``push(item, priority)`` enqueues FIFO *within* its priority class and
    raises :class:`AdmissionError` (verdict ``"rejected"``) when the queue
    is at capacity.  ``pop`` returns the next item by stride scheduling
    across the non-empty classes: each pop advances the chosen class's pass
    value by ``1 / priority``, and the non-empty class with the smallest
    pass value wins.  A class that was idle re-enters at the current virtual
    time (the minimum active pass), so sleeping does not bank credit.
    """

    def __init__(self, capacity: int | None = None):
        if capacity is not None and capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._condition = threading.Condition()
        self._classes: dict[float, _PriorityClass] = {}
        self._size = 0
        self._closed = False
        #: high-water mark of the queue depth (serving-layer statistics).
        self.max_depth = 0

    def __len__(self) -> int:
        with self._condition:
            return self._size

    def push(self, item: Any, priority: float = 1.0) -> None:
        """Enqueue ``item``; raise (verdict ``rejected``) when full or closed."""
        if priority <= 0:
            raise ValueError("priority must be positive")
        with self._condition:
            if self._closed:
                raise QueueClosed()
            if self.capacity is not None and self._size >= self.capacity:
                raise AdmissionError(
                    f"admission queue full ({self._size} waiting)", verdict=REJECTED
                )
            entry_class = self._classes.get(priority)
            if entry_class is None:
                entry_class = self._classes[priority] = _PriorityClass(weight=priority)
            if not entry_class.entries:
                # Re-entering after idling: no banked credit -- start at the
                # current virtual time so fairness is measured while active.
                active = [
                    c.pass_value for c in self._classes.values() if c.entries
                ]
                if active:
                    entry_class.pass_value = max(entry_class.pass_value, min(active))
            entry_class.entries.append(item)
            self._size += 1
            self.max_depth = max(self.max_depth, self._size)
            self._condition.notify()

    def pop(self, timeout: float | None = None) -> Any:
        """Dequeue the next item by weighted-fair order.

        Blocks up to ``timeout`` seconds; raises :class:`QueueClosed` once
        the queue is closed *and* drained, and ``TimeoutError`` when the
        wait expires with nothing available.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            while self._size == 0:
                if self._closed:
                    raise QueueClosed()
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError("fair queue pop timed out")
                self._condition.wait(remaining)
            chosen = min(
                (c for c in self._classes.values() if c.entries),
                key=lambda c: c.pass_value,
            )
            chosen.pass_value += 1.0 / chosen.weight
            self._size -= 1
            return chosen.entries.popleft()

    def remove(self, item: Any) -> bool:
        """Withdraw a queued item (a waiter giving up); True when found."""
        with self._condition:
            for entry_class in self._classes.values():
                try:
                    entry_class.entries.remove(item)
                except ValueError:
                    continue
                self._size -= 1
                return True
            return False

    def close(self) -> list[Any]:
        """Close the queue; return (and drop) everything still queued."""
        with self._condition:
            self._closed = True
            drained: list[Any] = []
            for entry_class in self._classes.values():
                drained.extend(entry_class.entries)
                entry_class.entries.clear()
            self._size = 0
            self._condition.notify_all()
            return drained


@dataclass
class AdmissionStats:
    """Counters accumulated by one :class:`AdmissionController`."""

    admitted: int = 0
    rejected: int = 0
    timed_out: int = 0
    #: total seconds admitted queries spent waiting for a slot.
    queue_wait: float = 0.0
    max_queue_depth: int = 0
    max_inflight_seen: int = 0


class _Waiter:
    """One thread blocked in :meth:`AdmissionController.acquire`."""

    __slots__ = ("event",)

    def __init__(self) -> None:
        self.event = threading.Event()


@dataclass(frozen=True)
class AdmissionTicket:
    """Proof of admission: how long the query queued, under which priority."""

    priority: float
    queue_wait: float
    verdict: str = ADMITTED


class AdmissionController:
    """Bounded in-flight budget with weighted-fair queuing of waiters.

    ``acquire(priority, deadline)`` returns an :class:`AdmissionTicket` once
    a slot is free, choosing among concurrent waiters by the
    :class:`FairQueue` discipline.  It raises :class:`AdmissionError` with
    verdict ``"rejected"`` when the wait queue is full, ``"queue timeout"``
    when ``deadline`` (a ``time.monotonic`` instant) passes first, and
    :class:`QueueClosed` when the controller shuts down.  Every successful
    ``acquire`` must be paired with exactly one ``release``.
    """

    def __init__(self, max_inflight: int, max_queue_depth: int | None = None):
        if max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        self.max_inflight = max_inflight
        self._queue = FairQueue(capacity=max_queue_depth)
        self._lock = threading.Lock()
        self._inflight = 0
        self._closed = False
        self.stats = AdmissionStats()

    # -- the admission path ------------------------------------------------------------
    def acquire(self, priority: float = 1.0, deadline: float | None = None) -> AdmissionTicket:
        """Block (fairly) until a slot is free; return the admission ticket."""
        started = time.monotonic()
        with self._lock:
            if self._closed:
                raise QueueClosed("admission controller closed")
            if self._inflight < self.max_inflight and len(self._queue) == 0:
                self._inflight += 1
                self.stats.admitted += 1
                self.stats.max_inflight_seen = max(
                    self.stats.max_inflight_seen, self._inflight
                )
                return AdmissionTicket(priority=priority, queue_wait=0.0)
        waiter = _Waiter()
        try:
            self._queue.push(waiter, priority)
        except AdmissionError as exc:
            with self._lock:
                if exc.verdict == REJECTED:
                    self.stats.rejected += 1
            raise
        with self._lock:
            self.stats.max_queue_depth = max(self.stats.max_queue_depth, len(self._queue))
        # A slot may have freed between the fast path and the push; make sure
        # somebody wakes the queue head.
        self._promote()
        remaining = None if deadline is None else max(deadline - time.monotonic(), 0.0)
        if waiter.event.wait(remaining):
            with self._lock:
                if self._closed:
                    # Promoted and closed in the same instant: hand the slot back.
                    self._inflight -= 1
                    raise QueueClosed("admission controller closed")
            queue_wait = time.monotonic() - started
            with self._lock:
                self.stats.admitted += 1
                self.stats.queue_wait += queue_wait
                self.stats.max_inflight_seen = max(
                    self.stats.max_inflight_seen, self._inflight
                )
            return AdmissionTicket(priority=priority, queue_wait=queue_wait)
        # Deadline expired while queued: withdraw.  Losing the removal race
        # means a promotion already granted us the slot -- give it back.
        if self._queue.remove(waiter):
            with self._lock:
                self.stats.timed_out += 1
            raise AdmissionError(
                f"deadline expired after {time.monotonic() - started:.4g}s in the "
                "admission queue",
                verdict=QUEUE_TIMEOUT,
            )
        waiter.event.wait()  # the promotion is committed; take the slot...
        self.release()  # ...and return it immediately.
        with self._lock:
            self.stats.timed_out += 1
        raise AdmissionError(
            "deadline expired while being admitted", verdict=QUEUE_TIMEOUT
        )

    def release(self) -> None:
        """Free one slot and promote the fairest waiter, if any."""
        with self._lock:
            self._inflight -= 1
        self._promote()

    def _promote(self) -> None:
        """Grant free slots to queued waiters in weighted-fair order."""
        while True:
            with self._lock:
                if self._closed or self._inflight >= self.max_inflight:
                    return
                try:
                    waiter = self._queue.pop(timeout=0)
                except (TimeoutError, QueueClosed):
                    return
                self._inflight += 1
            waiter.event.set()

    # -- introspection / shutdown -----------------------------------------------------
    @property
    def inflight(self) -> int:
        """Queries currently holding a slot."""
        with self._lock:
            return self._inflight

    @property
    def queued(self) -> int:
        """Waiters currently queued for a slot."""
        return len(self._queue)

    def close(self) -> None:
        """Refuse new work and wake every queued waiter with a closed verdict."""
        with self._lock:
            self._closed = True
        for waiter in self._queue.close():
            # Waking without granting: their acquire() re-checks _closed...
            # except the event *is* the grant signal.  Mark the grant and let
            # acquire() observe _closed and hand the slot back.
            with self._lock:
                self._inflight += 1
            waiter.event.set()

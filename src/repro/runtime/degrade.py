"""Degrading pushdown retries: the capability-failure recovery ladder.

A wrapper call fails for two very different reasons.  A *transient* fault
(network hiccup, crash, overload) may well succeed if the same expression is
simply re-submitted -- the classic retry-with-backoff path.  A *capability or
translation* failure is deterministic: the wrapper (or its translator)
rejected the pushed expression, so re-submitting it verbatim can only fail
the same way.  This happens when a wrapper's declared grammar is wider than
what its translator actually handles -- the SQL wrapper accepts ``select``
but not every predicate, a source upgrades or downgrades behind a stale
capability declaration, a hand-built plan overreaches.

The adaptive policy implemented here reacts by *degrading the pushdown*
instead of repeating it: each retry strips the outermost
mediator-compensable operator from the pushed expression (``limit``,
``project``, ``select``, ``flatten``, ``groupby`` -- whichever is on top)
until, ultimately, a bare ``get`` is submitted.  Every rung is strictly
smaller than the one before, so the ladder always terminates.  The stripped
operators are re-applied at the mediator over the rows that come back
(:func:`compensate_rows`), so the answer's semantics never change -- only
where the work happens does.  Expressions whose top is a multi-leaf operator
(a pushed ``join`` or ``union``) cannot be degraded further without splitting
the call, so the ladder stops there.

Both execution engines use this module: the barrier executor inside
:meth:`Executor._run_exec` and the streaming engine when opening a call.

Interplay with mid-stream resume (the streaming engine's recovery of calls
that die *after* delivering rows): compensation changes the relationship
between source cursor positions and delivered rows -- a stripped ``select``
filters, a stripped ``flatten`` expands -- so a degraded call can never be
resumed from a source-side token.  A degraded resubmission after partial
delivery therefore always takes the *replay* path: the reopened stream is
re-compensated from scratch with the same stripped operators (every rung of
the ladder computes the same overall expression, so a deterministic source
reproduces the identical output prefix whatever rung the reopen lands on)
and the mediator skips the rows it already delivered.  Symmetrically, when a
*reopen* itself hits a capability failure and degrades mid-recovery, the
streaming engine abandons the token it was about to use and falls back to
replay-and-skip for the same reason.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.algebra import logical as log
from repro.errors import CapabilityError, WrapperError
from repro.runtime.operators import as_struct

#: exception types that indicate the *expression* was the problem, not the
#: source's health: degrading the pushdown may succeed where repeating fails.
DEGRADABLE_ERRORS = (CapabilityError, WrapperError, NotImplementedError)

#: unary operators the mediator can replay over returned rows.  Exactly the
#: unary members of the pushable vocabulary: ``distinct`` is absent because
#: it never crosses the wrapper boundary (and the source-algebra evaluator
#: used for compensation cannot replay it).  ``rename`` is strippable like
#: ``project``: the ladder peels an alias layer off the pushdown and the
#: mediator replays it, so aliased pushdowns degrade coherently.  ``groupby``
#: is strippable too: a source without the terminal ships its (filtered) raw
#: rows and the mediator re-aggregates them -- the partial-aggregation
#: compensation, identical in both engines because both funnel through
#: :func:`compensate_rows`.
_STRIPPABLE = (log.Limit, log.Project, log.Rename, log.Select, log.Flatten, log.GroupBy)

#: leaf name standing for "the rows the degraded call returned" during
#: compensation; never reaches a wrapper.
_DEGRADED_LEAF = "__degraded_rows__"


def is_capability_failure(exc: BaseException) -> bool:
    """True when ``exc`` looks like a capability/translation problem."""
    return isinstance(exc, DEGRADABLE_ERRORS)


def degrade_pushdown(
    expression: log.LogicalOp,
) -> tuple[log.LogicalOp, log.LogicalOp] | None:
    """One rung down the ladder: strip the outermost compensable operator.

    Returns ``(smaller_expression, stripped_operator)``, or ``None`` when the
    expression is already minimal (a bare ``get``, a literal, or a multi-leaf
    operator the mediator cannot compensate for).
    """
    if isinstance(expression, _STRIPPABLE):
        return expression.child, expression
    return None


def degradation_ladder(expression: log.LogicalOp) -> list[log.LogicalOp]:
    """Every successively smaller pushdown, outermost-stripped first.

    ``degradation_ladder(limit(5, select(p, get(c))))`` is
    ``[select(p, get(c)), get(c)]``.  Used by documentation and tests; the
    executors walk the ladder one rung per retry via :func:`degrade_pushdown`.
    """
    ladder: list[log.LogicalOp] = []
    step = degrade_pushdown(expression)
    while step is not None:
        expression, _ = step
        ladder.append(expression)
        step = degrade_pushdown(expression)
    return ladder


def compensate_rows(
    stripped: Iterable[log.LogicalOp], rows: Iterable[Any]
) -> Iterator[Any]:
    """Replay the stripped operators at the mediator, lazily.

    ``stripped`` is the list of operators removed from the pushdown,
    outermost first (the order :func:`degrade_pushdown` produced them);
    ``rows`` are the degraded call's rows *already in mediator vocabulary*
    (renamed through the extent's local transformation map).  Pushable
    predicates are self-contained by construction -- they mention only the
    select's own variable and constants -- so replaying them over the rows
    reproduces exactly what the source would have computed.
    """
    from repro.wrappers.base import AlgebraEvaluator  # local: avoid cycle

    stripped = list(stripped)
    if not stripped:
        yield from rows
        return
    expression: log.LogicalOp = log.Get(_DEGRADED_LEAF)
    for operator in reversed(stripped):
        expression = operator.with_children([expression])
    evaluator = AlgebraEvaluator(scan=lambda _name: rows)
    for row in evaluator.evaluate_stream(expression):
        yield as_struct(row)

"""Backpressure between a streaming producer and a slow consumer.

The streaming engine is pull-based: rows are computed on the consumer's
thread, so a direct caller of ``Mediator.query_stream`` can never out-run
itself.  A *serving* layer breaks that property: a worker thread drains the
pipeline on behalf of a remote client, and if the client reads slowly the
worker must **stall** rather than buffer the whole answer in memory.

:class:`BoundedRowQueue` is the bridge: the producer's ``put`` blocks while
the queue holds ``capacity`` undelivered rows, the consumer's iteration
unblocks it row by row, and either side can end the transfer -- the
producer by ``finish`` (optionally with the error that ended the stream),
the consumer by ``close`` (which wakes a blocked producer with
:class:`StreamClosed`, so the upstream pipeline is cancelled instead of
computing rows nobody will read).

Lock discipline: one :class:`threading.Condition` guards the deque and the
closed/finished flags; ``put``/``get`` block only on that condition and no
user code runs under it.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Iterator

from repro.errors import DiscoError


class StreamClosed(DiscoError):
    """The consumer closed the stream; the producer must stop computing rows."""


_END = object()  # sentinel queued by finish()


class BoundedRowQueue:
    """A bounded, closeable handoff queue for one streaming result.

    One producer, any number of (externally serialized) consumers.  The
    bound is what turns a slow reader into backpressure: ``put`` blocks once
    ``capacity`` rows are undelivered, which suspends the producer's pull
    from the operator pipeline, which leaves the source cursors untouched --
    nothing upstream buffers unboundedly on behalf of a lagging client.
    """

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._condition = threading.Condition()
        self._rows: Deque[Any] = deque()
        self._closed = False
        self._finished = False
        self._error: BaseException | None = None
        #: rows handed over so far (serving-layer statistics).
        self.delivered = 0
        #: how many times the producer blocked on a full queue.
        self.stalls = 0

    # -- producer side -----------------------------------------------------------------
    def put(self, row: Any) -> None:
        """Enqueue one row; block while the consumer is ``capacity`` rows behind.

        Raises :class:`StreamClosed` once the consumer has closed -- the
        producer should treat it as cancellation, not failure.
        """
        with self._condition:
            if len(self._rows) >= self.capacity and not self._closed:
                self.stalls += 1
            while len(self._rows) >= self.capacity:
                if self._closed:
                    raise StreamClosed("consumer closed the stream")
                self._condition.wait()
            if self._closed:
                raise StreamClosed("consumer closed the stream")
            self._rows.append(row)
            self._condition.notify_all()

    def finish(self, error: BaseException | None = None) -> None:
        """Mark the stream complete (``error`` re-raises on the consumer side)."""
        with self._condition:
            if self._finished:
                return
            self._finished = True
            self._error = error
            self._rows.append(_END)
            self._condition.notify_all()

    # -- consumer side -----------------------------------------------------------------
    def __iter__(self) -> Iterator[Any]:
        """Yield rows until the producer finishes; re-raise its terminal error."""
        while True:
            with self._condition:
                while not self._rows:
                    if self._closed:
                        return
                    self._condition.wait()
                row = self._rows.popleft()
                if row is _END:
                    error = self._error
                    if error is not None:
                        raise error
                    return
                self.delivered += 1
                self._condition.notify_all()
            yield row

    def close(self) -> None:
        """Consumer gives up: drop queued rows and wake a blocked producer."""
        with self._condition:
            self._closed = True
            self._rows.clear()
            self._condition.notify_all()

    @property
    def closed(self) -> bool:
        with self._condition:
            return self._closed

    def __len__(self) -> int:
        with self._condition:
            return len(self._rows)

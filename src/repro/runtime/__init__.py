"""The mediator run-time system (paper Sections 3.3 and 4).

* :mod:`repro.runtime.operators` -- row-level implementations shared by the
  physical-plan executor and the partial-answer simplifier;
* :mod:`repro.runtime.executor` -- executes physical plans: dispatches every
  ``exec`` call in parallel, applies local transformation maps, records call
  costs in the history, evaluates the mediator-side operators and assembles
  the answer;
* :mod:`repro.runtime.partial_eval` -- when some sources are unavailable,
  transforms the partially evaluated physical plan back into a logical plan
  and then into OQL text: the answer to the query is itself a query.
"""

from repro.runtime.answercache import AnswerCache
from repro.runtime.executor import ExecutionResult, Executor, ExecReport
from repro.runtime.partial_eval import PartialAnswerBuilder
from repro.runtime.operators import Env
from repro.runtime.streaming import StreamingExecution

__all__ = [
    "AnswerCache",
    "ExecutionResult",
    "Executor",
    "ExecReport",
    "PartialAnswerBuilder",
    "Env",
    "StreamingExecution",
]

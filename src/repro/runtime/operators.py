"""Row-level operator implementations shared across the run-time system.

Elements flowing through a plan are either data values (usually
:class:`~repro.datamodel.values.Struct` rows) or :class:`Env` objects --
variable environments produced by ``bindjoin`` for multi-variable queries.
Predicates and select items are evaluated with an environment that merges the
query's outer environment (for correlated subqueries), the element's own
bindings (when it is an :class:`Env`) and the operator's bound variable.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from repro.algebra.expressions import (
    BooleanExpr,
    Comparison,
    Expr,
    Path,
    Var,
    split_conjuncts,
)
from repro.datamodel.values import Bag, Struct

SubqueryEvaluator = Callable[[Any, Mapping[str, Any]], Any]


class Env(dict):
    """A variable environment element: maps variable names to their rows."""


def element_environment(
    element: Any, variable: str, base_env: Mapping[str, Any] | None
) -> dict[str, Any]:
    """Build the evaluation environment for one element."""
    env: dict[str, Any] = dict(base_env or {})
    if isinstance(element, Env):
        env.update(element)
    else:
        env[variable] = element
    return env


def as_struct(row: Any) -> Any:
    """Convert plain dict rows to structs; other values pass through."""
    if isinstance(row, Struct):
        return row
    if isinstance(row, dict):
        return Struct(row)
    return row


def project_rows(elements: Iterable[Any], attributes: tuple[str, ...]) -> list[Any]:
    """Keep only ``attributes`` of each record (records stay records)."""
    result: list[Any] = []
    for element in elements:
        row = element
        if isinstance(row, Env):
            # Projection over an environment is ambiguous; it never occurs in
            # translated plans, but fall back to the first binding for safety.
            row = next(iter(row.values())) if row else row
        if isinstance(row, Mapping):
            result.append(Struct({attr: row.get(attr) for attr in attributes}))
        else:
            result.append(Struct({attr: getattr(row, attr, None) for attr in attributes}))
    return result


def filter_rows(
    elements: Iterable[Any],
    variable: str,
    predicate: Expr,
    base_env: Mapping[str, Any] | None = None,
    subquery_evaluator: SubqueryEvaluator | None = None,
) -> list[Any]:
    """Keep elements for which ``predicate`` evaluates to true."""
    kept: list[Any] = []
    for element in elements:
        env = element_environment(element, variable, base_env)
        if predicate.evaluate(env, subquery_evaluator):
            kept.append(element)
    return kept


def apply_rows(
    elements: Iterable[Any],
    variable: str,
    expression: Expr,
    base_env: Mapping[str, Any] | None = None,
    subquery_evaluator: SubqueryEvaluator | None = None,
) -> list[Any]:
    """Compute ``expression`` for every element."""
    result: list[Any] = []
    for element in elements:
        env = element_environment(element, variable, base_env)
        result.append(expression.evaluate(env, subquery_evaluator))
    return result


def hash_join_rows(
    left: Iterable[Any], right: Iterable[Any], on: str | tuple[str, str]
) -> list[Any]:
    """Equi-join plain rows on an attribute; the merged row keeps left values."""
    left_attr, right_attr = on if isinstance(on, tuple) else (on, on)
    buckets: dict[Any, list[Any]] = {}
    for row in right:
        key = _attribute_value(row, right_attr)
        buckets.setdefault(key, []).append(row)
    joined: list[Any] = []
    for row in left:
        key = _attribute_value(row, left_attr)
        for match in buckets.get(key, []):
            merged = dict(match if isinstance(match, Mapping) else match.fields())
            merged.update(dict(row if isinstance(row, Mapping) else row.fields()))
            joined.append(Struct(merged))
    return joined


def nested_loop_join_rows(
    left: Iterable[Any], right: Iterable[Any], on: str | tuple[str, str]
) -> list[Any]:
    """Nested-loop equi-join (same semantics as the hash join, different cost)."""
    left_attr, right_attr = on if isinstance(on, tuple) else (on, on)
    right_rows = list(right)
    joined: list[Any] = []
    for row in left:
        left_key = _attribute_value(row, left_attr)
        for match in right_rows:
            if _attribute_value(match, right_attr) == left_key:
                merged = dict(match if isinstance(match, Mapping) else match.fields())
                merged.update(dict(row if isinstance(row, Mapping) else row.fields()))
                joined.append(Struct(merged))
    return joined


def bind_join_rows(
    left: Iterable[Any],
    right: Iterable[Any],
    left_variable: str,
    right_variable: str,
    condition: Expr | None,
    base_env: Mapping[str, Any] | None = None,
    subquery_evaluator: SubqueryEvaluator | None = None,
) -> list[Env]:
    """Join producing variable environments (multi-variable ``from`` clauses).

    When the condition contains an equi-join conjunct between the two sides a
    hash join is used; otherwise every pair is enumerated.
    """
    left_elements = list(left)
    right_elements = list(right)
    equi = _find_equi_conjunct(condition, left_variable, right_variable) if condition else None
    result: list[Env] = []

    def make_env(left_element: Any, right_element: Any) -> Env:
        env = Env()
        if isinstance(left_element, Env):
            env.update(left_element)
        else:
            env[left_variable] = left_element
        env[right_variable] = right_element
        return env

    def passes(env: Env) -> bool:
        if condition is None:
            return True
        full_env = dict(base_env or {})
        full_env.update(env)
        return bool(condition.evaluate(full_env, subquery_evaluator))

    if equi is not None:
        left_expr, right_expr = equi
        buckets: dict[Any, list[Any]] = {}
        for element in right_elements:
            env = make_env(Env(), element)
            key = right_expr.evaluate({**(base_env or {}), **env}, subquery_evaluator)
            buckets.setdefault(key, []).append(element)
        for left_element in left_elements:
            left_env = (
                dict(left_element) if isinstance(left_element, Env) else {left_variable: left_element}
            )
            key = left_expr.evaluate({**(base_env or {}), **left_env}, subquery_evaluator)
            for right_element in buckets.get(key, []):
                env = make_env(left_element, right_element)
                if passes(env):
                    result.append(env)
        return result

    for left_element in left_elements:
        for right_element in right_elements:
            env = make_env(left_element, right_element)
            if passes(env):
                result.append(env)
    return result


def _find_equi_conjunct(
    condition: Expr | None, left_variable: str, right_variable: str
) -> tuple[Expr, Expr] | None:
    """Find a ``left.a = right.b`` conjunct usable as a hash-join key."""
    for conjunct in split_conjuncts(condition):
        if not isinstance(conjunct, Comparison) or conjunct.op != "=":
            continue
        left_vars = conjunct.left.free_variables()
        right_vars = conjunct.right.free_variables()
        if left_vars == {left_variable} and right_vars == {right_variable}:
            return conjunct.left, conjunct.right
        if left_vars == {right_variable} and right_vars == {left_variable}:
            return conjunct.right, conjunct.left
    return None


def _attribute_value(row: Any, attribute: str) -> Any:
    if isinstance(row, Mapping):
        return row.get(attribute)
    if isinstance(row, Struct):
        return row[attribute] if attribute in row else None
    return getattr(row, attribute, None)


def union_rows(parts: Iterable[Iterable[Any]]) -> list[Any]:
    """Additive bag union of several element lists."""
    result: list[Any] = []
    for part in parts:
        result.extend(part)
    return result


def flatten_rows(elements: Iterable[Any]) -> list[Any]:
    """Flatten one level of nested collections."""
    result: list[Any] = []
    for element in elements:
        if isinstance(element, (Bag, list, tuple, set, frozenset)):
            result.extend(element)
        else:
            result.append(element)
    return result


def distinct_rows(elements: Iterable[Any]) -> list[Any]:
    """Remove duplicates, keeping the first occurrence."""
    seen: list[Any] = []
    for element in elements:
        if element not in seen:
            seen.append(element)
    return seen

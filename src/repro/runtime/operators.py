"""Row-level operator implementations shared across the run-time system.

Elements flowing through a plan are either data values (usually
:class:`~repro.datamodel.values.Struct` rows) or :class:`Env` objects --
variable environments produced by ``bindjoin`` for multi-variable queries.
Predicates and select items are evaluated with an environment that merges the
query's outer environment (for correlated subqueries), the element's own
bindings (when it is an :class:`Env`) and the operator's bound variable.

Every operator is a *lazy generator* (Volcano-style): it consumes its input
iterator one element at a time and yields output elements as they are ready.
Nothing is materialized except the unavoidable state an operator needs --
a hash join builds only its build (right) side, ``distinct`` keeps the set of
elements already emitted, everything else runs in O(1) memory.  This is what
lets ``limit`` terminate a pipeline early and keeps peak memory bounded by
the largest *build side*, not the largest intermediate result.

Callers that need a list simply wrap a pipeline in ``list(...)``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.algebra.expressions import (
    Expr,
    find_equi_conjunct,
)
from repro.datamodel.values import Bag, Struct

SubqueryEvaluator = Callable[[Any, Mapping[str, Any]], Any]


class Env(dict):
    """A variable environment element: maps variable names to their rows."""


#: The OQL translator folds multi-variable ``from`` clauses into bind joins
#: whose elements are environments bound to this reserved variable name.
ENV_VARIABLE = "_env"


def env_bindings(element: Any, variable: str) -> dict[str, Any]:
    """The variable bindings one element contributes to an environment.

    An :class:`Env` contributes its entries.  A *mapping* bound to the
    reserved environment variable is an environment that lost its type --
    partial answers embed half-joined environments as ``struct`` literals,
    and the text round trip reparses them as structs -- so its fields splat
    back into variables.  Anything else binds ``variable`` alone.
    """
    if isinstance(element, Env):
        return dict(element)
    if variable == ENV_VARIABLE and isinstance(element, Mapping):
        return {variable: element, **dict(element)}
    return {variable: element}


def element_environment(
    element: Any, variable: str, base_env: Mapping[str, Any] | None
) -> dict[str, Any]:
    """Build the evaluation environment for one element."""
    env: dict[str, Any] = dict(base_env or {})
    env.update(env_bindings(element, variable))
    return env


def as_struct(row: Any) -> Any:
    """Convert plain dict rows to structs; other values pass through.

    Environment elements (:class:`Env`) pass through unchanged: they are
    variable bindings, not data rows -- struct-ifying them would strand the
    bound variables when a resubmitted partial answer re-joins its embedded
    half-evaluated environments.
    """
    if isinstance(row, (Struct, Env)):
        return row
    if isinstance(row, dict):
        return Struct(row)
    return row


def project_rows(elements: Iterable[Any], attributes: tuple[str, ...]) -> Iterator[Any]:
    """Keep only ``attributes`` of each record (records stay records)."""
    for element in elements:
        row = element
        if isinstance(row, Env):
            # Projection over an environment is ambiguous; it never occurs in
            # translated plans, but fall back to the first binding for safety.
            row = next(iter(row.values())) if row else row
        if isinstance(row, Mapping):
            yield Struct({attr: row.get(attr) for attr in attributes})
        else:
            yield Struct({attr: getattr(row, attr, None) for attr in attributes})


def rename_rows(
    elements: Iterable[Any], pairs: tuple[tuple[str, str], ...]
) -> Iterator[Any]:
    """Project each record to the ``(old, new)`` aliased attributes."""
    for element in elements:
        row = element
        if isinstance(row, Env):
            row = next(iter(row.values())) if row else row
        if isinstance(row, Mapping):
            yield Struct({new: row.get(old) for old, new in pairs})
        else:
            yield Struct({new: getattr(row, old, None) for old, new in pairs})


def filter_rows(
    elements: Iterable[Any],
    variable: str,
    predicate: Expr,
    base_env: Mapping[str, Any] | None = None,
    subquery_evaluator: SubqueryEvaluator | None = None,
) -> Iterator[Any]:
    """Keep elements for which ``predicate`` evaluates to true."""
    for element in elements:
        env = element_environment(element, variable, base_env)
        if predicate.evaluate(env, subquery_evaluator):
            yield element


def apply_rows(
    elements: Iterable[Any],
    variable: str,
    expression: Expr,
    base_env: Mapping[str, Any] | None = None,
    subquery_evaluator: SubqueryEvaluator | None = None,
) -> Iterator[Any]:
    """Compute ``expression`` for every element."""
    for element in elements:
        env = element_environment(element, variable, base_env)
        yield expression.evaluate(env, subquery_evaluator)


def _merged_row(left_row: Any, right_row: Any) -> Struct:
    """Merge a matched pair; left values win on shared attribute names."""
    merged = dict(right_row if isinstance(right_row, Mapping) else right_row.fields())
    merged.update(dict(left_row if isinstance(left_row, Mapping) else left_row.fields()))
    return Struct(merged)


def hash_join_rows(
    left: Iterable[Any], right: Iterable[Any], on: str | tuple[str, str]
) -> Iterator[Any]:
    """Equi-join plain rows on an attribute; the merged row keeps left values.

    Only the *right* (build) side is materialized -- into the hash table the
    probe needs anyway; the left side streams through unbuffered.
    """
    left_attr, right_attr = on if isinstance(on, tuple) else (on, on)
    buckets: dict[Any, list[Any]] = {}
    for row in right:
        key = _attribute_value(row, right_attr)
        buckets.setdefault(key, []).append(row)
    for row in left:
        key = _attribute_value(row, left_attr)
        for match in buckets.get(key, []):
            yield _merged_row(row, match)


def materialized(rows: Iterable[Any]) -> "list[Any] | tuple[Any, ...]":
    """Return ``rows`` as a sequence, without copying one that already is.

    The inner side of a nested loop (and of the bind-join fallback) must be
    re-scannable, but callers frequently hold a list already -- the barrier
    engine's exec outcomes, ``evaluate_logical``'s materialized children.
    Copying those into a fresh list per call site doubled peak memory for
    zero benefit; sharing the one materialization is satellite work of the
    probe-join PR (see the ``NestedLoopJoin`` cost comment).
    """
    if isinstance(rows, (list, tuple)):
        return rows
    return list(rows)


def nested_loop_join_rows(
    left: Iterable[Any], right: Iterable[Any], on: str | tuple[str, str]
) -> Iterator[Any]:
    """Nested-loop equi-join (same semantics as the hash join, different cost).

    The right side is materialized once and shared (it is re-scanned per
    left element, and an already-materialized input is not copied); the left
    side streams.
    """
    left_attr, right_attr = on if isinstance(on, tuple) else (on, on)
    right_rows = materialized(right)
    for row in left:
        left_key = _attribute_value(row, left_attr)
        for match in right_rows:
            if _attribute_value(match, right_attr) == left_key:
                yield _merged_row(row, match)


def bind_join_rows(
    left: Iterable[Any],
    right: Iterable[Any],
    left_variable: str,
    right_variable: str,
    condition: Expr | None,
    base_env: Mapping[str, Any] | None = None,
    subquery_evaluator: SubqueryEvaluator | None = None,
) -> Iterator[Env]:
    """Join producing variable environments (multi-variable ``from`` clauses).

    When the condition contains an equi-join conjunct between the two sides a
    hash join is used; otherwise every pair is enumerated.  Either way only
    the right side is materialized (as the build table / inner loop); the
    left side streams.
    """
    equi = _find_equi_conjunct(condition, left_variable, right_variable) if condition else None

    def make_env(left_element: Any, right_element: Any) -> Env:
        env = Env(env_bindings(left_element, left_variable))
        env[right_variable] = right_element
        return env

    def passes(env: Env) -> bool:
        if condition is None:
            return True
        full_env = dict(base_env or {})
        full_env.update(env)
        return bool(condition.evaluate(full_env, subquery_evaluator))

    if equi is not None:
        left_expr, right_expr = equi
        buckets: dict[Any, list[Any]] = {}
        for element in right:
            env = make_env(Env(), element)
            key = right_expr.evaluate({**(base_env or {}), **env}, subquery_evaluator)
            buckets.setdefault(key, []).append(element)
        for left_element in left:
            left_env = env_bindings(left_element, left_variable)
            key = left_expr.evaluate({**(base_env or {}), **left_env}, subquery_evaluator)
            for right_element in buckets.get(key, []):
                env = make_env(left_element, right_element)
                if passes(env):
                    yield env
        return

    right_elements = materialized(right)
    for left_element in left:
        for right_element in right_elements:
            env = make_env(left_element, right_element)
            if passes(env):
                yield env


def probe_join_rows(
    left: Iterable[Any],
    left_variable: str,
    right_variable: str,
    condition: Expr,
    prober: Callable[[list[Any]], Mapping[Any, list[Any]]],
    batch_size: int,
    base_env: Mapping[str, Any] | None = None,
    subquery_evaluator: SubqueryEvaluator | None = None,
) -> Iterator[Env]:
    """Batched bind join: probe the right source with batches of left keys.

    Collects up to ``batch_size`` left elements, extracts each element's join
    key with the equi conjunct of ``condition``, deduplicates the keys, and
    asks ``prober`` -- an engine-supplied closure that issues one set-valued
    (``in``-list) submit per batch, or its degraded equivalents -- for the
    matching right rows bucketed by key.  Matches fan back out to ``Env``
    bindings and the *full* condition is re-checked per pair, so conjuncts
    beyond the equi key still filter.

    ``None`` keys are never probed: ``=`` is None-rejecting, so they cannot
    match.  Keys repeated *within* a batch are probed once here; keys
    repeated *across* batches are the prober's per-query cache's job.
    """
    equi = _find_equi_conjunct(condition, left_variable, right_variable)
    if equi is None:
        raise ValueError("probe join requires an equi-join conjunct")
    left_expr, _ = equi
    batch_size = max(1, batch_size)

    def make_env(left_element: Any, right_element: Any) -> Env:
        env = Env(env_bindings(left_element, left_variable))
        env[right_variable] = right_element
        return env

    def passes(env: Env) -> bool:
        full_env = dict(base_env or {})
        full_env.update(env)
        return bool(condition.evaluate(full_env, subquery_evaluator))

    batch: list[tuple[Any, Any]] = []  # (left element, its join key)

    def flush() -> Iterator[Env]:
        keys: list[Any] = []
        seen: set[Any] = set()
        for _, key in batch:
            if key is None or key in seen:
                continue
            seen.add(key)
            keys.append(key)
        buckets = prober(keys) if keys else {}
        for element, key in batch:
            if key is None:
                continue
            for right_element in buckets.get(key, ()):
                env = make_env(element, right_element)
                if passes(env):
                    yield env
        batch.clear()

    for element in left:
        env = element_environment(element, left_variable, base_env)
        key = left_expr.evaluate(env, subquery_evaluator)
        batch.append((element, key))
        if len(batch) >= batch_size:
            yield from flush()
    if batch:
        yield from flush()


# Re-exported under the historical private name; the implementation lives
# with the expression helpers so the optimizer can use it without importing
# the runtime package (which would be circular).
_find_equi_conjunct = find_equi_conjunct


def _attribute_value(row: Any, attribute: str) -> Any:
    if isinstance(row, Mapping):
        return row.get(attribute)
    if isinstance(row, Struct):
        return row[attribute] if attribute in row else None
    return getattr(row, attribute, None)


def union_rows(parts: Iterable[Iterable[Any]]) -> Iterator[Any]:
    """Additive bag union: stream each part in turn."""
    for part in parts:
        yield from part


def flatten_rows(elements: Iterable[Any]) -> Iterator[Any]:
    """Flatten one level of nested collections."""
    for element in elements:
        if isinstance(element, (Bag, list, tuple, set, frozenset)):
            yield from element
        else:
            yield element


def distinct_rows(elements: Iterable[Any]) -> Iterator[Any]:
    """Remove duplicates, keeping (and immediately yielding) the first occurrence.

    Hashable elements are tracked in a set; unhashable ones (environments,
    rows containing lists) fall back to a linear scan over the unhashable
    elements already emitted.  Only those fallback elements are kept in the
    list -- hashable rows live once, in the set, so a streaming ``distinct``
    over a large extent does not hold every emitted row live twice.
    """
    seen_hashable: set[Any] = set()
    emitted_unhashable: list[Any] = []
    for element in elements:
        try:
            if element in seen_hashable:
                continue
            seen_hashable.add(element)
        except TypeError:
            if element in emitted_unhashable:
                continue
            emitted_unhashable.append(element)
        yield element


def _group_hash_key(values: tuple[Any, ...]) -> tuple[Any, ...]:
    """A hashable stand-in for a tuple of key values (rows may nest lists)."""
    parts = []
    for value in values:
        try:
            hash(value)
            parts.append(value)
        except TypeError:
            parts.append(("__unhashable__", repr(value)))
    return tuple(parts)


class _Accumulator:
    """Running state of one aggregate over one group.

    The NULL semantics here are shared with the mini-SQL engine so pushed and
    mediator-compensated aggregation agree: ``count`` counts rows whose
    argument is not None (a bare variable argument counts every row, like
    ``COUNT(*)``); the other aggregates skip None values and yield None when
    no value survives.
    """

    __slots__ = ("func", "count", "total", "extreme", "seen")

    def __init__(self, func: str):
        self.func = func
        self.count = 0
        self.total: Any = None
        self.extreme: Any = None
        self.seen = False

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.count += 1
        if self.func == "count":
            return
        if self.func in ("sum", "avg"):
            self.total = value if self.total is None else self.total + value
            return
        if not self.seen:
            self.extreme = value
            self.seen = True
        elif self.func == "min":
            if value < self.extreme:
                self.extreme = value
        elif value > self.extreme:
            self.extreme = value

    def result(self) -> Any:
        if self.func == "count":
            return self.count
        if self.func == "sum":
            return self.total
        if self.func == "avg":
            return None if self.count == 0 else self.total / self.count
        return self.extreme


def group_rows(
    elements: Iterable[Any],
    variable: str,
    keys: tuple[tuple[str, Expr], ...],
    aggregates: tuple[tuple[str, str, Expr], ...],
    base_env: Mapping[str, Any] | None = None,
    subquery_evaluator: SubqueryEvaluator | None = None,
) -> Iterator[Struct]:
    """Grouped aggregation: one output struct per distinct key combination.

    Groups are emitted in first-seen order once the input is exhausted (a
    pipeline barrier -- the last group may be completed by the last input
    row).  With no keys the operator is a scalar aggregate and always emits
    exactly one row, even over an empty input (``count`` 0, the rest None).
    """
    groups: dict[tuple[Any, ...], tuple[Struct | None, list[_Accumulator]]] = {}
    order: list[tuple[Any, ...]] = []
    for element in elements:
        env = element_environment(element, variable, base_env)
        key_values = tuple(expr.evaluate(env, subquery_evaluator) for _, expr in keys)
        hash_key = _group_hash_key(key_values)
        state = groups.get(hash_key)
        if state is None:
            key_struct = Struct(
                {name: value for (name, _), value in zip(keys, key_values)}
            )
            state = (key_struct, [_Accumulator(func) for _, func, _ in aggregates])
            groups[hash_key] = state
            order.append(hash_key)
        accumulators = state[1]
        for accumulator, (_, _, arg) in zip(accumulators, aggregates):
            accumulator.add(arg.evaluate(env, subquery_evaluator))
    if not keys and not groups:
        # The scalar-aggregate convention: an empty input still has a count.
        groups[()] = (Struct({}), [_Accumulator(func) for _, func, _ in aggregates])
        order.append(())
    for hash_key in order:
        key_struct, accumulators = groups[hash_key]
        row = dict(key_struct)
        for accumulator, (name, _, _) in zip(accumulators, aggregates):
            row[name] = accumulator.result()
        yield Struct(row)


def limit_rows(elements: Iterable[Any], count: int) -> Iterator[Any]:
    """Yield at most ``count`` elements, then close the upstream pipeline.

    Closing the input generator is what propagates early termination down a
    streaming plan (and, at the leaves, cancels in-flight exec calls).
    """
    if count <= 0:
        close = getattr(elements, "close", None)
        if close is not None:
            close()
        return
    produced = 0
    iterator = iter(elements)
    try:
        for element in iterator:
            yield element
            produced += 1
            if produced >= count:
                return
    finally:
        close = getattr(iterator, "close", None)
        if close is not None:
            close()

"""Row-level operator implementations shared across the run-time system.

Elements flowing through a plan are either data values (usually
:class:`~repro.datamodel.values.Struct` rows) or :class:`Env` objects --
variable environments produced by ``bindjoin`` for multi-variable queries.
Predicates and select items are evaluated with an environment that merges the
query's outer environment (for correlated subqueries), the element's own
bindings (when it is an :class:`Env`) and the operator's bound variable.

Every operator is a *lazy generator* (Volcano-style): it consumes its input
iterator one element at a time and yields output elements as they are ready.
Nothing is materialized except the unavoidable state an operator needs --
a hash join builds only its build (right) side, ``distinct`` keeps the set of
elements already emitted, everything else runs in O(1) memory.  This is what
lets ``limit`` terminate a pipeline early and keeps peak memory bounded by
the largest *build side*, not the largest intermediate result.

Callers that need a list simply wrap a pipeline in ``list(...)``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.algebra.expressions import (
    Comparison,
    Expr,
    split_conjuncts,
)
from repro.datamodel.values import Bag, Struct

SubqueryEvaluator = Callable[[Any, Mapping[str, Any]], Any]


class Env(dict):
    """A variable environment element: maps variable names to their rows."""


def element_environment(
    element: Any, variable: str, base_env: Mapping[str, Any] | None
) -> dict[str, Any]:
    """Build the evaluation environment for one element."""
    env: dict[str, Any] = dict(base_env or {})
    if isinstance(element, Env):
        env.update(element)
    else:
        env[variable] = element
    return env


def as_struct(row: Any) -> Any:
    """Convert plain dict rows to structs; other values pass through."""
    if isinstance(row, Struct):
        return row
    if isinstance(row, dict):
        return Struct(row)
    return row


def project_rows(elements: Iterable[Any], attributes: tuple[str, ...]) -> Iterator[Any]:
    """Keep only ``attributes`` of each record (records stay records)."""
    for element in elements:
        row = element
        if isinstance(row, Env):
            # Projection over an environment is ambiguous; it never occurs in
            # translated plans, but fall back to the first binding for safety.
            row = next(iter(row.values())) if row else row
        if isinstance(row, Mapping):
            yield Struct({attr: row.get(attr) for attr in attributes})
        else:
            yield Struct({attr: getattr(row, attr, None) for attr in attributes})


def rename_rows(
    elements: Iterable[Any], pairs: tuple[tuple[str, str], ...]
) -> Iterator[Any]:
    """Project each record to the ``(old, new)`` aliased attributes."""
    for element in elements:
        row = element
        if isinstance(row, Env):
            row = next(iter(row.values())) if row else row
        if isinstance(row, Mapping):
            yield Struct({new: row.get(old) for old, new in pairs})
        else:
            yield Struct({new: getattr(row, old, None) for old, new in pairs})


def filter_rows(
    elements: Iterable[Any],
    variable: str,
    predicate: Expr,
    base_env: Mapping[str, Any] | None = None,
    subquery_evaluator: SubqueryEvaluator | None = None,
) -> Iterator[Any]:
    """Keep elements for which ``predicate`` evaluates to true."""
    for element in elements:
        env = element_environment(element, variable, base_env)
        if predicate.evaluate(env, subquery_evaluator):
            yield element


def apply_rows(
    elements: Iterable[Any],
    variable: str,
    expression: Expr,
    base_env: Mapping[str, Any] | None = None,
    subquery_evaluator: SubqueryEvaluator | None = None,
) -> Iterator[Any]:
    """Compute ``expression`` for every element."""
    for element in elements:
        env = element_environment(element, variable, base_env)
        yield expression.evaluate(env, subquery_evaluator)


def _merged_row(left_row: Any, right_row: Any) -> Struct:
    """Merge a matched pair; left values win on shared attribute names."""
    merged = dict(right_row if isinstance(right_row, Mapping) else right_row.fields())
    merged.update(dict(left_row if isinstance(left_row, Mapping) else left_row.fields()))
    return Struct(merged)


def hash_join_rows(
    left: Iterable[Any], right: Iterable[Any], on: str | tuple[str, str]
) -> Iterator[Any]:
    """Equi-join plain rows on an attribute; the merged row keeps left values.

    Only the *right* (build) side is materialized -- into the hash table the
    probe needs anyway; the left side streams through unbuffered.
    """
    left_attr, right_attr = on if isinstance(on, tuple) else (on, on)
    buckets: dict[Any, list[Any]] = {}
    for row in right:
        key = _attribute_value(row, right_attr)
        buckets.setdefault(key, []).append(row)
    for row in left:
        key = _attribute_value(row, left_attr)
        for match in buckets.get(key, []):
            yield _merged_row(row, match)


def nested_loop_join_rows(
    left: Iterable[Any], right: Iterable[Any], on: str | tuple[str, str]
) -> Iterator[Any]:
    """Nested-loop equi-join (same semantics as the hash join, different cost).

    The right side is materialized once (it is re-scanned per left element);
    the left side streams.
    """
    left_attr, right_attr = on if isinstance(on, tuple) else (on, on)
    right_rows = list(right)
    for row in left:
        left_key = _attribute_value(row, left_attr)
        for match in right_rows:
            if _attribute_value(match, right_attr) == left_key:
                yield _merged_row(row, match)


def bind_join_rows(
    left: Iterable[Any],
    right: Iterable[Any],
    left_variable: str,
    right_variable: str,
    condition: Expr | None,
    base_env: Mapping[str, Any] | None = None,
    subquery_evaluator: SubqueryEvaluator | None = None,
) -> Iterator[Env]:
    """Join producing variable environments (multi-variable ``from`` clauses).

    When the condition contains an equi-join conjunct between the two sides a
    hash join is used; otherwise every pair is enumerated.  Either way only
    the right side is materialized (as the build table / inner loop); the
    left side streams.
    """
    equi = _find_equi_conjunct(condition, left_variable, right_variable) if condition else None

    def make_env(left_element: Any, right_element: Any) -> Env:
        env = Env()
        if isinstance(left_element, Env):
            env.update(left_element)
        else:
            env[left_variable] = left_element
        env[right_variable] = right_element
        return env

    def passes(env: Env) -> bool:
        if condition is None:
            return True
        full_env = dict(base_env or {})
        full_env.update(env)
        return bool(condition.evaluate(full_env, subquery_evaluator))

    if equi is not None:
        left_expr, right_expr = equi
        buckets: dict[Any, list[Any]] = {}
        for element in right:
            env = make_env(Env(), element)
            key = right_expr.evaluate({**(base_env or {}), **env}, subquery_evaluator)
            buckets.setdefault(key, []).append(element)
        for left_element in left:
            left_env = (
                dict(left_element) if isinstance(left_element, Env) else {left_variable: left_element}
            )
            key = left_expr.evaluate({**(base_env or {}), **left_env}, subquery_evaluator)
            for right_element in buckets.get(key, []):
                env = make_env(left_element, right_element)
                if passes(env):
                    yield env
        return

    right_elements = list(right)
    for left_element in left:
        for right_element in right_elements:
            env = make_env(left_element, right_element)
            if passes(env):
                yield env


def _find_equi_conjunct(
    condition: Expr | None, left_variable: str, right_variable: str
) -> tuple[Expr, Expr] | None:
    """Find a ``left.a = right.b`` conjunct usable as a hash-join key."""
    for conjunct in split_conjuncts(condition):
        if not isinstance(conjunct, Comparison) or conjunct.op != "=":
            continue
        left_vars = conjunct.left.free_variables()
        right_vars = conjunct.right.free_variables()
        if left_vars == {left_variable} and right_vars == {right_variable}:
            return conjunct.left, conjunct.right
        if left_vars == {right_variable} and right_vars == {left_variable}:
            return conjunct.right, conjunct.left
    return None


def _attribute_value(row: Any, attribute: str) -> Any:
    if isinstance(row, Mapping):
        return row.get(attribute)
    if isinstance(row, Struct):
        return row[attribute] if attribute in row else None
    return getattr(row, attribute, None)


def union_rows(parts: Iterable[Iterable[Any]]) -> Iterator[Any]:
    """Additive bag union: stream each part in turn."""
    for part in parts:
        yield from part


def flatten_rows(elements: Iterable[Any]) -> Iterator[Any]:
    """Flatten one level of nested collections."""
    for element in elements:
        if isinstance(element, (Bag, list, tuple, set, frozenset)):
            yield from element
        else:
            yield element


def distinct_rows(elements: Iterable[Any]) -> Iterator[Any]:
    """Remove duplicates, keeping (and immediately yielding) the first occurrence.

    Hashable elements are tracked in a set; unhashable ones (environments,
    rows containing lists) fall back to a linear scan over everything already
    emitted, preserving the old quadratic-but-correct semantics for them.
    """
    seen_hashable: set[Any] = set()
    emitted: list[Any] = []
    for element in elements:
        try:
            if element in seen_hashable:
                continue
            seen_hashable.add(element)
        except TypeError:
            if element in emitted:
                continue
        emitted.append(element)
        yield element


def limit_rows(elements: Iterable[Any], count: int) -> Iterator[Any]:
    """Yield at most ``count`` elements, then close the upstream pipeline.

    Closing the input generator is what propagates early termination down a
    streaming plan (and, at the leaves, cancels in-flight exec calls).
    """
    if count <= 0:
        close = getattr(elements, "close", None)
        if close is not None:
            close()
        return
    produced = 0
    iterator = iter(elements)
    try:
        for element in iterator:
            yield element
            produced += 1
            if produced >= count:
                return
    finally:
        close = getattr(iterator, "close", None)
        if close is not None:
            close()

"""Execution of physical plans: parallel exec dispatch, maps, partial answers.

Paper Section 4: "The physical expression contains calls to the exec operator.
These calls proceed in parallel.  Calls to available data sources succeed.
Calls to unavailable data sources block.  After a designated time period,
query evaluation stops" -- and the partially evaluated plan becomes the
answer.

The executor also implements the ``exec`` bookkeeping of Section 3.3: the
arguments, elapsed time and amount of data of every call are recorded in the
:class:`~repro.optimizer.history.ExecCallHistory` used by the cost model.
Failed and timed-out calls are recorded too, with their true elapsed time, so
the cost model learns from failures instead of seeing them as free.

Dispatch semantics (the fault-isolating exec engine):

* every exec call of a plan is submitted to one long-lived thread pool shared
  by all queries of this executor (sized by
  :attr:`ExecutorConfig.max_parallel_calls`, released by :meth:`Executor.close`);
* results are collected in *completion* order under a single global deadline
  (:attr:`ExecutorConfig.timeout` is a budget for the whole batch, not per
  call), so one slow source never serializes the collection of the others;
* *any* exception escaping a wrapper -- a clean
  :class:`~repro.errors.UnavailableSourceError`, a network hiccup, a crash on
  a bad row -- is treated as source unavailability: the query degrades into a
  partial answer instead of failing, and the error text is carried on the
  :class:`ExecReport` (mediator-side planning errors such as a failed type
  check still raise, as before);
* each call may be retried with exponential backoff
  (:attr:`ExecutorConfig.max_retries`, off by default;
  :attr:`ExecutorConfig.retry_backoff` is the first sleep, doubled per
  attempt);
* retry is *adaptive*: a failure that looks like a capability/translation
  problem (see :mod:`repro.runtime.degrade`) is deterministic, so instead of
  re-submitting the same expression the retry degrades the pushdown one rung
  -- ultimately down to a bare ``get`` -- and the stripped operators are
  replayed at the mediator over the rows that come back.

Name-space planning (:meth:`Executor.namespace_plan`): a pushdown referencing
several extents of one source is translated per branch, and when two extents
collide on a source attribute name (both call a column ``nm``, say, but map it
to different mediator attributes) a per-branch ``rename`` alias is injected
into the submitted expression, so rows cross the submit boundary already
uniquely named and the reverse (source-to-mediator) map is collision-free by
construction.  Wrappers that cannot express the aliases never receive such a
pushdown: the call is split into per-leaf ``get``\\ s recombined at the
mediator (the refuse-to-push fallback) rather than ever returning mis-renamed
rows.
"""

from __future__ import annotations

import threading
import time
import weakref
from concurrent.futures import FIRST_COMPLETED, CancelledError, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Protocol

from repro.algebra import logical as log
from repro.algebra import physical as phys
from repro.algebra.expressions import Comparison, Const, Expr, InList
from repro.datamodel.extent import MetaExtent
from repro.datamodel.mapping import rename_row
from repro.datamodel.values import Bag
from repro.errors import QueryExecutionError, TypeConflictError, UnavailableSourceError
from repro.optimizer.history import ExecCallHistory
from repro.optimizer.implementation import implement
from repro.runtime import cancellation
from repro.runtime import operators as ops
from repro.runtime.admission import AdmissionController, AdmissionTicket
from repro.runtime.degrade import compensate_rows, degrade_pushdown, is_capability_failure
from repro.runtime.partial_eval import UNAVAILABLE, PartialAnswerBuilder, Unavailable


class RuntimeRegistry(Protocol):
    """What the executor needs from the mediator's internal database."""

    def extent(self, name: str) -> MetaExtent: ...

    def wrapper_object(self, name: str) -> Any: ...

    def interface_attributes(self, interface_name: str) -> list[str]: ...


def normalize_row(raw: Any, renames: Mapping[str, str]) -> Any:
    """One source row in mediator vocabulary: renamed and struct-ified.

    Non-mapping values (scalars from projected single columns, nested bags)
    pass through unchanged.  Shared by the barrier and streaming engines so
    malformed-row handling cannot diverge between them.
    """
    if isinstance(raw, Mapping):
        return ops.as_struct(rename_row(raw, renames))
    return raw


def _wrapper_accepts(wrapper: Any, expression: log.LogicalOp) -> bool:
    """True when the wrapper's declared grammar accepts ``expression``."""
    try:
        grammar = wrapper.submit_functionality()
        return bool(grammar.accepts(expression))
    except Exception:
        return False


@dataclass(frozen=True)
class _BranchAliases:
    """Alias assignment for one extent branch of an aliased pushdown."""

    #: ``(source attribute, output name)`` pairs covering the branch's whole
    #: vocabulary -- the argument of the injected ``rename`` operator.
    pairs: tuple[tuple[str, str], ...]
    #: mediator attribute -> output name, for translating references above.
    mediator_to_output: dict[str, str]


@dataclass
class NamespacePlan:
    """How one pushdown crosses the submit boundary (name-space planning).

    ``expression`` is what is actually given to the wrapper: the pushdown in
    the source's vocabulary, with a per-branch ``rename`` injected wherever
    extents collide on a source attribute name.  ``reverse`` maps returned
    row attributes (source names or aliases) back to mediator vocabulary;
    with aliasing it is collision-free by construction.  When the wrapper
    cannot express the aliases, ``split`` lists the extents to fetch with
    bare per-leaf ``get`` calls instead (the refuse-to-push fallback);
    ``expression`` then stays the *mediator*-namespace pushdown, to be
    replayed at the mediator over the fetched rows.
    """

    expression: log.LogicalOp
    reverse: dict[str, str] = field(default_factory=dict)
    aliased: bool = False
    split: tuple[tuple[str, MetaExtent], ...] | None = None


def collect_errors(reports) -> dict[str, str]:
    """Failure reasons keyed by extent name, aggregated over ``reports``.

    An extent can be the target of several exec calls in one plan; distinct
    failure reasons are joined with "; " rather than silently dropped.
    """
    reasons_by_extent: dict[str, list[str]] = {}
    for report in reports:
        if report.error is None:
            continue
        reasons = reasons_by_extent.setdefault(report.extent_name, [])
        if report.error not in reasons:
            reasons.append(report.error)
    return {extent: "; ".join(reasons) for extent, reasons in reasons_by_extent.items()}


@dataclass
class ExecReport:
    """Outcome of one exec call (one wrapper round trip, retries included)."""

    extent_name: str
    source: str
    expression: str
    #: user-facing wall clock of the whole call, retries and backoff sleeps
    #: included (the cost-model history records per-attempt latencies).
    elapsed: float
    rows: int
    available: bool
    #: ``None`` on success; otherwise why the call failed ("timed out after
    #: 0.1s", "RuntimeError: connection reset", ...).
    error: str | None = None
    #: how many times the wrapper was actually called (> 1 under retry).
    attempts: int = 1
    #: True when the streaming engine cancelled the call because its rows
    #: were no longer needed (a satisfied ``limit``).  Cancelled calls are
    #: not failures: they do not make the answer partial.
    cancelled: bool = False
    #: text of the (source-namespace) expression the final attempt actually
    #: submitted, when the retry policy degraded the pushdown; ``None`` when
    #: the original expression was used throughout.
    degraded_to: str | None = None
    #: number of per-leaf wrapper calls when the pushdown was split at the
    #: mediator (the refuse-to-push fallback for wrappers that cannot express
    #: the aliases a colliding multi-extent expression needs); 0 when the
    #: expression was pushed whole.
    split_calls: int = 0
    #: number of successful mid-stream recoveries: the call died after
    #: delivering rows and was reopened (source-side resume token, or
    #: deterministic replay) without duplicating or dropping a row.  Always 0
    #: on the barrier path, which materializes whole calls -- a barrier call
    #: that dies mid-transfer is retried from scratch, nothing having been
    #: delivered.
    resumed_calls: int = 0
    #: rows that were re-shipped by a replay reopen and silently dropped at
    #: the mediator because they had already been delivered (dedup by
    #: delivered-row count).  0 for token resumes: the source itself skipped
    #: them and shipped only the remainder.
    replayed_rows: int = 0
    #: mid-stream reopen attempts charged to the dedicated ``max_resumes``
    #: budget (successful or not).  0 when ``max_resumes`` is unset -- legacy
    #: accounting charges reopens to ``attempts`` instead.
    resume_attempts: int = 0
    #: True when a probe join was re-planned mid-query: the observed probe
    #: cardinality blew past the cost model's estimate by more than
    #: ``ExecutorConfig.replan_blowup_factor``, so the runner flipped from
    #: batched probing to one full ship of the right side hash-joined at the
    #: mediator.  Always False for ordinary exec calls.
    replanned: bool = False


@dataclass
class ExecutionResult:
    """The answer to one query execution."""

    data: Bag
    is_partial: bool = False
    partial_plan: log.LogicalOp | None = None
    partial_query: str | None = None
    unavailable_sources: tuple[str, ...] = ()
    reports: tuple[ExecReport, ...] = ()

    def answer(self) -> Any:
        """The user-facing answer: data when complete, OQL text when partial."""
        return self.partial_query if self.is_partial else self.data

    def errors(self) -> dict[str, str]:
        """Why each unavailable source failed, keyed by extent name."""
        return collect_errors(self.reports)


@dataclass
class ExecutorConfig:
    """Execution knobs.

    ``timeout``
        The paper's "designated time period": one *global* deadline, in
        seconds, for the whole batch of exec calls a query issues.  Sources
        that have not answered when it expires are declared unavailable and
        the query degrades into a partial answer.  ``None`` waits
        indefinitely.  Per-query override: ``mediator.query(text,
        timeout=...)``.  Under the streaming engine the same deadline also
        bounds lazy cursor drains, not just call opens.
    ``max_parallel_calls``
        Size of the long-lived thread pool shared by every query this
        executor runs; also the maximum number of wrapper round trips in
        flight at once.  The pool is created lazily on the first query and
        released by ``Executor.close()``.
    ``max_retries``
        Extra wrapper calls attempted after a failure before the source is
        declared unavailable.  ``0`` (the default) fails fast.  This is the
        *whole* per-call budget: transient re-submissions, degrading-pushdown
        rungs and mid-stream reopens all draw from it, so give flaky,
        mis-declared or mid-stream-dying sources a budget at least as deep as
        the recovery they need.
    ``retry_backoff``
        Sleep before the first retry, in seconds; doubled for each further
        attempt.  The sleep is cancellation-aware: a written-off call wakes
        immediately instead of serving it out.  Also applied before a
        mid-stream reopen (the death was transient, not deterministic).
    ``degrade_pushdown``
        When True (the default), a retry after a capability/translation
        failure re-submits a strictly smaller pushdown (stripping the
        outermost operator, ultimately down to a bare ``get``) instead of
        repeating the expression that was just rejected; the stripped
        operators are replayed at the mediator.  Degrading retries skip the
        backoff sleep -- the failure was deterministic, not a load problem.
    ``resume_midstream``
        Streaming engine only.  When True (the default), a call that dies
        *after delivering rows* is reopened with exactly-once row delivery
        instead of being written off, provided retries remain in
        ``max_retries`` and the wrapper declares resume support: ``token``
        wrappers resume source-side (only the remaining rows are shipped),
        ``replay`` wrappers are reopened and the mediator skips the
        already-delivered prefix.  Wrappers declaring neither keep the
        write-off -- without a token or a determinism guarantee, reopening a
        half-consumed cursor risks duplicated or dropped rows.  Reopens draw
        down ``max_retries`` unless ``max_resumes`` grants them a dedicated
        budget; with the defaults (``max_retries=0``, ``max_resumes=None``)
        there is no budget, so recovery stays off until one is granted.
    ``replay_resume``
        Permits the reopen-and-skip fallback (used by ``replay`` wrappers,
        and by ``token`` wrappers whose call was degraded or split, where
        token positions no longer match the delivered stream).  Turn off to
        allow only true source-side token resumes -- e.g. when re-shipping
        already-delivered rows is costlier than losing the source.
    ``max_resumes``
        Streaming engine only.  A *dedicated* per-call budget for mid-stream
        reopens.  ``None`` (the default) keeps the legacy accounting: reopens
        draw down the shared ``max_retries`` budget.  When set, a call that
        dies after delivering rows may be reopened up to ``max_resumes``
        times *without* consuming retries -- so ``max_retries=0,
        max_resumes=2`` fails fresh calls fast yet still recovers a stream
        that dies mid-transfer.  ``0`` disables mid-stream recovery outright
        (equivalent to ``resume_midstream=False`` for budgeting purposes).
        Reopens are accounted separately on :attr:`ExecReport.resume_attempts`.
    ``max_concurrent_queries``
        Admission control for the shared pool.  ``None`` (the default) admits
        every query immediately.  When set, at most this many queries execute
        at once; excess queries wait in a weighted-fair queue (stride
        scheduling over ``priority`` classes, so a flood of low-priority
        queries cannot starve the rest) and their queue wait is deducted from
        their timeout before execution starts.  A query whose deadline
        expires while queued fails with
        :class:`~repro.errors.AdmissionError` (verdict "queue timeout").
    ``admission_queue_depth``
        Bound on the admission *wait queue* (only meaningful with
        ``max_concurrent_queries``).  When the queue is full, further queries
        are rejected immediately with verdict "rejected" instead of waiting
        -- the load-shedding knob.  ``None`` queues without bound.
    ``type_check``
        Whether the mediator checks source attribute names against the
        mediator interface (the run-time type check of Section 2.1).
    ``bind_batch_size``
        Probe-key batch size for batched bind joins (``probejoin`` plans).
        Up to this many distinct left-side join keys are collected and sent
        to the right-hand source as *one* set-valued submit --
        ``select(v: key in (k1, ..., kn), expr)`` -- instead of one call per
        binding.  ``1`` degenerates to per-binding probing (the pre-batching
        behaviour, and the baseline the E14 benchmark measures against).
    ``replan_blowup_factor``
        Mid-query re-planning trigger for probe joins.  The optimizer picked
        the probe join because the cost model estimated the probed
        expression small; when the rows actually fetched by probing exceed
        this factor times that estimate, the estimate was wrong and batched
        probing is fetching the extent the hard way.  The runner then flips
        to one full ship of the right side and finishes the join against a
        mediator-side hash table, recording the flip on
        :attr:`ExecReport.replanned`.  ``None`` disables re-planning.  Note
        the paper's no-history default estimate is 1 row, so an uninformed
        mediator flips as soon as a probe stream returns more than this many
        rows -- by design: with no evidence that probing pays, one cheap
        ship is the safer plan, and the history the probes just recorded
        informs the next query.
    """

    timeout: float | None = 5.0
    max_parallel_calls: int = 16
    max_retries: int = 0
    retry_backoff: float = 0.05
    degrade_pushdown: bool = True
    resume_midstream: bool = True
    replay_resume: bool = True
    max_resumes: int | None = None
    max_concurrent_queries: int | None = None
    admission_queue_depth: int | None = None
    type_check: bool = True
    bind_batch_size: int = 256
    replan_blowup_factor: float | None = 8.0


@dataclass
class _CallOutcome:
    """What one worker-thread exec call produced (never an exception)."""

    rows: list[Any] | None
    elapsed: float
    attempts: int
    error: str | None = None
    degraded_to: str | None = None
    split_calls: int = 0


class _ProbeUnavailable(Exception):
    """A probe join's right-hand source failed terminally.

    On the barrier path this aborts evaluation into a partial answer (the
    probe side stays the ``submit`` it implements); the streaming path
    swallows it -- the source simply contributes no further rows and the
    failure surfaces on the probe's aggregated :class:`ExecReport`.
    """

    def __init__(self, node: phys.Exec, error: str):
        super().__init__(error)
        self.node = node
        self.error = error


class _ProbeCancelled(Exception):
    """A probe call was cancelled cooperatively (stream closed/written off)."""


class _ProbeCapability(Exception):
    """A probe submit failed deterministically: drop one probe-shape rung."""


class _ProbeRunner:
    """Issues one probe join's wrapper calls: batching, caching, degrade, replan.

    One runner serves one :class:`~repro.algebra.physical.ProbeJoin` of one
    query, on whichever engine composed it.  It owns:

    * the **probe shape**: batches of distinct keys are submitted as one
      set-valued ``select(v: key in (...), expr)`` when the wrapper's grammar
      has the ``in`` terminal; otherwise the runner degrades to one ``=``
      probe per key, and a wrapper that cannot even evaluate a selection gets
      one full ship of ``expr`` hash-joined at the mediator.  A submit that
      still fails with a capability error drops a rung the same way
      (:func:`~repro.runtime.degrade.is_capability_failure`).
    * the **per-query probe cache**: a key probed once is never sent to the
      source again, whatever batch it reappears in; hit/miss counts aggregate
      onto the executor for ``Mediator.statistics()``.
    * **adaptive re-planning**: when the rows fetched by probing exceed
      ``replan_blowup_factor`` times the cost model's estimate of the probed
      expression, the runner flips to the full-ship shape mid-query
      (:attr:`ExecReport.replanned`).
    * **history**: every wrapper round trip is recorded in the exec-call
      history under the probed extent, so the cost model learns real probe
      latencies and cardinalities (the ``in``-list close signature collapses
      all batch sizes onto one history entry).

    The runner aggregates everything into one :class:`ExecReport` --
    ``attempts`` is the total number of wrapper calls issued -- so the two
    engines stay report-shape comparable.
    """

    def __init__(
        self,
        executor: "Executor",
        plan: phys.ProbeJoin,
        event: threading.Event | None = None,
        remaining: Callable[[], float | None] | None = None,
        raise_unavailable: bool = False,
    ):
        self._executor = executor
        self._plan = plan
        self._event = event
        self._remaining = remaining
        self._raise_unavailable = raise_unavailable
        equi = ops._find_equi_conjunct(
            plan.condition, plan.left_variable, plan.right_variable
        )
        if equi is None:  # the planner only builds ProbeJoin with one
            raise QueryExecutionError("probe join requires an equi-join conjunct")
        self._right_expr: Expr = equi[1]
        self._meta: MetaExtent | None = None
        self._wrapper: Any = None
        self._estimate_rows = 1.0
        #: None until the first fetch; then "in" | "per-key" | "ship".
        self._mode: str | None = None
        self._cache: dict[Any, list[Any]] = {}
        self._ship_buckets: dict[Any, list[Any]] | None = None
        self._capability_degraded = False
        self._degraded_to: str | None = None
        self._error: str | None = None
        self.cancelled = False
        self.replanned = False
        self.calls = 0
        self.rows_fetched = 0
        self.elapsed = 0.0
        self.cache_hits = 0
        self.cache_misses = 0

    # -- the prober closure handed to ops.probe_join_rows ---------------------------------
    def probe(self, keys: list[Any]) -> dict[Any, list[Any]]:
        """Rows for each requested key, from the cache or the source."""
        buckets: dict[Any, list[Any]] = {}
        if self._error is not None:
            return buckets  # dead source: contributes no further rows
        missing: list[Any] = []
        for key in keys:
            if self._ship_buckets is not None:
                buckets[key] = self._ship_buckets.get(key, [])
            elif key in self._cache:
                self.cache_hits += 1
                buckets[key] = self._cache[key]
            else:
                self.cache_misses += 1
                missing.append(key)
        if missing and self._ship_buckets is None:
            try:
                self._fetch(missing)
            except _ProbeUnavailable:
                if self._raise_unavailable:
                    raise
            for key in missing:
                if self._ship_buckets is not None:
                    buckets[key] = self._ship_buckets.get(key, [])
                else:
                    buckets[key] = self._cache.get(key, [])
        return buckets

    # -- fetching -------------------------------------------------------------------------
    def _fetch(self, keys: list[Any]) -> None:
        if not keys:
            # An empty batch (every key None, or deduplicated to nothing)
            # must never become a wrapper call: ``select(v: k in ())`` is
            # unsatisfiable and renders as invalid SQL (``IN ()``) at SQL
            # wrappers.  ``probe`` only calls with missing keys, but the
            # guard keeps hand-driven runners safe too.
            return
        self._resolve()
        pending = list(keys)
        while True:
            if self._mode is None:
                self._select_mode(pending)
            try:
                if self._mode == "ship":
                    self._ship(replanned=False)
                    return
                if self._mode == "per-key":
                    while pending:
                        rows = self._call(self._per_key_expression(pending[0]))
                        self._cache[pending.pop(0)] = rows
                        if self._blown():
                            self._ship(replanned=True)
                            return
                    return
                rows = self._call(self._in_expression(pending))
                bucketed = self._bucket(rows)
                for key in pending:
                    self._cache[key] = bucketed.get(key, [])
                if self._blown():
                    self._ship(replanned=True)
                return
            except _ProbeCapability as exc:
                if self._mode == "ship":
                    # Even the bare expression is rejected: out of rungs.
                    self._error = str(exc)
                    raise _ProbeUnavailable(self._plan.probe, self._error)
                self._mode = "per-key" if self._mode == "in" else "ship"
                self._capability_degraded = True

    def _resolve(self) -> None:
        if self._wrapper is not None:
            return
        executor = self._executor
        node = self._plan.probe
        self._meta = executor.registry.extent(node.extent_name)
        self._wrapper = executor.registry.wrapper_object(self._meta.wrapper)
        # Mediator-side planning errors (type conflicts) raise, as for any
        # exec; they are not source unavailability.
        executor._check_types(self._meta, self._wrapper)
        estimate = executor.history.estimate(node.extent_name, node.expression)
        self._estimate_rows = max(estimate.rows, 1.0)

    def _select_mode(self, keys: list[Any]) -> None:
        """Pick the largest probe shape the wrapper's grammar accepts."""
        if self._accepts(self._in_expression(keys[:1])):
            self._mode = "in"
        elif self._accepts(self._per_key_expression(keys[0])):
            self._mode = "per-key"
            self._capability_degraded = True
        else:
            self._mode = "ship"
            self._capability_degraded = True

    def _accepts(self, expression: log.LogicalOp) -> bool:
        plan = self._executor.namespace_plan(expression, self._meta, self._wrapper)
        if plan.split is not None:
            return False
        return _wrapper_accepts(self._wrapper, plan.expression)

    def _in_expression(self, keys: list[Any]) -> log.LogicalOp:
        predicate = InList(self._right_expr, tuple(Const(key) for key in keys))
        return log.Select(
            self._plan.right_variable, predicate, self._plan.probe.expression
        )

    def _per_key_expression(self, key: Any) -> log.LogicalOp:
        predicate = Comparison("=", self._right_expr, Const(key))
        return log.Select(
            self._plan.right_variable, predicate, self._plan.probe.expression
        )

    def _bucket(self, rows: list[Any]) -> dict[Any, list[Any]]:
        variable = self._plan.right_variable
        buckets: dict[Any, list[Any]] = {}
        for row in rows:
            key = self._right_expr.evaluate({variable: row})
            buckets.setdefault(key, []).append(row)
        return buckets

    def _blown(self) -> bool:
        factor = self._executor.config.replan_blowup_factor
        if factor is None or self._ship_buckets is not None:
            return False
        return self.rows_fetched > factor * self._estimate_rows

    def _ship(self, replanned: bool) -> None:
        """Fetch the whole right side once; later batches join locally."""
        rows = self._call(self._plan.probe.expression)
        self._ship_buckets = self._bucket(rows)
        self.replanned = self.replanned or replanned

    def _call(self, expression: log.LogicalOp) -> list[Any]:
        """One wrapper round trip, with the barrier path's transient-retry policy."""
        executor = self._executor
        config = executor.config
        node = self._plan.probe
        attempts = max(1, config.max_retries + 1)
        attempt = 0
        while True:
            remaining = self._remaining() if self._remaining is not None else None
            if remaining is not None and remaining <= 0:
                self._error = "timed out during probe"
                raise _ProbeUnavailable(node, self._error)
            started = time.monotonic()
            try:
                with cancellation.activate(self._event):
                    plan = executor.namespace_plan(expression, self._meta, self._wrapper)
                    if plan.split is not None:
                        rows = list(executor._split_pushdown(plan, self._wrapper))
                    else:
                        raw_rows = self._wrapper.submit(plan.expression)
                        rows = [normalize_row(row, plan.reverse) for row in raw_rows]
            except Exception as exc:
                call_elapsed = time.monotonic() - started
                self.calls += 1
                self.elapsed += call_elapsed
                if self._event is not None and self._event.is_set():
                    self.cancelled = True
                    raise _ProbeCancelled from exc
                executor.history.record_failure(
                    node.extent_name, node.expression, call_elapsed
                )
                if is_capability_failure(exc):
                    raise _ProbeCapability(f"{type(exc).__name__}: {exc}") from exc
                attempt += 1
                if attempt >= attempts:
                    self._error = f"{type(exc).__name__}: {exc}"
                    raise _ProbeUnavailable(node, self._error) from exc
                backoff = config.retry_backoff * (2 ** (attempt - 1))
                if remaining is not None:
                    backoff = min(backoff, remaining)
                if self._event is not None:
                    if self._event.wait(backoff):
                        self.cancelled = True
                        raise _ProbeCancelled from exc
                else:
                    cancellation.sleep(backoff)
                continue
            call_elapsed = time.monotonic() - started
            self.calls += 1
            self.elapsed += call_elapsed
            self.rows_fetched += len(rows)
            # Satellite: probe calls are first-class history observations
            # under the probed extent (the in-list close signature collapses
            # every batch size onto one entry).
            executor.history.record(node.extent_name, expression, call_elapsed, len(rows))
            if self._capability_degraded:
                self._degraded_to = plan.expression.to_text()
            return rows

    # -- wrap-up --------------------------------------------------------------------------
    def finish(self) -> None:
        """Fold this run's cache counters into the executor-wide statistics."""
        with self._executor._probe_lock:
            self._executor.probe_cache_hits += self.cache_hits
            self._executor.probe_cache_misses += self.cache_misses

    def report(self, cancelled: bool = False) -> ExecReport:
        """The probe side's one aggregated report (attempts = wrapper calls)."""
        node = self._plan.probe
        return ExecReport(
            extent_name=node.extent_name,
            source=node.source.name,
            expression=node.expression.to_text(),
            elapsed=self.elapsed,
            rows=self.rows_fetched,
            available=self._error is None,
            error=self._error,
            attempts=max(1, self.calls),
            cancelled=cancelled or self.cancelled,
            degraded_to=self._degraded_to,
            replanned=self.replanned,
        )


class Executor:
    """Runs physical plans against wrappers registered in a mediator registry."""

    def __init__(
        self,
        registry: RuntimeRegistry,
        history: ExecCallHistory | None = None,
        config: ExecutorConfig | None = None,
        subquery_planner=None,
    ):
        self.registry = registry
        self.history = history or ExecCallHistory()
        self.config = config or ExecutorConfig()
        self._subquery_planner = subquery_planner
        self._type_checked_extents: set[str] = set()
        #: registry schema version the cached type-check verdicts belong to;
        #: any schema change (e.g. re-registering an extent with a different
        #: map) invalidates them.
        self._type_checked_version: Any = None
        # Guards the verdict cache: concurrent queries share it, and a set
        # being mutated under an iterating reader is undefined.  The type
        # check itself (a wrapper call) runs outside the lock.
        self._types_lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        #: shared-pool admission gate; ``None`` when admission is off.
        self.admission: AdmissionController | None = None
        if self.config.max_concurrent_queries is not None:
            self.admission = AdmissionController(
                max_inflight=self.config.max_concurrent_queries,
                max_queue_depth=self.config.admission_queue_depth,
            )
        # Active-work tracking for close(): per-dispatch cancel closures and
        # the live streaming executions.  The condition is notified whenever
        # a dispatch or a stream finishes, so a draining close can wait.
        self._active = threading.Condition()
        self._dispatch_cancels: dict[int, Callable[[], None]] = {}
        self._active_streams: "weakref.WeakSet[Any]" = weakref.WeakSet()
        # Probe-cache effectiveness counters, aggregated over every probe
        # join this executor has run (surfaced via Mediator.statistics()).
        self._probe_lock = threading.Lock()
        self.probe_cache_hits = 0
        self.probe_cache_misses = 0
        self.partial_builder = PartialAnswerBuilder(subquery_evaluator=self.evaluate_subquery)

    # -- pool lifecycle ----------------------------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        """Return the shared pool, creating it on first use (and after close)."""
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=max(1, self.config.max_parallel_calls),
                    thread_name_prefix="disco-exec",
                )
            return self._pool

    def _live_streams(self) -> list[Any]:
        with self._active:
            streams = list(self._active_streams)
        return [s for s in streams if not s.finished]

    def close(self, drain: bool = False, timeout: float | None = None) -> None:
        """Shut the shared pool down; a later query transparently recreates it.

        ``drain=False`` (the default) *cancels*: every in-flight dispatch is
        written off (its calls report "mediator closed" and the queries
        degrade into partial answers), every live stream is finished, and
        the pool is shut down waiting for its workers -- no leaked threads,
        and no exception is ever raised into an unrelated query's worker.

        ``drain=True`` waits (up to ``timeout`` seconds, ``None`` = forever)
        for in-flight queries and streams to finish before taking the pool
        down; work still active after the timeout is cancelled as above.
        """
        if drain:
            with self._active:
                self._active.wait_for(
                    lambda: not self._dispatch_cancels and not self._live_streams(),
                    timeout=timeout,
                )
        # Cancel whatever is (still) active: mark every dispatch's calls
        # abandoned (their workers wake from sleeps and return write-off
        # outcomes) and finish every live stream.
        with self._active:
            cancels = list(self._dispatch_cancels.values())
        for cancel in cancels:
            cancel()
        for stream in self._live_streams():
            stream._finish()
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            # wait=True: every worker has returned when close() returns, so
            # the pool's threads are truly released, not leaked.
            pool.shutdown(wait=True, cancel_futures=True)

    # -- admission ---------------------------------------------------------------------------
    def _admit(self, priority: float, timeout: float | None) -> AdmissionTicket | None:
        """Pass the admission gate (no-op when admission is off).

        Raises :class:`~repro.errors.AdmissionError` on rejection or queue
        timeout; on success the caller owns one in-flight slot and must
        ``release()`` it when the query ends.
        """
        if self.admission is None:
            return None
        deadline = None if timeout is None else time.monotonic() + timeout
        return self.admission.acquire(priority=priority, deadline=deadline)

    # -- public entry point ------------------------------------------------------------------
    def execute(
        self,
        plan: phys.PhysicalOp,
        base_env: Mapping[str, Any] | None = None,
        timeout: float | None = None,
        priority: float = 1.0,
    ) -> ExecutionResult:
        """Execute ``plan``; unavailable or failing sources yield a partial answer.

        With admission control configured, the query first passes the gate
        (which may queue it, fairly, behind its ``priority`` class); queue
        wait is deducted from ``timeout``, so the deadline a caller sets is
        end-to-end, not execution-only.
        """
        timeout = self.config.timeout if timeout is None else timeout
        ticket = self._admit(priority, timeout)
        if ticket is not None and timeout is not None:
            timeout = max(timeout - ticket.queue_wait, 0.0)
        try:
            # One *global* deadline covers dispatch and evaluation alike:
            # probe-join wrapper calls issued during evaluation draw on
            # whatever budget the barrier wait left over.
            deadline = None if timeout is None else time.monotonic() + timeout
            remaining = (
                None
                if deadline is None
                else lambda: max(deadline - time.monotonic(), 0.0)
            )
            exec_nodes = phys.execs_in(plan)
            outcomes, reports = self._dispatch(exec_nodes, timeout)
            unavailable = tuple(
                report.extent_name for report in reports if not report.available
            )
            if unavailable:
                partial_plan = self.partial_builder.build(plan, outcomes, base_env=base_env)
                return ExecutionResult(
                    data=Bag(),
                    is_partial=True,
                    partial_plan=partial_plan,
                    partial_query=self.partial_builder.to_oql(partial_plan),
                    unavailable_sources=unavailable,
                    reports=tuple(reports),
                )
            probe_reports: list[ExecReport] = []
            try:
                values = list(
                    self._evaluate(plan, outcomes, base_env, probe_reports, remaining)
                )
            except _ProbeUnavailable as failure:
                # A probe join's right-hand source failed during evaluation:
                # degrade into a partial answer whose probe side stays the
                # submit it implements, over the left rows already obtained.
                outcomes[id(failure.node)] = Unavailable(failure.error)
                reports = reports + probe_reports
                partial_plan = self.partial_builder.build(plan, outcomes, base_env=base_env)
                return ExecutionResult(
                    data=Bag(),
                    is_partial=True,
                    partial_plan=partial_plan,
                    partial_query=self.partial_builder.to_oql(partial_plan),
                    unavailable_sources=tuple(
                        report.extent_name
                        for report in reports
                        if not report.available and not report.cancelled
                    ),
                    reports=tuple(reports),
                )
            return ExecutionResult(data=Bag(values), reports=tuple(reports + probe_reports))
        finally:
            if ticket is not None and self.admission is not None:
                self.admission.release()

    def execute_stream(
        self,
        plan: phys.PhysicalOp,
        base_env: Mapping[str, Any] | None = None,
        timeout: float | None = None,
        priority: float = 1.0,
    ):
        """Execute ``plan`` with the streaming engine.

        Returns a :class:`~repro.runtime.streaming.StreamingExecution`: an
        iterable whose rows become available as sources answer (exec results
        feed the pipeline in completion order, not after a global barrier).
        Early termination -- a satisfied ``limit``, or ``close()`` -- cancels
        the in-flight exec calls cooperatively.  Sources that fail or time
        out contribute no rows; the failures are reported on the execution
        object once the stream ends (no resubmittable partial query is built,
        since delivered rows cannot be embedded back into one).

        With admission control configured the stream holds its in-flight
        slot until it finishes (fully drained, closed, or cancelled by
        ``Executor.close``), not merely until this call returns.
        """
        from repro.runtime.streaming import StreamingExecution  # local: avoid cycle

        timeout = self.config.timeout if timeout is None else timeout
        ticket = self._admit(priority, timeout)
        if ticket is not None and timeout is not None:
            timeout = max(timeout - ticket.queue_wait, 0.0)
        released = threading.Event()

        def on_finish() -> None:
            # _finish runs exactly once, but be idempotent anyway: the slot
            # must never be double-released.
            if ticket is not None and self.admission is not None:
                if not released.is_set():
                    released.set()
                    self.admission.release()
            with self._active:
                self._active.notify_all()

        try:
            stream = StreamingExecution(
                self, plan, base_env=base_env, timeout=timeout, on_finish=on_finish
            )
        except BaseException:
            on_finish()
            raise
        with self._active:
            self._active_streams.add(stream)
        return stream

    # -- exec dispatch ------------------------------------------------------------------------
    def _dispatch(
        self, exec_nodes: list[phys.Exec], timeout: float | None
    ) -> tuple[dict[int, Any], list[ExecReport]]:
        outcomes: dict[int, Any] = {}
        if not exec_nodes:
            return outcomes, []
        pool = self._ensure_pool()
        started_at: dict[int, float] = {}
        #: wrapper attempts each call has completed so far, kept current by
        #: the workers so a write-off report can state the true count instead
        #: of defaulting to 1 (the streaming engine tracks the same number on
        #: its per-call state -- the two engines' attempt accounting must
        #: agree, and the equivalence harness asserts it on report shape).
        attempts_made: dict[int, int] = {}
        abandoned: set[int] = set()
        recorded: set[int] = set()
        # One cooperative-cancellation event per call: set on write-off so a
        # worker blocked in a latency sleep or a retry backoff wakes up
        # immediately instead of holding its pool slot (zombie thread).
        events = {id(node): threading.Event() for node in exec_nodes}
        # Serializes the abandoned/recorded sets against worker-side history
        # recording: a call's terminal observation comes from its worker or
        # from the dispatcher's write-off, never both.
        guard = threading.Lock()
        deadline = None if timeout is None else time.monotonic() + timeout
        by_node: dict[int, ExecReport] = {}

        def write_off(node: phys.Exec, error: str, elapsed: float = 0.0) -> None:
            outcomes[id(node)] = Unavailable(error)
            by_node[id(node)] = ExecReport(
                extent_name=node.extent_name,
                source=node.source.name,
                expression=node.expression.to_text(),
                elapsed=elapsed,
                rows=0,
                available=False,
                error=error,
                attempts=max(1, attempts_made.get(id(node), 1)),
            )

        futures: dict[Any, phys.Exec] = {}
        for node in exec_nodes:
            try:
                future = pool.submit(
                    self._run_exec,
                    node,
                    started_at,
                    abandoned,
                    recorded,
                    guard,
                    events[id(node)],
                    attempts_made,
                )
            except RuntimeError:
                # The pool shut down between _ensure_pool and this submit
                # (mediator closing): the call degrades into an unavailable
                # source instead of raising into the query.
                write_off(node, "mediator closed")
                continue
            futures[future] = node

        def cancel_dispatch() -> None:
            """Write this dispatch's calls off (Executor.close cancel path)."""
            with guard:
                for node in exec_nodes:
                    abandoned.add(id(node))
            for node in exec_nodes:
                events[id(node)].set()

        token = object()
        with self._active:
            self._dispatch_cancels[id(token)] = cancel_dispatch
        pending = set(futures)
        try:
            try:
                while pending:
                    remaining = None if deadline is None else max(deadline - time.monotonic(), 0.0)
                    done, pending = wait(pending, timeout=remaining, return_when=FIRST_COMPLETED)
                    if not done:
                        break  # global deadline expired with calls still in flight
                    for future in done:
                        node = futures[future]
                        try:
                            outcome = future.result()
                        except CancelledError:
                            # Cancelled before its worker ever started (the
                            # mediator closed): unavailable, not a crash.
                            write_off(node, "mediator closed")
                            continue
                        self._note_outcome(node, outcome, outcomes, by_node)
            except BaseException:
                # A mediator-side error (e.g. a failed type check) aborts the
                # query; write off the surviving calls so their workers stop
                # retrying and stop recording, and free the shared pool's queue.
                with guard:
                    for future in pending:
                        abandoned.add(id(futures[future]))
                for future in pending:
                    events[id(futures[future])].set()
                    future.cancel()
                raise
            now = time.monotonic()
            for future in pending:
                future.cancel()
                node = futures[future]
                error = f"timed out after {timeout:.4g}s"
                with guard:
                    # Mark the call abandoned and record its failure atomically,
                    # so the zombie worker neither keeps retrying nor adds a
                    # second observation for it when it finally returns.  A call
                    # whose worker beat us to a terminal record (finished in the
                    # instant after the deadline) is taken as completed instead.
                    finished_late = id(node) in recorded
                    if not finished_late:
                        abandoned.add(id(node))
                        events[id(node)].set()
                        started = started_at.get(id(node))
                        elapsed = 0.0 if started is None else now - started
                        if started is not None:
                            # The call really ran for this long before the
                            # deadline cut it off; let the cost model see it.
                            self.history.record_failure(node.extent_name, node.expression, elapsed)
                if finished_late:
                    self._note_outcome(node, future.result(), outcomes, by_node)
                    continue
                write_off(node, error, elapsed)
        finally:
            with self._active:
                self._dispatch_cancels.pop(id(token), None)
                self._active.notify_all()
        # Reports in submission order, whatever order the calls finished in.
        reports = [by_node[id(node)] for node in exec_nodes]
        return outcomes, reports

    def _note_outcome(
        self,
        node: phys.Exec,
        outcome: _CallOutcome,
        outcomes: dict[int, Any],
        by_node: dict[int, ExecReport],
    ) -> None:
        """Fold one completed call's outcome into the outcome map and reports."""
        if outcome.error is None and outcome.rows is not None:
            outcomes[id(node)] = outcome.rows
            by_node[id(node)] = ExecReport(
                extent_name=node.extent_name,
                source=node.source.name,
                expression=node.expression.to_text(),
                elapsed=outcome.elapsed,
                rows=len(outcome.rows),
                available=True,
                attempts=outcome.attempts,
                degraded_to=outcome.degraded_to,
                split_calls=outcome.split_calls,
            )
        else:
            outcomes[id(node)] = Unavailable(outcome.error)
            by_node[id(node)] = ExecReport(
                extent_name=node.extent_name,
                source=node.source.name,
                expression=node.expression.to_text(),
                elapsed=outcome.elapsed,
                rows=0,
                available=False,
                error=outcome.error,
                attempts=outcome.attempts,
                degraded_to=outcome.degraded_to,
                split_calls=outcome.split_calls,
            )

    def _run_exec(
        self,
        node: phys.Exec,
        started_at: dict[int, float],
        abandoned: set[int],
        recorded: set[int],
        guard: threading.Lock,
        event: threading.Event | None = None,
        attempts_made: dict[int, int] | None = None,
    ) -> _CallOutcome:
        """One exec call with retries.  Wrapper failures become outcomes, not raises.

        ``abandoned`` holds ids of exec nodes the dispatcher already wrote
        off (deadline expired, or the query aborted): a zombie worker must
        neither keep retrying nor add further history observations for its
        call.  ``recorded`` holds ids whose worker reached a *terminal*
        outcome, so the dispatcher's write-off can tell a just-finished call
        from a still-running one.  ``guard`` makes every check-and-record
        atomic against the write-off.  ``event`` is the call's cooperative
        cancellation signal: it is installed around the wrapper round trip so
        blocking primitives downstream (the simulated server's latency sleep)
        return early once the dispatcher writes the call off.

        When a failure looks like a capability/translation problem, the next
        attempt submits a degraded pushdown (one operator stripped, down to a
        bare ``get``) instead of the expression that was just rejected; the
        stripped operators are replayed over the returned rows.  Once the
        ladder is exhausted such a failure is terminal immediately --
        repeating a deterministic rejection cannot succeed.
        """
        meta = self.registry.extent(node.extent_name)
        wrapper = self.registry.wrapper_object(meta.wrapper)
        self._check_types(meta, wrapper)
        pushdown = node.expression
        stripped: list[log.LogicalOp] = []
        plan = self.namespace_plan(pushdown, meta, wrapper)
        started_at[id(node)] = time.monotonic()
        attempts = max(1, self.config.max_retries + 1)
        attempt = 0
        while True:
            started = time.monotonic()
            try:
                with cancellation.activate(event):
                    if plan.split is not None:
                        # Refuse-to-push fallback: the wrapper cannot express
                        # the aliases this colliding pushdown needs, so it is
                        # split into per-leaf gets and recombined here.
                        rows = list(self._split_pushdown(plan, wrapper))
                    else:
                        raw_rows = wrapper.submit(plan.expression)
                        # Materialize and rename inside the try: a lazy result
                        # that raises mid-iteration, or a malformed row, is a
                        # source failure too, not a query crash.
                        rows = [normalize_row(row, plan.reverse) for row in raw_rows]
                    if stripped:
                        rows = list(compensate_rows(stripped, rows))
            except Exception as exc:
                call_elapsed = time.monotonic() - started
                attempt += 1
                if attempts_made is not None:
                    attempts_made[id(node)] = attempt
                step = None
                exhausted = attempt >= attempts
                if self.config.degrade_pushdown and is_capability_failure(exc):
                    step = degrade_pushdown(pushdown)
                    if step is None:
                        # Deterministic rejection with nothing left to strip:
                        # further attempts are pointless, fail now.
                        exhausted = True
                with guard:
                    written_off = id(node) in abandoned
                    terminal = written_off or exhausted
                    if not written_off:
                        self.history.record_failure(
                            node.extent_name, node.expression, call_elapsed
                        )
                        if terminal:
                            recorded.add(id(node))
                if not terminal:
                    if step is not None:
                        # Degrading retry: a strictly smaller pushdown, no
                        # backoff -- the failure was deterministic, not load.
                        # Re-planning the namespace per rung keeps the alias
                        # layer coherent with whatever operators remain.
                        pushdown, removed = step
                        stripped.append(removed)
                        plan = self.namespace_plan(pushdown, meta, wrapper)
                        continue
                    backoff = self.config.retry_backoff * (2 ** (attempt - 1))
                    # An event-aware sleep: a write-off wakes the backoff
                    # immediately instead of letting the zombie serve it out.
                    if event is not None:
                        event.wait(backoff)
                    else:
                        cancellation.sleep(backoff)
                    with guard:
                        written_off = id(node) in abandoned
                    if not written_off:
                        continue
                return _CallOutcome(
                    rows=None,
                    elapsed=time.monotonic() - started_at[id(node)],
                    attempts=attempt,
                    error=f"{type(exc).__name__}: {exc}",
                    degraded_to=plan.expression.to_text() if stripped else None,
                    split_calls=len(plan.split or ()),
                )
            call_elapsed = time.monotonic() - started
            with guard:
                if id(node) not in abandoned:
                    # Per-attempt latency for the cost model; the report below
                    # carries the user-facing total including retries.
                    self.history.record(
                        node.extent_name, node.expression, call_elapsed, len(rows)
                    )
                    recorded.add(id(node))
            return _CallOutcome(
                rows=rows,
                elapsed=time.monotonic() - started_at[id(node)],
                attempts=attempt + 1,
                degraded_to=plan.expression.to_text() if stripped else None,
                split_calls=len(plan.split or ()),
            )

    # -- name-space translation (the local transformation map) ---------------------------------
    def _meta_for_collection(self, name: str, default: MetaExtent) -> MetaExtent | None:
        """The MetaExtent a ``get(name)`` refers to, or None for a non-extent name."""
        if name == default.name:
            return default
        try:
            return self.registry.extent(name)
        except Exception:
            return None

    def _branch_vocabulary(self, node_meta: MetaExtent) -> dict[str, str]:
        """One extent's source-to-mediator attribute vocabulary, in stable order.

        The keys are the attribute names the source's rows carry (interface
        attributes translated through the local transformation map, plus any
        further map pairs); the values are the mediator names they stand for.
        """
        vocabulary: dict[str, str] = {}
        try:
            interface_attributes = self.registry.interface_attributes(node_meta.interface)
        except Exception:
            interface_attributes = []
        for attribute in interface_attributes:
            vocabulary[node_meta.map.attribute_to_source(attribute)] = attribute
        for source, mediator in node_meta.map.source_to_mediator.items():
            vocabulary.setdefault(source, mediator)
        return vocabulary

    def _colliding_attributes(self, metas: Iterable[MetaExtent]) -> set[str]:
        """Source attribute names that different extents map to different mediator names."""
        mediator_names: dict[str, set[str]] = {}
        for node_meta in metas:
            for source, mediator in self._branch_vocabulary(node_meta).items():
                mediator_names.setdefault(source, set()).add(mediator)
        return {source for source, names in mediator_names.items() if len(names) > 1}

    def _alias_plan(
        self, metas: Iterable[MetaExtent], colliding: set[str]
    ) -> tuple[dict[str, "_BranchAliases"], dict[str, str]]:
        """Per-extent alias assignments plus the merged (collision-free) reverse map.

        Every extent touching a colliding attribute gets a ``rename`` branch
        covering its *whole* vocabulary, with unique output names for the
        colliding attributes; the reverse map then keys on those outputs, so
        no two extents can claim the same row attribute.
        """
        metas = list(metas)
        taken: set[str] = set()
        for node_meta in metas:
            vocabulary = self._branch_vocabulary(node_meta)
            taken.update(vocabulary)
            taken.update(vocabulary.values())
        aliases: dict[str, _BranchAliases] = {}
        reverse: dict[str, str] = {}
        for node_meta in metas:
            vocabulary = self._branch_vocabulary(node_meta)
            pairs: list[tuple[str, str]] = []
            mediator_to_output: dict[str, str] = {}
            for source, mediator in vocabulary.items():
                output = source
                if source in colliding:
                    output = f"{source}__{node_meta.name}"
                    while output in taken:
                        output += "_"
                    taken.add(output)
                pairs.append((source, output))
                mediator_to_output[mediator] = output
                reverse[output] = mediator
            aliases[node_meta.name] = _BranchAliases(tuple(pairs), mediator_to_output)
        return aliases, reverse

    def namespace_plan(
        self,
        expression: log.LogicalOp,
        meta: MetaExtent,
        wrapper: Any = None,
    ) -> "NamespacePlan":
        """Plan how ``expression`` crosses the submit boundary for one source.

        Detects source attribute names that collide across the extents the
        pushdown actually references (only the ``get`` nodes present -- the
        submit's default extent contributes nothing unless referenced) and
        disambiguates them by injecting a per-branch :class:`~repro.algebra.
        logical.Rename` into the submitted expression, so the reverse map is
        collision-free by construction.  When ``wrapper`` is given and its
        grammar cannot express the aliased expression, the plan instead calls
        for the refuse-to-push fallback: per-leaf ``get`` calls recombined at
        the mediator (never mis-renamed rows).
        """
        resolved: dict[str, MetaExtent] = {}
        for node in log.walk(expression):
            if isinstance(node, log.Get):
                node_meta = self._meta_for_collection(node.collection, meta)
                if node_meta is not None and node_meta.name not in resolved:
                    resolved[node_meta.name] = node_meta
        colliding = self._colliding_attributes(resolved.values())
        if not colliding:
            reverse: dict[str, str] = {}
            for node_meta in resolved.values():
                reverse.update(node_meta.map.source_to_mediator)
            return NamespacePlan(self.to_source_namespace(expression, meta), reverse)
        aliases, reverse = self._alias_plan(resolved.values(), colliding)
        translated = self.to_source_namespace(expression, meta, aliases=aliases)
        if wrapper is not None and not _wrapper_accepts(wrapper, translated):
            return NamespacePlan(
                expression, aliased=True, split=tuple(resolved.items())
            )
        return NamespacePlan(translated, reverse, aliased=True)

    def to_source_namespace(
        self,
        expression: log.LogicalOp,
        meta: MetaExtent,
        aliases: Mapping[str, "_BranchAliases"] | None = None,
    ) -> log.LogicalOp:
        """Rename collections and attributes from mediator to source vocabulary.

        A pushed-down expression may reference several extents of the same
        wrapper (e.g. a join pushed to one source); each subtree is renamed
        with the map of the extent(s) *it* references, so the two sides of a
        join can carry different local transformation maps.  ``aliases``
        (from :meth:`namespace_plan`) additionally wraps each listed extent's
        ``get`` in a :class:`~repro.algebra.logical.Rename`, and every
        attribute reference above it then uses the branch's output names.
        """

        def visit(node: log.LogicalOp) -> tuple[log.LogicalOp, dict[str, str]]:
            """Translate ``node``; also return the renames its subtree is under."""
            if isinstance(node, log.Get):
                node_meta = self._meta_for_collection(node.collection, meta)
                if node_meta is None:
                    return node, {}
                source_get = log.Get(node_meta.e.source_name())
                branch = (aliases or {}).get(node_meta.name)
                if branch is None:
                    return source_get, dict(node_meta.map.mediator_to_source)
                return log.Rename(branch.pairs, source_get), dict(branch.mediator_to_output)
            visited = [visit(child) for child in node.children()]
            children = [translated for translated, _ in visited]
            if isinstance(node, log.Join):
                (left, left_renames), (right, right_renames) = visited
                left_attr, right_attr = node.join_attributes()
                return (
                    log.Join(
                        left,
                        right,
                        (
                            left_renames.get(left_attr, left_attr),
                            right_renames.get(right_attr, right_attr),
                        ),
                        left_variable=node.left_variable,
                        right_variable=node.right_variable,
                    ),
                    {**left_renames, **right_renames},
                )
            renames: dict[str, str] = {}
            for _, child_renames in visited:
                renames.update(child_renames)
            if isinstance(node, log.Project):
                return (
                    log.Project(
                        tuple(renames.get(attr, attr) for attr in node.attributes), children[0]
                    ),
                    renames,
                )
            if isinstance(node, log.Rename):
                # A rename already present in the pushdown: translate the old
                # names it reads; above it only its own outputs are visible.
                pairs = tuple((renames.get(old, old), new) for old, new in node.pairs)
                return log.Rename(pairs, children[0]), {new: new for _, new in node.pairs}
            if isinstance(node, log.Select):
                return (
                    log.Select(node.variable, node.predicate.rename_attributes(renames), children[0]),
                    renames,
                )
            if isinstance(node, log.GroupBy):
                # Key and aggregate expressions read the child's (source)
                # attribute names; above the groupby only its own output
                # names -- chosen at the mediator -- are visible, mirroring
                # the Rename case.
                keys = tuple(
                    (name, expr.rename_attributes(renames)) for name, expr in node.keys
                )
                aggregates = tuple(
                    (name, func, arg.rename_attributes(renames))
                    for name, func, arg in node.aggregates
                )
                return (
                    log.GroupBy(node.variable, keys, aggregates, children[0]),
                    {name: name for name in node.output_attributes()},
                )
            if not children:
                return node, renames
            return node.with_children(children), renames

        translated, _ = visit(expression)
        return translated

    def _split_pushdown(self, plan: "NamespacePlan", wrapper: Any) -> Iterator[Any]:
        """Refuse-to-push fallback: per-leaf ``get`` calls, recombined at the mediator.

        The wrapper cannot express the aliases a colliding multi-extent
        pushdown needs, so submitting the expression whole would return
        mis-renamed rows.  Instead every referenced extent is fetched with a
        bare ``get`` (always within capability), each leaf's rows are renamed
        into mediator vocabulary with its *own* map, and the full pushdown is
        replayed at the mediator over the fetched rows.  Returns a lazy
        iterator of mediator-vocabulary rows.
        """
        from repro.wrappers.base import AlgebraEvaluator  # local: avoid cycle

        fetched: dict[str, list[Any]] = {}
        for name, node_meta in plan.split or ():
            leaf = self.namespace_plan(log.Get(name), node_meta)
            raw_rows = wrapper.submit(leaf.expression)
            fetched[name] = [normalize_row(row, leaf.reverse) for row in raw_rows]

        def scan(collection: str) -> Iterator[Any]:
            if collection not in fetched:
                raise QueryExecutionError(
                    f"split pushdown references unknown collection {collection!r}"
                )
            return iter(fetched[collection])

        evaluator = AlgebraEvaluator(scan=scan)
        return (ops.as_struct(row) for row in evaluator.evaluate_stream(plan.expression))

    def _check_types(self, meta: MetaExtent, wrapper: Any) -> None:
        """Run-time type check: source attributes must cover the mediator type.

        Verdicts are cached per extent but keyed to the registry's schema
        version: re-registering an extent (possibly with a different local
        transformation map) bumps the version and drops the stale verdicts,
        whichever path performed the registration.
        """
        if not self.config.type_check:
            return
        version = getattr(self.registry, "schema_version", None)
        with self._types_lock:
            if version != self._type_checked_version:
                self._type_checked_extents.clear()
                self._type_checked_version = version
            if meta.name in self._type_checked_extents:
                return
        # The check itself (a wrapper call) runs outside the lock; two
        # threads racing the same extent both check, both reach the same
        # verdict, and the cache insert below is idempotent.
        interface_attributes = self.registry.interface_attributes(meta.interface)
        source_attributes = wrapper.source_attributes(meta.e.source_name())
        if source_attributes:
            expected = {meta.map.attribute_to_source(attr) for attr in interface_attributes}
            missing = expected - set(source_attributes)
            if missing:
                raise TypeConflictError(
                    f"extent {meta.name!r}: data source collection "
                    f"{meta.e.source_name()!r} lacks attribute(s) {sorted(missing)!r} "
                    f"required by interface {meta.interface!r}; declare a map to resolve "
                    "the conflict"
                )
        with self._types_lock:
            if version == self._type_checked_version:
                self._type_checked_extents.add(meta.name)

    def invalidate_type_checks(self) -> None:
        """Forget cached type checks (after schema changes)."""
        with self._types_lock:
            self._type_checked_extents.clear()

    # -- mediator-side evaluation -----------------------------------------------------------------
    def compose_rows(
        self,
        plan: phys.PhysicalOp,
        leaf: Callable[[phys.Exec], Iterable[Any]],
        base_env: Mapping[str, Any] | None,
        union: Callable[[tuple[phys.PhysicalOp, ...]], Iterable[Any]] | None = None,
        probe: Callable[[phys.ProbeJoin, Iterator[Any]], Iterable[Any]] | None = None,
        build: Callable[[Iterator[Any]], Iterable[Any]] | None = None,
        group: Callable[[phys.MkGroupBy, Iterator[Any]], Iterable[Any]] | None = None,
    ) -> Iterator[Any]:
        """Compose the lazy operator pipeline for ``plan``.

        Every mediator-side operator is a generator (see
        :mod:`repro.runtime.operators`): rows flow through the plan one at a
        time and nothing is materialized except join build sides and the
        distinct set.  ``leaf`` supplies the row iterator of each ``exec``
        node -- a completed outcome for the barrier path, a live stream for
        the streaming engine.  ``union`` optionally overrides how ``mkunion``
        children are sequenced (the streaming engine interleaves them in
        exec-completion order).  ``probe`` supplies the engine's probe-join
        leaf -- the batching layer issuing set-valued submits over the left
        rows; ``build`` optionally wraps a hash join's build side (the
        streaming engine drains it eagerly on a dedicated thread); ``group``
        optionally overrides mediator-side grouping (the streaming engine
        suppresses grouped output computed over a known-incomplete input).

        The pipeline structure (and every ``leaf`` iterator) is built
        eagerly, so structural errors surface immediately; only *row* flow is
        lazy.
        """
        recurse = lambda child: self.compose_rows(  # noqa: E731
            child, leaf, base_env, union, probe, build, group
        )
        if isinstance(plan, phys.Exec):
            return iter(leaf(plan))
        if isinstance(plan, phys.MkBag):
            return (ops.as_struct(value) for value in plan.values)
        if isinstance(plan, phys.MkProj):
            return ops.project_rows(recurse(plan.child), plan.attributes)
        if isinstance(plan, phys.MkRename):
            return ops.rename_rows(recurse(plan.child), plan.pairs)
        if isinstance(plan, phys.Filter):
            return ops.filter_rows(
                recurse(plan.child),
                plan.variable,
                plan.predicate,
                base_env=base_env,
                subquery_evaluator=self.evaluate_subquery,
            )
        if isinstance(plan, phys.MkApply):
            return ops.apply_rows(
                recurse(plan.child),
                plan.variable,
                plan.expression,
                base_env=base_env,
                subquery_evaluator=self.evaluate_subquery,
            )
        if isinstance(plan, phys.HashJoin):
            right_rows = recurse(plan.right)
            if build is not None:
                right_rows = build(right_rows)
            return ops.hash_join_rows(recurse(plan.left), right_rows, plan.on)
        if isinstance(plan, phys.NestedLoopJoin):
            return ops.nested_loop_join_rows(recurse(plan.left), recurse(plan.right), plan.on)
        if isinstance(plan, phys.ProbeJoin):
            if probe is None:
                raise QueryExecutionError(
                    "probe join reached an engine without a probe runner"
                )
            return iter(probe(plan, recurse(plan.left)))
        if isinstance(plan, phys.MkBindJoin):
            return ops.bind_join_rows(
                recurse(plan.left),
                recurse(plan.right),
                plan.left_variable,
                plan.right_variable,
                plan.condition,
                base_env=base_env,
                subquery_evaluator=self.evaluate_subquery,
            )
        if isinstance(plan, phys.MkUnion):
            if union is not None:
                return iter(union(plan.inputs))
            return ops.union_rows([recurse(child) for child in plan.inputs])
        if isinstance(plan, phys.MkFlatten):
            return ops.flatten_rows(recurse(plan.child))
        if isinstance(plan, phys.MkDistinct):
            return ops.distinct_rows(recurse(plan.child))
        if isinstance(plan, phys.MkLimit):
            return ops.limit_rows(recurse(plan.child), plan.count)
        if isinstance(plan, phys.MkGroupBy):
            if group is not None:
                return iter(group(plan, recurse(plan.child)))
            return ops.group_rows(
                recurse(plan.child),
                plan.variable,
                plan.keys,
                plan.aggregates,
                base_env=base_env,
                subquery_evaluator=self.evaluate_subquery,
            )
        raise QueryExecutionError(f"cannot evaluate physical operator {plan.to_text()}")

    def _evaluate(
        self,
        plan: phys.PhysicalOp,
        outcomes: dict[int, Any],
        base_env: Mapping[str, Any] | None,
        probe_reports: list[ExecReport] | None = None,
        remaining: Callable[[], float | None] | None = None,
    ) -> Iterator[Any]:
        """The barrier-path pipeline: exec leaves read completed outcomes."""

        def leaf(node: phys.Exec) -> Iterable[Any]:
            rows = outcomes.get(id(node), UNAVAILABLE)
            if isinstance(rows, Unavailable):
                raise QueryExecutionError(
                    f"exec for extent {node.extent_name!r} has no outcome"
                )
            return rows

        sink = probe_reports if probe_reports is not None else []

        def probe(plan: phys.ProbeJoin, left_rows: Iterator[Any]) -> Iterator[Any]:
            return self._probe_rows_barrier(plan, left_rows, base_env, sink, remaining)

        return self.compose_rows(plan, leaf, base_env, probe=probe)

    def _probe_rows_barrier(
        self,
        plan: phys.ProbeJoin,
        left_rows: Iterator[Any],
        base_env: Mapping[str, Any] | None,
        reports: list[ExecReport],
        remaining: Callable[[], float | None] | None = None,
    ) -> Iterator[Any]:
        """Barrier-path probe-join leaf: a terminal source failure raises
        :class:`_ProbeUnavailable`, degrading the query into a partial answer.
        ``remaining`` is the query's global deadline budget: a probe call is
        only issued while it is positive, so a timed-out query degrades into
        a partial answer at most one wrapper round trip past the deadline."""
        runner = _ProbeRunner(self, plan, remaining=remaining, raise_unavailable=True)
        completed = False
        try:
            yield from ops.probe_join_rows(
                left_rows,
                plan.left_variable,
                plan.right_variable,
                plan.condition,
                prober=runner.probe,
                batch_size=self.config.bind_batch_size,
                base_env=base_env,
                subquery_evaluator=self.evaluate_subquery,
            )
            completed = True
        finally:
            runner.finish()
            # A runner that never touched the source (empty left side, every
            # key None) leaves no report: the barrier path skips evaluation
            # entirely when an unrelated source is down, so an idle probe
            # must stay invisible for the engines to stay shape-comparable.
            if runner.calls or runner.cancelled or runner._error is not None:
                reports.append(
                    runner.report(cancelled=not completed and runner._error is None)
                )

    # -- nested subqueries -------------------------------------------------------------------------
    def evaluate_subquery(self, query: Any, env: Mapping[str, Any]) -> Any:
        """Evaluate a nested (bound) subquery with the enclosing environment."""
        from repro.oql.ast import ExprQuery  # local import to avoid a cycle

        if isinstance(query, ExprQuery):
            return query.expression.evaluate(dict(env), self.evaluate_subquery)
        if self._subquery_planner is None:
            raise QueryExecutionError("no subquery planner configured")
        logical = self._subquery_planner(query)
        physical = implement(logical)
        result = self.execute(physical, base_env=env)
        if result.is_partial:
            raise UnavailableSourceError(
                ",".join(result.unavailable_sources),
                "a nested subquery touched an unavailable data source",
            )
        return result.data

    # Backwards-compatible alias for the pre-1.x private name.
    _evaluate_subquery = evaluate_subquery

"""Execution of physical plans: parallel exec dispatch, maps, partial answers.

Paper Section 4: "The physical expression contains calls to the exec operator.
These calls proceed in parallel.  Calls to available data sources succeed.
Calls to unavailable data sources block.  After a designated time period,
query evaluation stops" -- and the partially evaluated plan becomes the
answer.

The executor also implements the ``exec`` bookkeeping of Section 3.3: the
arguments, elapsed time and amount of data of every call are recorded in the
:class:`~repro.optimizer.history.ExecCallHistory` used by the cost model.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor, TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Any, Mapping, Protocol

from repro.algebra import logical as log
from repro.algebra import physical as phys
from repro.algebra.expressions import Expr
from repro.algebra.logical import transform_bottom_up
from repro.datamodel.extent import MetaExtent
from repro.datamodel.values import Bag
from repro.errors import QueryExecutionError, TypeConflictError, UnavailableSourceError
from repro.optimizer.history import ExecCallHistory
from repro.optimizer.implementation import implement
from repro.runtime import operators as ops
from repro.runtime.partial_eval import UNAVAILABLE, PartialAnswerBuilder


class RuntimeRegistry(Protocol):
    """What the executor needs from the mediator's internal database."""

    def extent(self, name: str) -> MetaExtent: ...

    def wrapper_object(self, name: str) -> Any: ...

    def interface_attributes(self, interface_name: str) -> list[str]: ...


@dataclass
class ExecReport:
    """Outcome of one exec call (one wrapper round trip)."""

    extent_name: str
    source: str
    expression: str
    elapsed: float
    rows: int
    available: bool


@dataclass
class ExecutionResult:
    """The answer to one query execution."""

    data: Bag
    is_partial: bool = False
    partial_plan: log.LogicalOp | None = None
    partial_query: str | None = None
    unavailable_sources: tuple[str, ...] = ()
    reports: tuple[ExecReport, ...] = ()

    def answer(self) -> Any:
        """The user-facing answer: data when complete, OQL text when partial."""
        return self.partial_query if self.is_partial else self.data


@dataclass
class ExecutorConfig:
    """Execution knobs."""

    #: the paper's "designated time period" before sources are declared
    #: unavailable; None waits indefinitely.
    timeout: float | None = 5.0
    #: maximum number of concurrent exec calls
    max_parallel_calls: int = 16
    #: whether the mediator checks source attribute names against the
    #: mediator interface (the run-time type check of Section 2.1)
    type_check: bool = True


class Executor:
    """Runs physical plans against wrappers registered in a mediator registry."""

    def __init__(
        self,
        registry: RuntimeRegistry,
        history: ExecCallHistory | None = None,
        config: ExecutorConfig | None = None,
        subquery_planner=None,
    ):
        self.registry = registry
        self.history = history or ExecCallHistory()
        self.config = config or ExecutorConfig()
        self._subquery_planner = subquery_planner
        self._type_checked_extents: set[str] = set()
        self.partial_builder = PartialAnswerBuilder(subquery_evaluator=self._evaluate_subquery)

    # -- public entry point ------------------------------------------------------------------
    def execute(
        self,
        plan: phys.PhysicalOp,
        base_env: Mapping[str, Any] | None = None,
        timeout: float | None = None,
    ) -> ExecutionResult:
        """Execute ``plan``; unavailable sources yield a partial answer."""
        timeout = self.config.timeout if timeout is None else timeout
        exec_nodes = phys.execs_in(plan)
        outcomes, reports = self._dispatch(exec_nodes, timeout)
        unavailable = tuple(
            report.extent_name for report in reports if not report.available
        )
        if unavailable:
            partial_plan = self.partial_builder.build(plan, outcomes, base_env=base_env)
            return ExecutionResult(
                data=Bag(),
                is_partial=True,
                partial_plan=partial_plan,
                partial_query=self.partial_builder.to_oql(partial_plan),
                unavailable_sources=unavailable,
                reports=tuple(reports),
            )
        values = self._evaluate(plan, outcomes, base_env)
        return ExecutionResult(data=Bag(values), reports=tuple(reports))

    # -- exec dispatch ------------------------------------------------------------------------
    def _dispatch(
        self, exec_nodes: list[phys.Exec], timeout: float | None
    ) -> tuple[dict[int, Any], list[ExecReport]]:
        outcomes: dict[int, Any] = {}
        reports: list[ExecReport] = []
        if not exec_nodes:
            return outcomes, reports
        workers = min(self.config.max_parallel_calls, len(exec_nodes))
        pool = ThreadPoolExecutor(max_workers=workers, thread_name_prefix="disco-exec")
        try:
            futures = {
                pool.submit(self._run_exec, node): node for node in exec_nodes
            }
            deadline = None if timeout is None else time.monotonic() + timeout
            for future, node in futures.items():
                remaining = None
                if deadline is not None:
                    remaining = max(deadline - time.monotonic(), 0.0)
                try:
                    rows, elapsed = future.result(timeout=remaining)
                    outcomes[id(node)] = rows
                    reports.append(
                        ExecReport(
                            extent_name=node.extent_name,
                            source=node.source.name,
                            expression=node.expression.to_text(),
                            elapsed=elapsed,
                            rows=len(rows),
                            available=True,
                        )
                    )
                except (UnavailableSourceError, FutureTimeoutError) as exc:
                    outcomes[id(node)] = UNAVAILABLE
                    reports.append(
                        ExecReport(
                            extent_name=node.extent_name,
                            source=node.source.name,
                            expression=node.expression.to_text(),
                            elapsed=0.0,
                            rows=0,
                            available=False,
                        )
                    )
                    if isinstance(exc, FutureTimeoutError):
                        future.cancel()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return outcomes, reports

    def _run_exec(self, node: phys.Exec) -> tuple[list[Any], float]:
        """One wrapper round trip: map, submit, reverse-map, record cost."""
        meta = self.registry.extent(node.extent_name)
        wrapper = self.registry.wrapper_object(meta.wrapper)
        self._check_types(meta, wrapper)
        source_expression = self.to_source_namespace(node.expression, meta)
        started = time.monotonic()
        raw_rows = wrapper.submit(source_expression)
        elapsed = time.monotonic() - started
        rows = [ops.as_struct(meta.map.row_to_mediator(row)) if isinstance(row, Mapping) else row
                for row in raw_rows]
        self.history.record(node.extent_name, node.expression, elapsed, len(rows))
        return rows, elapsed

    # -- name-space translation (the local transformation map) ---------------------------------
    def to_source_namespace(self, expression: log.LogicalOp, meta: MetaExtent) -> log.LogicalOp:
        """Rename collections and attributes from mediator to source vocabulary."""
        renames = meta.map.mediator_to_source

        def visit(node: log.LogicalOp) -> log.LogicalOp:
            if isinstance(node, log.Get):
                if node.collection == meta.name:
                    return log.Get(meta.e.source_name())
                return node
            if isinstance(node, log.Project):
                return log.Project(
                    tuple(renames.get(attr, attr) for attr in node.attributes), node.child
                )
            if isinstance(node, log.Select):
                return log.Select(
                    node.variable, node.predicate.rename_attributes(renames), node.child
                )
            if isinstance(node, log.Join):
                left_attr, right_attr = node.join_attributes()
                return log.Join(
                    node.left,
                    node.right,
                    (renames.get(left_attr, left_attr), renames.get(right_attr, right_attr)),
                    left_variable=node.left_variable,
                    right_variable=node.right_variable,
                )
            return node

        return transform_bottom_up(expression, visit)

    def _check_types(self, meta: MetaExtent, wrapper: Any) -> None:
        """Run-time type check: source attributes must cover the mediator type."""
        if not self.config.type_check or meta.name in self._type_checked_extents:
            return
        interface_attributes = self.registry.interface_attributes(meta.interface)
        source_attributes = wrapper.source_attributes(meta.e.source_name())
        if source_attributes:
            expected = {meta.map.attribute_to_source(attr) for attr in interface_attributes}
            missing = expected - set(source_attributes)
            if missing:
                raise TypeConflictError(
                    f"extent {meta.name!r}: data source collection "
                    f"{meta.e.source_name()!r} lacks attribute(s) {sorted(missing)!r} "
                    f"required by interface {meta.interface!r}; declare a map to resolve "
                    "the conflict"
                )
        self._type_checked_extents.add(meta.name)

    def invalidate_type_checks(self) -> None:
        """Forget cached type checks (after schema changes)."""
        self._type_checked_extents.clear()

    # -- mediator-side evaluation -----------------------------------------------------------------
    def _evaluate(
        self,
        plan: phys.PhysicalOp,
        outcomes: dict[int, Any],
        base_env: Mapping[str, Any] | None,
    ) -> list[Any]:
        if isinstance(plan, phys.Exec):
            rows = outcomes.get(id(plan), UNAVAILABLE)
            if rows is UNAVAILABLE:
                raise QueryExecutionError(
                    f"exec for extent {plan.extent_name!r} has no outcome"
                )
            return list(rows)
        if isinstance(plan, phys.MkBag):
            return [ops.as_struct(value) for value in plan.values]
        if isinstance(plan, phys.MkProj):
            return ops.project_rows(self._evaluate(plan.child, outcomes, base_env), plan.attributes)
        if isinstance(plan, phys.Filter):
            return ops.filter_rows(
                self._evaluate(plan.child, outcomes, base_env),
                plan.variable,
                plan.predicate,
                base_env=base_env,
                subquery_evaluator=self._evaluate_subquery,
            )
        if isinstance(plan, phys.MkApply):
            return ops.apply_rows(
                self._evaluate(plan.child, outcomes, base_env),
                plan.variable,
                plan.expression,
                base_env=base_env,
                subquery_evaluator=self._evaluate_subquery,
            )
        if isinstance(plan, phys.HashJoin):
            return ops.hash_join_rows(
                self._evaluate(plan.left, outcomes, base_env),
                self._evaluate(plan.right, outcomes, base_env),
                plan.on,
            )
        if isinstance(plan, phys.NestedLoopJoin):
            return ops.nested_loop_join_rows(
                self._evaluate(plan.left, outcomes, base_env),
                self._evaluate(plan.right, outcomes, base_env),
                plan.on,
            )
        if isinstance(plan, phys.MkBindJoin):
            return ops.bind_join_rows(
                self._evaluate(plan.left, outcomes, base_env),
                self._evaluate(plan.right, outcomes, base_env),
                plan.left_variable,
                plan.right_variable,
                plan.condition,
                base_env=base_env,
                subquery_evaluator=self._evaluate_subquery,
            )
        if isinstance(plan, phys.MkUnion):
            return ops.union_rows(
                self._evaluate(child, outcomes, base_env) for child in plan.inputs
            )
        if isinstance(plan, phys.MkFlatten):
            return ops.flatten_rows(self._evaluate(plan.child, outcomes, base_env))
        if isinstance(plan, phys.MkDistinct):
            return ops.distinct_rows(self._evaluate(plan.child, outcomes, base_env))
        raise QueryExecutionError(f"cannot evaluate physical operator {plan.to_text()}")

    # -- nested subqueries -------------------------------------------------------------------------
    def _evaluate_subquery(self, query: Any, env: Mapping[str, Any]) -> Any:
        """Evaluate a nested (bound) subquery with the enclosing environment."""
        from repro.oql.ast import ExprQuery  # local import to avoid a cycle

        if isinstance(query, ExprQuery):
            return query.expression.evaluate(dict(env), self._evaluate_subquery)
        if self._subquery_planner is None:
            raise QueryExecutionError("no subquery planner configured")
        logical = self._subquery_planner(query)
        physical = implement(logical)
        result = self.execute(physical, base_env=env)
        if result.is_partial:
            raise UnavailableSourceError(
                ",".join(result.unavailable_sources),
                "a nested subquery touched an unavailable data source",
            )
        return result.data

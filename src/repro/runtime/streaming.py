"""The streaming (Volcano-style) execution engine.

The barrier executor (:meth:`~repro.runtime.executor.Executor.execute`)
collects every exec outcome before a single row reaches the caller -- the
right shape for the paper's partial-answer semantics, where the answer must
embed all obtained data.  This module is the other shape: rows flow to the
caller *while* sources are still answering.

* Exec calls are dispatched to the executor's shared pool immediately; the
  pipeline above them is the same lazy-generator composition the barrier
  path uses (:meth:`Executor.compose_rows`).
* A ``mkunion`` interleaves its children in *exec-completion order*: the
  branch whose source answers first streams first, so the time to the first
  row tracks the fastest source, not the slowest.
* Early termination -- a satisfied ``mklimit``, or :meth:`close` -- closes
  the pipeline and cancels the in-flight exec calls cooperatively (their
  workers wake from latency sleeps instead of draining them).
* A source that fails or times out contributes no further rows; the failure
  is recorded on the per-call :class:`ExecReport` exactly like the barrier
  path records it, and surfaces through :attr:`unavailable_sources` /
  :meth:`errors` once the stream ends.  No resubmittable partial *query* is
  built: rows already delivered cannot be embedded back into one.
* A call that fails while being *opened* (no rows delivered yet) is retried
  with the same policy as the barrier path (:attr:`ExecutorConfig.max_retries`
  with backoff), including the degrading-pushdown ladder for
  capability/translation failures (:mod:`repro.runtime.degrade`).
* A call that dies *mid-stream* (after delivering rows) is recovered with
  **exactly-once row delivery** when budget remains
  (:attr:`ExecutorConfig.resume_midstream`) -- reopens draw from the shared
  ``max_retries`` budget, or from the dedicated ``max_resumes`` budget when
  one is configured (so a fail-fast ``max_retries=0`` mediator can still
  recover streams that die mid-transfer).  Wrappers declaring the
  ``token`` resume capability reopen *source-side*: the stream's last
  :class:`~repro.wrappers.base.ResumableStream` token is handed back through
  ``submit_stream(expr, resume_from=token)`` and the source ships only the
  rows still owed.  Wrappers declaring deterministic ``replay`` (and token
  wrappers whose call was degraded or split, where token positions no longer
  line up) are reopened from scratch and the mediator skips the rows it
  already delivered -- dedup by delivered-row count, counted as
  ``ExecReport.replayed_rows``.  Wrappers declaring neither are written off
  as before: without a token or a determinism guarantee, reopening a
  half-consumed cursor risks duplicating or dropping rows.

Iteration is replayable: the execution buffers what it has yielded, so a
second ``iter()`` (or :meth:`to_list` after a partial read) replays the
prefix and continues the live tail -- the pipeline generators themselves are
never consumed twice.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures import TimeoutError as _FuturesTimeoutError
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from repro.algebra import logical as log
from repro.algebra import physical as phys
from repro.runtime import cancellation
from repro.runtime import operators as ops
from repro.runtime.backpressure import StreamClosed
from repro.runtime.degrade import compensate_rows, degrade_pushdown, is_capability_failure
from repro.runtime.executor import (
    ExecReport,
    _ProbeCancelled,
    _ProbeRunner,
    collect_errors,
    normalize_row,
)
from repro.wrappers.base import RESUME_REPLAY, RESUME_TOKEN, ResumableStream


@dataclass
class _Opened:
    """What the worker-side half of one streaming exec call produced."""

    rows: Iterable[Any] | None = None
    renames: Mapping[str, str] = field(default_factory=dict)
    #: row count when the wrapper answered with a sized sequence (history is
    #: recorded in the worker then); None for lazy cursors (recorded at drain).
    sized: int | None = None
    #: wall clock of the open round trip (worker side).
    elapsed: float = 0.0
    error: str | None = None
    #: how many wrapper calls the open took (> 1 under retry).
    attempts: int = 1
    #: final submitted (source-namespace) expression when the retry policy
    #: degraded the pushdown; None when the original was used.
    degraded_to: str | None = None
    #: per-leaf wrapper calls when the pushdown was split at the mediator
    #: (refuse-to-push fallback); 0 when the expression was pushed whole.
    split_calls: int = 0
    #: the wrapper's declared mid-stream resume support (token/replay/None);
    #: decides whether a death during the drain is recoverable.
    resume_mode: str | None = None
    #: the wrapper's :class:`ResumableStream` when it returned one -- its
    #: ``token`` at death time is where a token resume restarts the source.
    stream: ResumableStream | None = None
    #: final (mediator-namespace) pushdown and the operators stripped off it,
    #: kept so a reopen re-enters the degradation ladder at the same rung.
    pushdown: log.LogicalOp | None = None
    stripped: tuple = ()
    #: rows the consumer must silently drop from this segment because they
    #: were already delivered before a replay reopen (0 for token resumes --
    #: the source itself skipped them).
    skip: int = 0


@dataclass(frozen=True)
class _ResumeRequest:
    """Consumer-side decision to reopen a call that died mid-stream."""

    #: ``token`` -- restart the source past ``token``; ``replay`` -- reopen
    #: from scratch, the consumer drops the first ``skip`` delivered rows.
    mode: str
    token: Any = None
    skip: int = 0
    #: the pushdown rung (and its stripped operators) the dying segment was
    #: running at; the reopen starts there instead of re-climbing the ladder.
    pushdown: log.LogicalOp | None = None
    stripped: tuple = ()


class _ExecState:
    """Book-keeping for one exec call of a streaming plan."""

    __slots__ = (
        "node",
        "future",
        "event",
        "report",
        "consumed",
        "started",
        "lock",
        "recorded",
        "attempts",
        "resumed",
        "replayed",
        "resume_opens",
    )

    def __init__(self, node: phys.Exec):
        self.node = node
        self.future: Future | None = None
        self.event = threading.Event()
        self.report: ExecReport | None = None
        self.consumed = 0  # rows pulled by the consumer so far
        self.started: float | None = None
        # Serializes history recording between the worker and the consumer:
        # one terminal observation per call, never both (the streaming
        # counterpart of the barrier dispatcher's guard/abandoned/recorded).
        self.lock = threading.Lock()
        self.recorded = False
        # Wrapper attempts completed so far, kept current by the worker so a
        # write-off report states the true count -- the same number the
        # barrier dispatcher tracks in ``attempts_made`` (the two engines'
        # attempt accounting must agree; the equivalence harness asserts it).
        # Mid-stream reopens consume attempts from the same budget.
        self.attempts = 0
        #: successful mid-stream recoveries (ExecReport.resumed_calls).
        self.resumed = 0
        #: already-delivered rows re-shipped and skipped at the mediator
        #: during replay reopens (ExecReport.replayed_rows).
        self.replayed = 0
        #: reopen wrapper calls charged to the *dedicated* ``max_resumes``
        #: budget (ExecReport.resume_attempts); stays 0 under the legacy
        #: accounting where reopens draw from ``max_retries``.
        self.resume_opens = 0


class StreamingExecution:
    """One streaming query execution: iterate it to receive rows.

    Produced by :meth:`Executor.execute_stream`; the surrounding
    :class:`~repro.core.result.QueryResult` (see ``Mediator.query_stream``)
    exposes it through ``iter_rows()``.
    """

    def __init__(
        self, executor, plan: phys.PhysicalOp, base_env=None, timeout=None, on_finish=None
    ):
        self._executor = executor
        self._plan = plan
        self._base_env = base_env
        self._timeout = timeout
        self._deadline = None if timeout is None else time.monotonic() + timeout
        #: executor callback run exactly once when the stream ends (releases
        #: the admission slot, wakes a draining close).
        self._on_finish = on_finish
        exec_nodes = phys.execs_in(plan)
        self._states: dict[int, _ExecState] = {
            id(node): _ExecState(node) for node in exec_nodes
        }
        self._order = [id(node) for node in exec_nodes]
        self._buffer: list[Any] = []
        self._finished = False
        #: a mediator-side error that aborted the pipeline; re-raised on any
        #: later consumption so an aborted stream never looks complete.
        self._failure: BaseException | None = None
        self._pipeline: Iterator[Any] | None = None
        pool = executor._ensure_pool()
        for state in self._states.values():
            try:
                state.future = pool.submit(self._open_exec, state)
            except RuntimeError:
                # The pool shut down between _ensure_pool and this submit
                # (mediator closing): the call degrades into an unavailable
                # source instead of raising into the query.
                future: Future = Future()
                future.set_result(_Opened(error="mediator closed"))
                state.future = future
        # Probe joins hide their exec from execs_in -- it must NOT be opened
        # up front like the calls above (no probe key exists yet).  Each one
        # still gets a state, so its aggregated report and cancellation event
        # live with the rest; its ``future`` stays None.
        for probe_plan in (n for n in phys.walk(plan) if isinstance(n, phys.ProbeJoin)):
            self._states[id(probe_plan.probe)] = _ExecState(probe_plan.probe)
            self._order.append(id(probe_plan.probe))
        try:
            self._pipeline = executor.compose_rows(
                plan,
                leaf=self._exec_rows,
                base_env=base_env,
                union=self._union_in_completion_order,
                probe=self._probe_rows,
                build=self._eager_build,
                group=self._grouped_rows,
            )
        except BaseException:
            # Pipeline construction failed after the calls were dispatched:
            # write them off so no worker serves out a latency for a stream
            # that will never exist.
            self._finish()
            raise

    # -- public surface ---------------------------------------------------------------------
    def __iter__(self) -> Iterator[Any]:
        """Yield every row; replayable (buffered prefix + live tail).

        Pausing or abandoning an iteration leaves the stream *open*: a later
        iteration resumes where the live tail stopped (that is what makes
        ``rows()`` after a partial ``iter_rows()`` see everything).  Call
        :meth:`close` to cancel the remaining work instead.
        """
        index = 0
        while True:
            if index < len(self._buffer):
                yield self._buffer[index]
                index += 1
                continue
            if self._failure is not None:
                raise self._failure
            if self._finished:
                return
            try:
                row = next(self._pipeline)
            except StopIteration:
                self._finish()
                return
            except BaseException as exc:
                # A mediator-side error (failed type check, planner bug)
                # aborts the query; write off the surviving calls so their
                # workers stop promptly, and remember the failure so a later
                # rows()/iter_rows() re-raises instead of presenting the
                # buffered prefix as a complete answer.
                self._failure = exc
                self._finish()
                raise
            self._buffer.append(row)

    def to_list(self) -> list[Any]:
        """Drain the stream and return every row."""
        return list(self)

    def close(self) -> None:
        """Stop the stream: close the pipeline, cancel in-flight exec calls."""
        self._finish()

    def __del__(self):
        # A stream dropped without being drained or closed must not leave
        # its workers serving out simulated latencies.
        try:
            self._finish()
        except Exception:
            pass

    @property
    def finished(self) -> bool:
        """True once the stream has ended (drained, failed out, or closed)."""
        return self._finished

    @property
    def failure(self) -> BaseException | None:
        """The mediator-side error that aborted the stream, if any."""
        return self._failure

    @property
    def calls_issued(self) -> int:
        """Number of exec calls this execution dispatched (all of them, up front)."""
        return len(self._states)

    @property
    def reports(self) -> tuple[ExecReport, ...]:
        """Per-call reports, in plan order; grows as calls settle."""
        return tuple(
            self._states[key].report
            for key in self._order
            if self._states[key].report is not None
        )

    @property
    def unavailable_sources(self) -> tuple[str, ...]:
        """Extents that failed or timed out (cancelled calls excluded)."""
        return tuple(
            report.extent_name
            for report in self.reports
            if not report.available and not report.cancelled
        )

    @property
    def is_partial(self) -> bool:
        """True when some source contributed no (or truncated) rows due to failure."""
        return bool(self.unavailable_sources)

    def errors(self) -> dict[str, str]:
        """Failure reasons keyed by extent name (empty while all is well)."""
        return collect_errors(self.reports)

    # -- worker side ------------------------------------------------------------------------
    def _open_exec(self, state: _ExecState, resume: _ResumeRequest | None = None) -> _Opened:
        """One wrapper round trip, opened as a row iterable.

        Runs in the pool for the initial open; mid-stream reopens call it
        synchronously on the consumer thread with a ``resume`` request.

        Mediator-side failures (unknown extent, type-check conflict) raise --
        they abort the query exactly as in the barrier path.  Wrapper
        failures become error outcomes, after the same retry policy the
        barrier path applies: transient failures re-submit with backoff,
        capability/translation failures re-submit a degraded pushdown whose
        stripped operators are replayed over the stream at the mediator.
        For wrappers that answer with a sized sequence the call's history is
        recorded here (the count is known); lazy cursors -- and degraded
        calls, whose compensation wraps the iterable -- are recorded by the
        consumer at drain time.

        A reopen starts the attempt counter at :attr:`_ExecState.attempts`
        (the calls the dying segments already consumed) and, for a token
        resume, passes the token through ``submit_stream(resume_from=...)``.
        If a token reopen hits a capability failure and degrades, token
        positions no longer line up with the degraded stream, so the reopen
        falls back to a full replay and tells the consumer to skip the rows
        it already delivered (:attr:`_Opened.skip`).
        """
        executor = self._executor
        config = executor.config
        node = state.node
        meta = executor.registry.extent(node.extent_name)
        wrapper = executor.registry.wrapper_object(meta.wrapper)
        executor._check_types(meta, wrapper)
        if resume is not None and resume.pushdown is not None:
            pushdown = resume.pushdown
            stripped = list(resume.stripped)
        else:
            pushdown = node.expression
            stripped = []
        token = resume.token if resume is not None and resume.mode == RESUME_TOKEN else None
        skip = resume.skip if resume is not None else 0
        plan = executor.namespace_plan(pushdown, meta, wrapper)
        if state.started is None:
            state.started = time.monotonic()
        # A reopen under a dedicated ``max_resumes`` budget does not draw
        # down ``max_retries``: its attempt bound is however many reopens the
        # call still has left, on top of the attempts already made.
        dedicated = resume is not None and config.max_resumes is not None
        if dedicated:
            attempts = state.attempts + max(0, config.max_resumes - state.resume_opens)
        else:
            attempts = max(1, config.max_retries + 1)
        attempt = state.attempts
        open_started = time.monotonic()
        while True:
            if dedicated:
                state.resume_opens += 1
            attempt_started = time.monotonic()
            try:
                with cancellation.activate(state.event):
                    if plan.split is not None:
                        # Refuse-to-push fallback: per-leaf gets are fetched
                        # eagerly (so open failures retry exactly like the
                        # barrier path); the recombination over them stays a
                        # lazy mediator-vocabulary iterator.
                        rows = executor._split_pushdown(plan, wrapper)
                    elif token is not None:
                        rows = wrapper.submit_stream(plan.expression, resume_from=token)
                    else:
                        rows = wrapper.submit_stream(plan.expression)
            except StreamClosed:
                # The consumer is gone, not the source: nothing to retry,
                # degrade, or record as a failure.
                raise
            except Exception as exc:
                attempt += 1
                state.attempts = attempt
                call_elapsed = time.monotonic() - attempt_started
                cancelled = state.event.is_set()
                step = None
                exhausted = attempt >= attempts
                if config.degrade_pushdown and is_capability_failure(exc):
                    step = degrade_pushdown(pushdown)
                    if step is None:
                        # Deterministic rejection, nothing left to strip.
                        exhausted = True
                terminal = cancelled or exhausted
                with state.lock:
                    # Cancelled or already-written-off calls are not failures
                    # to learn from; every real attempt records its elapsed.
                    if not state.recorded and not state.event.is_set():
                        executor.history.record_failure(
                            node.extent_name, node.expression, call_elapsed
                        )
                        if terminal:
                            state.recorded = True
                if resume is not None:
                    # Reopens run synchronously on the consumer thread: the
                    # query deadline must bound their retry loop too (the
                    # initial open is bounded by the consumer's
                    # future.result(timeout=...) instead).
                    remaining = self._remaining()
                    if remaining is not None and remaining <= 0:
                        terminal = True
                if not terminal:
                    if step is not None:
                        if token is not None and not config.replay_resume:
                            # The token indexed the previous pushdown's
                            # stream, so degrading means replaying -- which
                            # the configuration forbids.  Give up rather than
                            # re-ship delivered rows.
                            return _Opened(
                                error=f"{type(exc).__name__}: {exc}",
                                elapsed=time.monotonic() - state.started,
                                attempts=attempt,
                                degraded_to=plan.expression.to_text() if stripped else None,
                                split_calls=len(plan.split or ()),
                            )
                        # Degrading retry: strictly smaller pushdown, no
                        # backoff -- the failure was deterministic, not load.
                        # Re-planning per rung keeps the alias layer coherent
                        # with whatever operators remain.
                        pushdown, removed = step
                        stripped.append(removed)
                        if token is not None:
                            # The token indexed the *previous* pushdown's
                            # stream; a degraded stream has different
                            # positions.  Fall back to a deterministic full
                            # replay: the consumer drops the rows it already
                            # has (token wrappers can reposition, so they can
                            # certainly replay).
                            token = None
                            skip = state.consumed
                        plan = executor.namespace_plan(pushdown, meta, wrapper)
                        continue
                    backoff = config.retry_backoff * (2 ** (attempt - 1))
                    if resume is not None and remaining is not None:
                        backoff = min(backoff, remaining)
                    # Event-aware: a write-off wakes the backoff immediately.
                    state.event.wait(backoff)
                    if not state.event.is_set():
                        continue
                return _Opened(
                    error=f"{type(exc).__name__}: {exc}",
                    elapsed=time.monotonic() - state.started,
                    attempts=attempt,
                    degraded_to=plan.expression.to_text() if stripped else None,
                    split_calls=len(plan.split or ()),
                )
            break
        state.attempts = attempt + 1
        elapsed = time.monotonic() - (state.started if resume is None else open_started)
        degraded_to = plan.expression.to_text() if stripped else None
        stream = rows if isinstance(rows, ResumableStream) else None
        # Split-pushdown rows arrive already in mediator vocabulary.
        renames: dict = {} if plan.split is not None else dict(plan.reverse)
        if stripped:
            # Rename here (once), then replay the stripped operators lazily;
            # the consumer sees mediator-vocabulary rows and an empty map.
            # ``reverse_renames`` is never rebound, so the lazy generator
            # below cannot capture the emptied map by mistake.
            reverse_renames = renames
            rows = compensate_rows(
                stripped, (normalize_row(row, reverse_renames) for row in rows)
            )
            renames = {}
        sized = None
        if resume is None and not stripped:
            if isinstance(rows, (list, tuple)):
                sized = len(rows)
            elif stream is not None:
                # A ResumableStream over a materialized (RPC-style) answer:
                # still a sized reply, so the history fast path applies --
                # the count is known at open, before any consumer drain.
                sized = stream.sized
        if sized is not None:
            with state.lock:
                if not state.recorded and not state.event.is_set():
                    executor.history.record(node.extent_name, node.expression, elapsed, sized)
                    state.recorded = True
        return _Opened(
            rows=rows,
            renames=renames,
            sized=sized,
            elapsed=elapsed,
            attempts=attempt + 1,
            degraded_to=degraded_to,
            split_calls=len(plan.split or ()),
            resume_mode=getattr(wrapper, "resume_support", None),
            stream=stream,
            pushdown=pushdown,
            stripped=tuple(stripped),
            skip=skip,
        )

    # -- consumer side ------------------------------------------------------------------------
    def _remaining(self) -> float | None:
        if self._deadline is None:
            return None
        return max(self._deadline - time.monotonic(), 0.0)

    def _report(self, state: _ExecState, **overrides) -> ExecReport:
        node = state.node
        elapsed = 0.0 if state.started is None else time.monotonic() - state.started
        values = dict(
            extent_name=node.extent_name,
            source=node.source.name,
            expression=node.expression.to_text(),
            elapsed=elapsed,
            rows=state.consumed,
            available=True,
            resumed_calls=state.resumed,
            replayed_rows=state.replayed,
            resume_attempts=state.resume_opens,
        )
        values.update(overrides)
        return ExecReport(**values)

    def _exec_rows(self, node: phys.Exec) -> Iterator[Any]:
        """The leaf generator: wait for the call to open, then stream its rows."""
        state = self._states[id(node)]
        return self._stream_state(state)

    def _timeout_text(self) -> str:
        return "timed out after " + (
            "infs" if self._timeout is None else f"{self._timeout:.4g}s"
        )

    def _record_failure_once(self, state: _ExecState, elapsed: float) -> None:
        with state.lock:
            if not state.recorded:
                self._executor.history.record_failure(
                    state.node.extent_name, state.node.expression, elapsed
                )
                state.recorded = True

    def _resume_after(
        self, state: _ExecState, opened: _Opened, segment_time: float
    ) -> _Opened | None:
        """Try to reopen a call that died after delivering rows.

        Returns the reopened segment (possibly an error outcome whose
        attempts the caller folds into the failure report), or ``None`` when
        the death is not recoverable: recovery disabled, no retry budget
        left, the call written off, the deadline expired, or the wrapper
        declares no resume support.  Runs synchronously on the consumer
        thread -- the reopen happens exactly where the next row was needed.

        Mode selection: a token resume needs a live token for the *same*
        stream the source produced -- a degraded or split call compensates or
        recombines rows at the mediator, so delivered-row positions no longer
        equal source positions and the reopen falls back to the
        deterministic-replay path (reopen from scratch, skip the rows already
        delivered).  Replay is sound for ``token`` wrappers too: being able
        to reposition a cursor implies being able to re-produce the stream.
        """
        executor = self._executor
        config = executor.config
        if not config.resume_midstream:
            return None
        if self._finished or state.event.is_set():
            return None
        remaining = self._remaining()
        if remaining is not None and remaining <= 0:
            return None
        if config.max_resumes is not None:
            # Dedicated reopen budget: independent of max_retries, so a
            # fail-fast configuration can still recover mid-stream deaths.
            if state.resume_opens >= config.max_resumes:
                return None
        else:
            budget = max(1, config.max_retries + 1)
            if state.attempts >= budget:
                return None
        mode = opened.resume_mode
        if mode not in (RESUME_TOKEN, RESUME_REPLAY):
            return None
        clean_token = (
            mode == RESUME_TOKEN
            and opened.stream is not None
            and not opened.stripped
            and not opened.split_calls
        )
        if not clean_token and not config.replay_resume:
            return None
        # The death itself is a (non-terminal) failure observation charging
        # the dying segment's own time: the cost model should learn the
        # source is flaky even when recovery succeeds.
        with state.lock:
            if state.recorded or state.event.is_set():
                return None
            executor.history.record_failure(
                state.node.extent_name, state.node.expression, segment_time
            )
        # Transient-failure backoff before touching the source again; a
        # write-off wakes it immediately and the query deadline caps it (the
        # reopen runs on the consumer thread, so the caller's iter_rows() is
        # blocked for the duration).
        backoff = config.retry_backoff * (2 ** (max(state.attempts, 1) - 1))
        if remaining is not None:
            backoff = min(backoff, remaining)
        if state.event.wait(backoff):
            # Written off during the backoff: the record above becomes the
            # call's terminal observation (the caller must not add another).
            with state.lock:
                state.recorded = True
            return None
        remaining = self._remaining()
        if remaining is not None and remaining <= 0:
            # The deadline expired during the backoff; the death report
            # stands (the record above is the terminal observation).
            with state.lock:
                state.recorded = True
            return None
        if clean_token:
            request = _ResumeRequest(
                mode=RESUME_TOKEN,
                token=opened.stream.token,
                pushdown=opened.pushdown,
                stripped=opened.stripped,
            )
        else:
            request = _ResumeRequest(
                mode=RESUME_REPLAY,
                skip=state.consumed,
                pushdown=opened.pushdown,
                stripped=opened.stripped,
            )
        return self._open_exec(state, resume=request)

    def _stream_state(self, state: _ExecState) -> Iterator[Any]:
        node = state.node
        executor = self._executor
        try:
            opened = state.future.result(timeout=self._remaining())
        except (_FuturesTimeoutError, TimeoutError):
            with state.lock:
                state.event.set()
                if not state.recorded:
                    if state.started is not None:
                        executor.history.record_failure(
                            node.extent_name, node.expression, time.monotonic() - state.started
                        )
                    state.recorded = True
            state.future.cancel()
            state.report = self._report(
                state,
                rows=0,
                available=False,
                error=self._timeout_text(),
                attempts=max(1, state.attempts),
            )
            return
        if opened.error is not None:
            state.report = self._report(
                state,
                rows=0,
                available=False,
                error=opened.error,
                attempts=opened.attempts,
                degraded_to=opened.degraded_to,
                split_calls=opened.split_calls,
            )
            return
        # Time attributed to the *source*: the open round trips plus the time
        # spent inside its cursor pulls -- not the consumer wall clock, which
        # includes time this generator sat suspended behind other branches.
        # ``source_time`` spans the whole call (the success observation and
        # the user-facing elapsed); ``segment_time`` restarts per (re)opened
        # segment, so each failure observation charges only the time *its*
        # segment wasted, matching the barrier path's per-attempt recording.
        source_time = opened.elapsed
        while True:  # one iteration per (re)opened stream segment
            segment_time = opened.elapsed
            renames = opened.renames
            iterator = iter(opened.rows)
            #: rows of this segment that were already delivered before a
            #: replay reopen; dropped silently (dedup by delivered-row count).
            to_skip = opened.skip
            died: BaseException | None = None
            try:
                while True:
                    if self._deadline is not None and time.monotonic() > self._deadline:
                        # The designated time period expired mid-drain: the
                        # rows already delivered stand, the rest of this
                        # source is a timeout.
                        state.event.set()
                        self._record_failure_once(state, segment_time)
                        state.report = self._report(
                            state,
                            available=False,
                            error=self._timeout_text(),
                            attempts=opened.attempts,
                            degraded_to=opened.degraded_to,
                            split_calls=opened.split_calls,
                        )
                        return
                    pulled = time.monotonic()
                    try:
                        raw = iterator.__next__()
                        row = normalize_row(raw, renames)
                    except StopIteration:
                        break
                    except StreamClosed:
                        # Consumer-side close crossing a mediator-recombined
                        # iterator: cancellation, not a source death -- do
                        # not spend resume budget reopening for nobody.
                        raise
                    except Exception as exc:  # the source died mid-stream
                        pull_time = time.monotonic() - pulled
                        source_time += pull_time
                        segment_time += pull_time
                        died = exc
                        break
                    pull_time = time.monotonic() - pulled
                    source_time += pull_time
                    segment_time += pull_time
                    if to_skip > 0:
                        to_skip -= 1
                        state.replayed += 1
                        continue
                    state.consumed += 1
                    yield row
            finally:
                close = getattr(iterator, "close", None)
                if close is not None:
                    close()
            if died is None:
                break  # fully drained
            reopened = self._resume_after(state, opened, segment_time)
            if reopened is None or reopened.error is not None:
                # Unrecoverable (no capability, no budget, write-off, or the
                # reopen attempts themselves failed out): report the death.
                # The reopen loop already recorded its own attempt failures.
                if reopened is None:
                    self._record_failure_once(state, segment_time)
                error = f"{type(died).__name__}: {died}"
                attempts = opened.attempts if reopened is None else reopened.attempts
                state.report = self._report(
                    state,
                    available=False,
                    error=error,
                    attempts=attempts,
                    degraded_to=opened.degraded_to,
                    split_calls=opened.split_calls,
                )
                return
            state.resumed += 1
            source_time += reopened.elapsed
            opened = reopened
        with state.lock:
            if not state.recorded:
                # Lazy cursor fully drained: one success observation with the
                # source's own time (sized wrappers recorded at open).
                executor.history.record(
                    node.extent_name, node.expression, source_time, state.consumed
                )
                state.recorded = True
        state.report = self._report(
            state,
            rows=opened.sized or state.consumed,
            attempts=opened.attempts,
            degraded_to=opened.degraded_to,
            split_calls=opened.split_calls,
        )

    def _union_in_completion_order(
        self, inputs: tuple[phys.PhysicalOp, ...]
    ) -> Iterator[Any]:
        """Stream union branches as their exec calls complete.

        A branch is ready when every exec call under it has settled; ready
        branches stream immediately while the others are still in flight.
        When the deadline expires with branches still pending they are
        drained anyway -- their leaf generators observe the expired deadline
        and record the timeout instead of producing rows.
        """
        pending: list[tuple[phys.PhysicalOp, list[Future]]] = [
            (child, [self._states[id(node)].future for node in phys.execs_in(child)])
            for child in inputs
        ]
        while pending:
            ready = [entry for entry in pending if all(f.done() for f in entry[1])]
            if ready:
                for entry in ready:
                    pending.remove(entry)
                    yield from self._evaluate_branch(entry[0])
                continue
            outstanding = {f for _, futures in pending for f in futures if not f.done()}
            done, _ = wait(outstanding, timeout=self._remaining(), return_when=FIRST_COMPLETED)
            if not done:
                # Deadline expired: drain the stragglers; each exec leaf will
                # time out individually and report it.
                for child, _ in pending:
                    yield from self._evaluate_branch(child)
                return

    def _evaluate_branch(self, child: phys.PhysicalOp) -> Iterator[Any]:
        return self._executor.compose_rows(
            child,
            leaf=self._exec_rows,
            base_env=self._base_env,
            union=self._union_in_completion_order,
            probe=self._probe_rows,
            build=self._eager_build,
            group=self._grouped_rows,
        )

    def _grouped_rows(
        self, plan: phys.MkGroupBy, child_rows: Iterator[Any]
    ) -> Iterator[Any]:
        """Mediator-side grouping with incomplete-input suppression.

        Grouping is blocking: nothing is emitted until the whole input has
        been drained, and by then every source feeding it has settled.  A
        plain row from an available source is a correct row of the full
        answer even when a sibling source failed -- but an aggregate computed
        over a partial input is *not* a sub-answer of the true result (an
        ``avg`` over one union branch is simply a wrong number).  So when any
        exec under the grouping failed or timed out, the grouped output is
        suppressed entirely: the failure is still reported, and the barrier
        path's resubmittable partial answer is the recovery route.
        """

        def rows() -> Iterator[Any]:
            grouped = list(
                ops.group_rows(
                    child_rows,
                    plan.variable,
                    plan.keys,
                    plan.aggregates,
                    base_env=self._base_env,
                    subquery_evaluator=self._executor.evaluate_subquery,
                )
            )
            keys = [id(node) for node in phys.execs_in(plan)]
            keys.extend(
                id(node.probe)
                for node in phys.walk(plan)
                if isinstance(node, phys.ProbeJoin)
            )
            for key in keys:
                state = self._states.get(key)
                report = state.report if state is not None else None
                if report is not None and not report.available and not report.cancelled:
                    return
            yield from grouped

        return rows()

    # -- probe joins ---------------------------------------------------------------------------
    def _probe_rows(self, plan: phys.ProbeJoin, left_rows: Iterator[Any]) -> Iterator[Any]:
        """The probe-join leaf: batched set-valued submits over the left rows.

        The probe's wrapper calls run lazily on the consumer thread, bounded
        by the query deadline and woken by the state's cancellation event on
        close.  A terminal source failure is swallowed -- the source simply
        contributes no further rows, like any other streaming leaf -- and
        surfaces on the probe's aggregated :class:`ExecReport`; an early
        close (a satisfied limit) marks the report cancelled instead.
        """
        executor = self._executor
        state = self._states[id(plan.probe)]

        def rows() -> Iterator[Any]:
            runner = _ProbeRunner(
                executor, plan, event=state.event, remaining=self._remaining
            )
            state.started = time.monotonic()
            completed = False
            try:
                yield from ops.probe_join_rows(
                    left_rows,
                    plan.left_variable,
                    plan.right_variable,
                    plan.condition,
                    prober=runner.probe,
                    batch_size=executor.config.bind_batch_size,
                    base_env=self._base_env,
                    subquery_evaluator=executor.evaluate_subquery,
                )
                completed = True
            except _ProbeCancelled:
                pass  # written off (close/limit): not a failure
            finally:
                runner.finish()
                state.attempts = max(1, runner.calls)
                # An idle runner (no call, no error, no cancel -- e.g. an
                # empty left side) reports nothing, mirroring the barrier
                # path, which skips probing entirely when an unrelated
                # source failure ends the query before evaluation.
                if runner.calls or runner.cancelled or runner._error is not None:
                    state.report = runner.report(
                        cancelled=not completed and runner._error is None
                    )

        return rows()

    def _eager_build(self, rows: Iterator[Any]) -> Iterator[Any]:
        """Drain a hash join's build side eagerly on a dedicated thread.

        Composed leaf order would otherwise drain the build side only when
        the join's first row is pulled -- *after* whatever pipeline work
        precedes it.  Starting the drain at compose time overlaps the build
        transfer with the probe side's own exec opens (and with probe-join
        batching).  A dedicated thread, not the shared pool: build drains can
        outlive many pool tasks, and a pool full of builds would starve the
        exec calls they are waiting on.

        The consumer joins the thread at first pull; an exception raised in
        the drain (a mediator-side bug) is re-raised there, not lost.  The
        thread is daemonic and its leaves are cancellation-aware, so an
        early close wakes the drain instead of leaking it.
        """
        drained: list[Any] = []
        failure: list[BaseException] = []

        def drain() -> None:
            try:
                for row in rows:
                    drained.append(row)
            except BaseException as exc:  # re-raised on consumption
                failure.append(exc)

        thread = threading.Thread(target=drain, name="disco-build", daemon=True)
        thread.start()

        def consume() -> Iterator[Any]:
            thread.join()
            if failure:
                raise failure[0]
            yield from drained

        return consume()

    # -- shutdown ------------------------------------------------------------------------------
    def _finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        try:
            # Closing the pipeline propagates GeneratorExit down to the exec
            # leaves, which close their (possibly lazy) source iterators.
            # (None when pipeline construction itself failed.)
            close = getattr(self._pipeline, "close", None)
            if close is not None:
                close()
        except ValueError:
            # close() raced an active iteration ("generator already
            # executing", e.g. a watchdog thread closing while the consumer
            # is blocked inside the pipeline).  The cancellation below still
            # wakes the blocked call, and the consumer winds down on its own.
            pass
        finally:
            for state in self._states.values():
                if state.report is None:
                    # Never (or only partly) consumed: written off, not failed.
                    state.event.set()
                    overrides: dict = {
                        "cancelled": True,
                        "attempts": max(1, state.attempts),
                    }
                    future = state.future
                    if future is not None:
                        future.cancel()
                        if future.done() and not future.cancelled():
                            try:
                                opened = future.result()
                            except BaseException:
                                pass
                            else:
                                overrides.update(
                                    attempts=opened.attempts,
                                    degraded_to=opened.degraded_to,
                                    split_calls=opened.split_calls,
                                )
                    state.report = self._report(state, **overrides)
            if self._on_finish is not None:
                self._on_finish()

"""The semantic answer cache: materialized answers, subsumption, partial repair.

DISCO's traffic is repetitive declarative queries over slow, intermittently
available sources, so the mediator caches *answers*, not just plans.  Three
ways a query is served without (fully) re-contacting sources:

* **exact hit** -- the query's canonical text (the plan cache's
  normalization: parsed AST printed back) matches a complete cached answer
  built under the current ``schema_version``; the rows come back with zero
  wrapper calls.
* **subsumption hit** -- the query's *translated* logical plan differs from
  a cached complete answer's plan only by mediator-compensable delta
  operators on top (``limit``, ``distinct``, ``project``/``apply`` item
  computation, and ``select`` predicates -- including a conjunct appended to
  a cached selection).  The deltas are replayed mediator-side over the
  cached rows via the degradation ladder's :func:`compensate_rows`
  machinery, so the narrower answer is computed without any source call.
* **partial patch** -- the DISCO twist.  A *partial* answer ("the answer is
  a query") is cached with its missing extents; an identical later query
  re-executes only the embedded partial plan, whose ``bag`` literals replay
  the rows already obtained and whose remaining ``submit`` nodes contact
  *only* the extents that were down -- source recovery becomes an
  incremental cache repair instead of a recomputation.

Consistency: every entry remembers the registry ``schema_version`` it was
built under and is unreachable once the version moves (lazy invalidation,
the plan cache's discipline); DBA actions additionally evict eagerly by
extent name.  A partial entry is *pinned* to its version twice: before the
patch is submitted and again after it executed -- a schema mutated between
miss and patch would otherwise weld rows of the old schema onto answers of
the new one (the mutate-between-miss-and-patch race).

Subsumption refuses what it cannot replay faithfully: predicates with free
variables beyond the select's own, subquery predicates, environment-valued
(multi-binding) items, and anything aggregating (``groupby`` is never a
delta -- aggregate queries are served by exact hits only).

Lock discipline: one cache-wide :class:`threading.RLock` (rank 43, see
``analysis/spec.py``) guards the entry map, the plan-text index, the row
budget and every counter.  The lock is never held while planning, executing,
replaying deltas or reading the registry -- lookups copy the immutable row
tuple out and leave.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterable

from repro.algebra import logical as log
from repro.algebra.expressions import (
    AGGREGATE_FUNCTIONS,
    FunctionCall,
    conjunction,
    contains_subquery,
    split_conjuncts,
    walk_expr,
)
from repro.optimizer.plancache import normalize_query_text
from repro.runtime.degrade import compensate_rows
from repro.runtime.operators import ENV_VARIABLE, apply_rows, as_struct, distinct_rows

#: deepest delta-operator stack the subsumption search will strip before
#: giving up; translated plans are shallow (limit/distinct/item/select/base),
#: so eight rungs covers every generated shape with slack for hand-built ones.
MAX_STRIP_DEPTH = 8

#: placeholder leaf standing for "the cached rows" inside a delta operator;
#: never executed -- replay rebuilds each delta over the rows directly.
_CACHED_LEAF = "__cached_rows__"


@dataclass
class CacheEntry:
    """One cached answer (complete rows, or a partial answer to repair)."""

    query_text: str  #: canonical text key (the plan cache's normalization)
    plan_text: str | None  #: translated-logical text, the subsumption key
    schema_version: int  #: registry version the answer was built under
    extents: frozenset[str]  #: extent names referenced, for eager eviction
    rows: tuple[Any, ...] | None = None  #: complete entries only
    partial_plan: log.LogicalOp | None = None  #: partial entries only
    partial_query: str | None = None
    unavailable_sources: tuple[str, ...] = ()

    @property
    def complete(self) -> bool:
        return self.rows is not None

    def row_count(self) -> int:
        return len(self.rows) if self.rows is not None else 0


def _extents_of(plan: log.LogicalOp) -> frozenset[str]:
    """Every extent a plan's submits reference (source name as fallback)."""
    return frozenset(
        submit.extent_name or submit.source for submit in log.submits_in(plan)
    )


def _has_aggregate(expr: Any) -> bool:
    for node in walk_expr(expr):
        if isinstance(node, FunctionCall) and node.name in AGGREGATE_FUNCTIONS:
            return True
    return False


def _strippable_delta(op: log.LogicalOp) -> bool:
    """Can ``op`` be replayed mediator-side over a cached superset's rows?

    The refusal cases are the ones that would change the answer: predicates
    or items that see more than the operator's own variable (multi-binding
    environments), subqueries (their evaluation needs the executor), and
    aggregates (``groupby`` is deliberately absent -- aggregate answers are
    only ever served exactly).
    """
    if isinstance(op, (log.Limit, log.Distinct, log.Project)):
        return True
    if isinstance(op, log.Select):
        return (
            not contains_subquery(op.predicate)
            and op.predicate.free_variables() <= {op.variable}
        )
    if isinstance(op, log.Apply):
        return (
            op.variable != ENV_VARIABLE
            and not contains_subquery(op.expression)
            and not _has_aggregate(op.expression)
            and op.expression.free_variables() <= {op.variable}
        )
    return False


def replay_deltas(
    deltas: Iterable[log.LogicalOp], rows: Iterable[Any]
) -> list[Any]:
    """Apply stripped delta operators (outermost first) over cached rows.

    ``limit``/``project``/``select`` reuse the degradation ladder's
    :func:`compensate_rows`; ``distinct`` and ``apply`` -- which never cross
    the wrapper boundary and therefore have no compensation arm -- are
    replayed with the shared row operators directly.
    """
    out: list[Any] = list(rows)
    for op in reversed(list(deltas)):
        if isinstance(op, log.Distinct):
            out = list(distinct_rows(out))
        elif isinstance(op, log.Apply):
            out = [
                as_struct(value)
                for value in apply_rows(out, op.variable, op.expression)
            ]
        else:
            out = list(compensate_rows([op], out))
    return out


class AnswerCache:
    """Thread-safe LRU cache of materialized (and partial) query answers.

    ``max_entries`` bounds the entry count and ``max_rows`` the *total*
    number of cached rows across entries (a single answer larger than the
    row budget is never stored).  ``subsumption=False`` turns the delta
    search off, leaving exact hits and partial repair.
    """

    def __init__(
        self,
        max_entries: int = 128,
        max_rows: int = 100_000,
        subsumption: bool = True,
    ):
        self.max_entries = max_entries
        self.max_rows = max_rows
        self.subsumption = subsumption
        #: canonical query text -> entry, in LRU order (front = coldest).
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        #: translated-plan text -> canonical text of a *complete* entry.
        self._by_plan: dict[str, str] = {}
        #: memo of raw text -> canonical key, so repeated queries skip the
        #: parse (the plan cache's discipline; bounded the same way).
        self._keys: dict[str, str] = {}
        self._total_rows = 0
        self.hits = 0
        self.subsumption_hits = 0
        self.misses = 0
        self.patches = 0
        self.stores = 0
        self.invalidations = 0
        self.evictions = 0
        # RLock, not Lock: serving threads share one cache per mediator.
        self._lock = threading.RLock()

    def _key_for(self, query_text: str) -> str:
        with self._lock:
            key = self._keys.get(query_text)
        if key is not None:
            return key
        # Parse outside the lock: normalization is the expensive part, and
        # two threads racing the same text derive the same key anyway.
        key = normalize_query_text(query_text)
        with self._lock:
            if len(self._keys) >= 4 * self.max_entries:
                self._keys.clear()
            self._keys[query_text] = key
        return key

    # -- lookups ---------------------------------------------------------------------
    def get_exact(self, query_text: str, schema_version: int) -> CacheEntry | None:
        """The entry for ``query_text`` built under ``schema_version``, or None.

        Returns complete *and* partial entries -- the caller decides whether
        a partial entry is patched.  A stale entry is dropped on sight.
        Counts a hit only for complete entries; partial entries count as a
        ``patch`` (or a miss) once the caller resolves them.
        """
        key = self._key_for(query_text)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            if entry.schema_version != schema_version:
                self._remove_entry(key)
                self.invalidations += 1
                return None
            self._entries.move_to_end(key)
            if entry.complete:
                self.hits += 1
            return entry

    def find_subsumer(
        self, plan: log.LogicalOp, schema_version: int
    ) -> tuple[CacheEntry, tuple[log.LogicalOp, ...]] | None:
        """A complete cached superset of ``plan``, plus the deltas to replay.

        Strips compensable operators off the top of the *translated* logical
        plan, outermost first, looking the remainder up among complete
        entries after every rung.  A ``select`` additionally tries conjunct
        prefixes, so ``where p and q`` is served from a cached ``where p``.
        Returns ``(entry, deltas)`` with ``deltas`` outermost-first, or None.
        """
        if not self.subsumption:
            return None
        deltas: list[log.LogicalOp] = []
        current = plan
        for depth in range(MAX_STRIP_DEPTH):
            if depth > 0:  # depth 0 is the exact plan; the text path owns it
                entry = self._complete_entry_for_plan(
                    current.to_text(), schema_version
                )
                if entry is not None:
                    with self._lock:
                        self.subsumption_hits += 1
                    return entry, tuple(deltas)
            if isinstance(current, log.Select):
                found = self._split_select(current, deltas, schema_version)
                if found is not None:
                    return found
            if not _strippable_delta(current):
                return None
            deltas.append(current)
            (current,) = current.children()
        return None

    def _split_select(
        self,
        select: log.Select,
        deltas: list[log.LogicalOp],
        schema_version: int,
    ) -> tuple[CacheEntry, tuple[log.LogicalOp, ...]] | None:
        """Serve ``where c1 and ... and cn`` from a cached conjunct prefix."""
        conjuncts = split_conjuncts(select.predicate)
        if len(conjuncts) < 2:
            return None
        for keep in range(len(conjuncts) - 1, 0, -1):
            kept = conjunction(conjuncts[:keep])
            remainder = log.Select(select.variable, kept, select.child)
            entry = self._complete_entry_for_plan(
                remainder.to_text(), schema_version
            )
            if entry is None:
                continue
            stripped = conjunction(conjuncts[keep:])
            delta = log.Select(select.variable, stripped, log.Get(_CACHED_LEAF))
            if not _strippable_delta(delta):
                return None
            with self._lock:
                self.subsumption_hits += 1
            return entry, tuple([*deltas, delta])
        return None

    def _complete_entry_for_plan(
        self, plan_text: str, schema_version: int
    ) -> CacheEntry | None:
        with self._lock:
            key = self._by_plan.get(plan_text)
            if key is None:
                return None
            entry = self._entries.get(key)
            if entry is None or not entry.complete:
                return None
            if entry.schema_version != schema_version:
                self._remove_entry(key)
                self.invalidations += 1
                return None
            self._entries.move_to_end(key)
            return entry

    # -- stores ----------------------------------------------------------------------
    def store_complete(
        self,
        query_text: str,
        plan: log.LogicalOp | None,
        schema_version: int,
        rows: Iterable[Any],
        extents: frozenset[str] | None = None,
    ) -> None:
        """Cache a complete answer built under ``schema_version``.

        ``extents`` overrides the extent tagging when ``plan`` is not
        available (a patched partial answer keeps its original tags).
        """
        materialized = tuple(rows)
        if len(materialized) > self.max_rows:
            return
        if extents is None:
            extents = _extents_of(plan) if plan is not None else frozenset()
        entry = CacheEntry(
            query_text=self._key_for(query_text),
            plan_text=plan.to_text() if plan is not None else None,
            schema_version=schema_version,
            extents=extents,
            rows=materialized,
        )
        self._insert(entry)

    def store_partial(
        self,
        query_text: str,
        plan: log.LogicalOp | None,
        schema_version: int,
        partial_plan: log.LogicalOp,
        partial_query: str | None,
        unavailable_sources: tuple[str, ...],
        extents: frozenset[str] | None = None,
    ) -> None:
        """Cache a partial answer tagged with its missing extents."""
        if extents is None:
            extents = _extents_of(plan) if plan is not None else frozenset()
        entry = CacheEntry(
            query_text=self._key_for(query_text),
            plan_text=None,  # partial entries never serve subsumption
            schema_version=schema_version,
            extents=extents | _extents_of(partial_plan),
            partial_plan=partial_plan,
            partial_query=partial_query,
            unavailable_sources=tuple(unavailable_sources),
        )
        self._insert(entry)

    def _insert(self, entry: CacheEntry) -> None:
        with self._lock:
            key = entry.query_text
            if key in self._entries:
                self._remove_entry(key)
            self._entries[key] = entry
            if entry.plan_text is not None:
                self._by_plan[entry.plan_text] = key
            self._total_rows += entry.row_count()
            self.stores += 1
            while self._entries and (
                len(self._entries) > self.max_entries
                or self._total_rows > self.max_rows
            ):
                coldest, _ = next(iter(self._entries.items()))
                self._remove_entry(coldest)
                self.evictions += 1

    # -- invalidation ----------------------------------------------------------------
    def drop(self, query_text: str) -> None:
        """Drop the entry for ``query_text`` (counts as an invalidation)."""
        key = self._key_for(query_text)
        with self._lock:
            if key in self._entries:
                self._remove_entry(key)
                self.invalidations += 1

    def invalidate_extent(self, extent_name: str) -> None:
        """Eagerly drop every entry whose answer involved ``extent_name``.

        Lazy ``schema_version`` checks already make these entries
        unreachable; eager eviction returns their row budget immediately
        when a DBA re-registers a source.
        """
        with self._lock:
            stale = [
                key
                for key, entry in self._entries.items()
                if extent_name in entry.extents
            ]
            for key in stale:
                self._remove_entry(key)
                self.invalidations += 1

    def clear(self) -> None:
        """Drop every cached answer."""
        with self._lock:
            self._entries.clear()
            self._by_plan.clear()
            self._keys.clear()
            self._total_rows = 0

    def _remove_entry(self, key: str) -> None:
        """Unlink one entry from both indices; the caller holds ``_lock``."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        self._total_rows -= entry.row_count()
        if entry.plan_text is not None and self._by_plan.get(entry.plan_text) == key:
            del self._by_plan[entry.plan_text]

    # -- accounting ------------------------------------------------------------------
    def note_miss(self) -> None:
        """Count a query served by execution rather than the cache."""
        with self._lock:
            self.misses += 1

    def note_patch(self) -> None:
        """Count a partial entry repaired by resubmitting its missing extents."""
        with self._lock:
            self.patches += 1

    def stats(self) -> dict[str, int]:
        """One consistent snapshot of the cache counters."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "rows": self._total_rows,
                "hits": self.hits,
                "subsumption_hits": self.subsumption_hits,
                "misses": self.misses,
                "patches": self.patches,
                "stores": self.stores,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

"""Wrapper for the WAIS-like text-search source.

The source understands ``get`` (scan a collection) and a restricted ``select``
-- equality of a string field against a constant, mapped onto keyword search.
Operators do not compose (a select applies directly to a collection), which
exercises the paper's non-composing capability grammar.
"""

from __future__ import annotations

from repro.algebra.capabilities import CapabilitySet
from repro.algebra.expressions import Comparison, Const, Path, Var
from repro.algebra.logical import Get, LogicalOp, Select
from repro.errors import WrapperError
from repro.sources.server import SimulatedServer
from repro.sources.text_store import TextStore
from repro.wrappers.base import Row, Wrapper


class TextSearchWrapper(Wrapper):
    """Wrapper over a :class:`TextStore` hosted by a simulated server."""

    def __init__(self, name: str, server: SimulatedServer):
        super().__init__(name, CapabilitySet.of("get", "select", compose=False))
        self.server = server

    def _execute(self, expression: LogicalOp) -> list[Row]:
        if isinstance(expression, Get):
            collection = expression.collection
            return self.server.call(lambda store: store.scan(collection))
        if isinstance(expression, Select) and isinstance(expression.child, Get):
            collection = expression.child.collection
            keyword_predicate = self._keyword_predicate(expression)
            if keyword_predicate is not None:
                keywords, field = keyword_predicate
                rows = self.server.call(lambda store: store.search(collection, keywords))
                # Keyword search is a superset match (any field); re-check the
                # exact field equality locally at the source.
                return [row for row in rows if row.get(field) == keywords]
            # Predicates with no keyword translation (numeric comparisons,
            # boolean combinations) are still evaluated at the source, but by
            # scanning: one round trip, no index assistance.
            rows = self.server.call(lambda store: store.scan(collection))
            variable = expression.variable
            predicate = expression.predicate
            return [row for row in rows if predicate.evaluate({variable: row})]
        raise WrapperError(
            f"text-search wrapper {self.name!r} cannot evaluate {expression.to_text()}"
        )

    def _keyword_predicate(self, select: Select) -> tuple[str, str] | None:
        predicate = select.predicate
        if (
            isinstance(predicate, Comparison)
            and predicate.op == "="
            and isinstance(predicate.left, Path)
            and isinstance(predicate.left.base, Var)
            and isinstance(predicate.right, Const)
            and isinstance(predicate.right.value, str)
        ):
            return predicate.right.value, predicate.left.attribute
        return None

    def source_collections(self) -> list[str]:
        store: TextStore = self.server.store
        return store.collection_names()

    def source_attributes(self, collection: str) -> list[str]:
        store: TextStore = self.server.store
        if collection not in store.collection_names():
            return []
        rows = store.scan(collection)
        return list(rows[0]) if rows else []

    def cardinality(self, collection: str) -> int | None:
        store: TextStore = self.server.store
        if collection not in store.collection_names():
            return None
        return store.cardinality(collection)

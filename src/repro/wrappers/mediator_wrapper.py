"""Wrapper around another DISCO mediator.

This is what makes Figure 1 a *distributed* architecture: "this distributed
architecture permits DBAs to develop mediators independently and permits
mediators to be combined".  A mediator exposed through this wrapper looks to
its parent exactly like any other data source: the pushed logical expression
is turned back into OQL text (the child mediator's query language) and run
there; its (possibly partial) answer comes back as rows.
"""

from __future__ import annotations

from typing import Any

from repro.algebra.capabilities import CapabilitySet
from repro.algebra.logical import LogicalOp
from repro.algebra.unparser import logical_to_oql
from repro.datamodel.values import Bag, Struct
from repro.errors import UnavailableSourceError, WrapperError
from repro.wrappers.base import Row, Wrapper


class MediatorWrapper(Wrapper):
    """Expose a child mediator as a data source of a parent mediator."""

    def __init__(self, name: str, mediator: Any, available: bool = True):
        # ``project`` is deliberately absent: the child mediator's OQL returns
        # bare values for single-attribute projections, which would lose the
        # record shape the parent's plan expects.  Selections, unions and
        # flattens push through unchanged.
        super().__init__(name, CapabilitySet.of("get", "select", "union", "flatten"))
        self.mediator = mediator
        self.available = available

    def set_available(self, available: bool) -> None:
        """Simulate the child mediator (dis)appearing from the network."""
        self.available = available

    def _execute(self, expression: LogicalOp) -> list[Row]:
        if not self.available:
            raise UnavailableSourceError(self.name)
        oql = logical_to_oql(expression)
        result = self.mediator.query(oql)
        answer = getattr(result, "data", result)
        if isinstance(answer, Bag):
            rows: list[Row] = []
            for element in answer:
                if isinstance(element, Struct):
                    rows.append(element.fields())
                elif isinstance(element, dict):
                    rows.append(dict(element))
                else:
                    rows.append({"value": element})
            return rows
        raise WrapperError(
            f"child mediator {self.name!r} returned a non-collection answer {answer!r}"
        )

    def source_collections(self) -> list[str]:
        names = []
        registry = getattr(self.mediator, "registry", None)
        if registry is not None:
            names = [meta.name for meta in registry.schema.extents()]
            names.extend(view.name for view in registry.schema.views())
        return names

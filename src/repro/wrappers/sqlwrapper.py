"""Wrapper that translates the mediator algebra into the miniature SQL dialect.

This is the reproduction's ``WrapperPostgres``: the pushed logical expression
is rendered as SQL text, shipped to the SQL engine through the simulated
server, parsed and executed there.  Only the operators that have an SQL
rendering are advertised (``get``, ``project``, ``select``, ``join``,
``limit``, ``rename`` -- the aliasing the namespace planner injects for
colliding multi-extent pushdowns, rendered as ``col AS alias`` inside a
derived table -- ``groupby``, rendered as ``GROUP BY`` with aggregate
projection items, and the ``in`` predicate terminal, rendered as ``IN (...)``
for batched bind-join probes), and only predicates built from comparisons
and membership tests of attributes and constants can cross the boundary --
richer predicates raise :class:`WrapperError` so the optimizer keeps them at
the mediator.
"""

from __future__ import annotations

from typing import Any

from repro.algebra.capabilities import CapabilitySet
from repro.algebra.expressions import (
    BooleanExpr,
    Comparison,
    Const,
    Expr,
    InList,
    Path,
    Var,
)
from repro.algebra.logical import (
    Get,
    GroupBy,
    Join,
    Limit,
    LogicalOp,
    Project,
    Rename,
    Select,
)
from repro.errors import WrapperError
from repro.sources.server import SimulatedServer
from repro.sources.sql.engine import SqlEngine
from repro.wrappers.base import RESUME_REPLAY, Row, Wrapper


class SqlWrapper(Wrapper):
    """Wrapper over a :class:`SqlEngine` hosted by a simulated server.

    The mini-SQL dialect has no cursor handles, but the engine evaluates a
    statement deterministically over stable table order, so the wrapper
    declares ``replay`` resume support: after a mid-stream death the mediator
    may re-run the same statement and skip the rows it already delivered.
    """

    resume_support = RESUME_REPLAY

    def __init__(self, name: str, server: SimulatedServer, capabilities: CapabilitySet | None = None):
        super().__init__(
            name,
            capabilities
            or CapabilitySet.of(
                "get", "project", "select", "join", "limit", "rename", "in", "groupby"
            ),
        )
        self.server = server

    # -- execution -----------------------------------------------------------------------
    def _execute(self, expression: LogicalOp) -> list[Row]:
        sql = self.to_sql(expression)

        def run(engine: SqlEngine) -> list[Row]:
            return engine.execute(sql)

        return self.server.call(run)

    # -- SQL generation ---------------------------------------------------------------------
    def to_sql(self, expression: LogicalOp) -> str:
        """Render a pushed logical expression as one SELECT statement."""
        limit_above: int | None = None
        projected: tuple[str, ...] | None = None
        node = expression
        if isinstance(node, Limit) and isinstance(
            node.child, (GroupBy, Project)
        ):
            # OQL's limit clause applies after grouping, exactly like SQL's
            # LIMIT, so it renders on the grouped statement.
            inner = node.child
            if isinstance(inner, GroupBy) or isinstance(inner.child, GroupBy):
                limit_above = node.count
                node = inner
        if isinstance(node, Project) and isinstance(node.child, GroupBy):
            # A projection over the grouped record narrows the SELECT list to
            # a subset of the group outputs; GROUP BY still names every key.
            projected = node.attributes
            node = node.child
        if isinstance(node, GroupBy):
            return self._groupby_sql(node, limit_above, projected)
        columns, table, joins, predicates, limit = self._decompose(expression)
        select_clause = ", ".join(columns) if columns else "*"
        sql = f"SELECT {select_clause} FROM {table}"
        for join_table, left_column, right_column in joins:
            sql += f" JOIN {join_table} ON {left_column} = {right_column}"
        if predicates:
            sql += " WHERE " + " AND ".join(predicates)
        if limit is not None:
            sql += f" LIMIT {limit}"
        return sql

    def _decompose(
        self, expression: LogicalOp
    ) -> tuple[list[str], str, list[tuple[str, str, str]], list[str], int | None]:
        if isinstance(expression, Get):
            return [], expression.collection, [], [], None
        if isinstance(expression, Rename):
            # The namespace planner's aliasing shape: rename directly over a
            # source table.  It renders as a derived table whose SELECT list
            # aliases the colliding columns with AS -- per branch, *before*
            # any join merges rows, so the aliases actually disambiguate.
            if not isinstance(expression.child, Get):
                raise WrapperError(
                    "SQL wrapper renders rename only directly over a source table"
                )
            items = ", ".join(
                old if old == new else f"{old} AS {new}"
                for old, new in expression.pairs
            )
            derived = f"(SELECT {items} FROM {expression.child.collection})"
            return [], derived, [], [], None
        if isinstance(expression, Limit):
            columns, table, joins, predicates, limit = self._decompose(expression.child)
            limit = expression.count if limit is None else min(limit, expression.count)
            return columns, table, joins, predicates, limit
        if isinstance(expression, Project):
            # Projection is one-to-one per row, so a limit below it renders
            # identically to SQL's project-then-LIMIT evaluation order.
            columns, table, joins, predicates, limit = self._decompose(expression.child)
            return list(expression.attributes), table, joins, predicates, limit
        if isinstance(expression, Select):
            columns, table, joins, predicates, limit = self._decompose(expression.child)
            if limit is not None:
                # SQL filters before it limits; a selection *above* a limit
                # would change which rows survive, so it has no rendering.
                raise WrapperError("cannot translate a selection above a limit to SQL")
            predicates = predicates + [self._predicate_sql(expression.predicate)]
            return columns, table, joins, predicates, limit
        if isinstance(expression, Join):
            left_cols, left_table, left_joins, left_preds, left_limit = self._decompose(
                expression.left
            )
            right_cols, right_table, right_joins, right_preds, right_limit = self._decompose(
                expression.right
            )
            if right_joins:
                raise WrapperError("SQL wrapper supports only left-deep join chains")
            if left_limit is not None or right_limit is not None:
                raise WrapperError("cannot translate a limited join operand to SQL")
            left_attr, right_attr = expression.join_attributes()
            joins = left_joins + [(right_table, left_attr, right_attr)]
            columns = left_cols + right_cols
            return columns, left_table, joins, left_preds + right_preds, None
        raise WrapperError(f"cannot translate {expression.to_text()} to SQL")

    def _groupby_sql(
        self,
        node: GroupBy,
        limit: int | None,
        projected: tuple[str, ...] | None = None,
    ) -> str:
        """Render ``GroupBy`` (optionally projected/limited above) as a grouped SELECT."""
        columns, table, joins, predicates, child_limit = self._decompose(node.child)
        del columns  # the grouped select list replaces any child projection
        if child_limit is not None:
            # SQL groups before it limits; a limit *below* the grouping would
            # change which rows are aggregated, so it has no rendering.
            raise WrapperError("cannot translate grouping above a limit to SQL")
        rendered: dict[str, str] = {}
        group_columns: list[str] = []
        for name, expr in node.keys:
            column = self._key_column(expr)
            group_columns.append(column)
            rendered[name] = column if column == name else f"{column} AS {name}"
        for name, func, arg in node.aggregates:
            rendered[name] = f"{self._aggregate_sql(node.variable, func, arg)} AS {name}"
        if projected is None:
            items = list(rendered.values())
        else:
            missing = [name for name in projected if name not in rendered]
            if missing:
                raise WrapperError(
                    f"cannot project {', '.join(missing)} out of a grouped SELECT"
                )
            items = [rendered[name] for name in projected]
        sql = f"SELECT {', '.join(items)} FROM {table}"
        for join_table, left_column, right_column in joins:
            sql += f" JOIN {join_table} ON {left_column} = {right_column}"
        if predicates:
            sql += " WHERE " + " AND ".join(predicates)
        if group_columns:
            sql += " GROUP BY " + ", ".join(group_columns)
        if limit is not None:
            sql += f" LIMIT {limit}"
        return sql

    def _key_column(self, expr: Expr) -> str:
        if isinstance(expr, Path) and isinstance(expr.base, Var):
            return expr.attribute
        raise WrapperError(f"cannot translate grouping key {expr.to_oql()} to SQL")

    def _aggregate_sql(self, variable: str, func: str, arg: Expr) -> str:
        if isinstance(arg, Var) and arg.name == variable:
            if func == "count":
                # Counting the row variable counts rows; source rows are
                # structs and never NULL, so COUNT(*) matches exactly.
                return "COUNT(*)"
            raise WrapperError(f"cannot translate {func} over whole rows to SQL")
        if isinstance(arg, Path) and isinstance(arg.base, Var):
            return f"{func.upper()}({arg.attribute})"
        raise WrapperError(f"cannot translate aggregate argument {arg.to_oql()} to SQL")

    def _predicate_sql(self, predicate: Expr) -> str:
        if isinstance(predicate, Comparison):
            op = "<>" if predicate.op == "!=" else predicate.op
            return f"{self._operand_sql(predicate.left)} {op} {self._operand_sql(predicate.right)}"
        if isinstance(predicate, InList):
            if not predicate.items:
                # ``x in ()`` is unsatisfiable and has no SQL spelling --
                # ``IN ()`` is a syntax error in the dialect.  The probe
                # runner filters empty batches before they get here; this
                # guard keeps any other caller from shipping invalid SQL.
                raise WrapperError("cannot translate an empty IN list to SQL")
            items = ", ".join(self._operand_sql(item) for item in predicate.items)
            return f"{self._operand_sql(predicate.operand)} IN ({items})"
        if isinstance(predicate, BooleanExpr):
            if predicate.op == "not":
                return f"NOT ({self._predicate_sql(predicate.operands[0])})"
            joiner = f" {predicate.op.upper()} "
            return "(" + joiner.join(self._predicate_sql(p) for p in predicate.operands) + ")"
        raise WrapperError(f"cannot translate predicate {predicate.to_oql()} to SQL")

    def _operand_sql(self, operand: Expr) -> str:
        if isinstance(operand, Path) and isinstance(operand.base, Var):
            return operand.attribute
        if isinstance(operand, Const):
            value = operand.value
            if isinstance(value, str):
                escaped = value.replace("'", "''")
                return f"'{escaped}'"
            if isinstance(value, bool):
                return "TRUE" if value else "FALSE"
            if value is None:
                return "NULL"
            return repr(value)
        raise WrapperError(f"cannot translate operand {operand.to_oql()} to SQL")

    # -- meta-data ----------------------------------------------------------------------------
    def source_collections(self) -> list[str]:
        engine: SqlEngine = self.server.store
        return engine.table_names()

    def source_attributes(self, collection: str) -> list[str]:
        engine: SqlEngine = self.server.store
        if collection not in engine.table_names():
            return []
        return engine.engine.table(collection).column_names()

    def cardinality(self, collection: str) -> int | None:
        engine: SqlEngine = self.server.store
        if collection not in engine.table_names():
            return None
        return engine.cardinality(collection)

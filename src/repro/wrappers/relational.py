"""Wrapper for relational-engine data sources.

The whole pushed expression is evaluated inside one simulated server call,
matching the RPC semantics of the ``submit`` operator: one ``exec`` equals one
round trip to the source, however much work was pushed.
"""

from __future__ import annotations

from typing import Any

from repro.algebra.capabilities import CapabilitySet
from repro.algebra.logical import LogicalOp
from repro.sources.relational_engine import RelationalEngine
from repro.sources.server import SimulatedServer
from repro.wrappers.base import (
    RESUME_TOKEN,
    AlgebraEvaluator,
    ResumableStream,
    Row,
    Wrapper,
)


class RelationalWrapper(Wrapper):
    """Wrapper over a :class:`RelationalEngine` hosted by a simulated server.

    The capability set is configurable, which is how the experiments model
    servers of different querying power backed by the same storage engine.

    ``resume`` declares the wrapper's mid-stream resume support (see
    :attr:`~repro.wrappers.base.Wrapper.resume_support`).  The default is
    token support -- the engine's scan order is stable, so the server can
    seek a reopened cursor past an ordinal resume token and ship only the
    remaining rows.  Pass ``"replay"`` to model a deterministic source
    without cursor tokens (the mediator reopens and skips delivered rows
    itself, re-shipping them), or ``None`` for a source whose half-consumed
    streams cannot be recovered at all.
    """

    def __init__(
        self,
        name: str,
        server: SimulatedServer,
        capabilities: CapabilitySet | None = None,
        resume: str | None = RESUME_TOKEN,
    ):
        super().__init__(name, capabilities or CapabilitySet.full())
        self.server = server
        self.resume_support = resume

    # -- execution -----------------------------------------------------------------------
    def _execute(self, expression: LogicalOp) -> list[Row]:
        def run(engine: RelationalEngine) -> list[Row]:
            evaluator = AlgebraEvaluator(scan=engine.scan)
            return evaluator.evaluate(expression)

        return self.server.call(run)

    def _execute_stream(self, expression: LogicalOp):
        if self.resume_support != RESUME_TOKEN:
            return self._execute(expression)
        # One materialized round trip as ever (RPC semantics), but handed out
        # as a ResumableStream so the mediator learns the cursor position it
        # could resume from after a mid-stream death.
        return ResumableStream(self._execute(expression))

    def _resume_stream(self, expression: LogicalOp, token: Any):
        """Reopen past ``token`` rows -- the server's resume capability.

        The skip happens inside :meth:`SimulatedServer.call`, so skipped rows
        are neither shipped nor charged: a resumed call costs only the rows
        still owed.
        """
        offset = int(token)

        def run(engine: RelationalEngine) -> list[Row]:
            evaluator = AlgebraEvaluator(scan=engine.scan)
            return evaluator.evaluate(expression)

        rows = self.server.call(run, resume_from=offset)
        return ResumableStream(rows, position=offset)

    # -- meta-data ------------------------------------------------------------------------
    def source_collections(self) -> list[str]:
        engine: RelationalEngine = self.server.store
        return engine.table_names()

    def source_attributes(self, collection: str) -> list[str]:
        engine: RelationalEngine = self.server.store
        if not engine.has_table(collection):
            return []
        return engine.table(collection).column_names()

    def cardinality(self, collection: str) -> int | None:
        engine: RelationalEngine = self.server.store
        if not engine.has_table(collection):
            return None
        return engine.cardinality(collection)

"""Wrapper for relational-engine data sources.

The whole pushed expression is evaluated inside one simulated server call,
matching the RPC semantics of the ``submit`` operator: one ``exec`` equals one
round trip to the source, however much work was pushed.
"""

from __future__ import annotations

from typing import Any

from repro.algebra.capabilities import CapabilitySet
from repro.algebra.logical import LogicalOp
from repro.sources.relational_engine import RelationalEngine
from repro.sources.server import SimulatedServer
from repro.wrappers.base import AlgebraEvaluator, Row, Wrapper


class RelationalWrapper(Wrapper):
    """Wrapper over a :class:`RelationalEngine` hosted by a simulated server.

    The capability set is configurable, which is how the experiments model
    servers of different querying power backed by the same storage engine.
    """

    def __init__(
        self,
        name: str,
        server: SimulatedServer,
        capabilities: CapabilitySet | None = None,
    ):
        super().__init__(name, capabilities or CapabilitySet.full())
        self.server = server

    # -- execution -----------------------------------------------------------------------
    def _execute(self, expression: LogicalOp) -> list[Row]:
        def run(engine: RelationalEngine) -> list[Row]:
            evaluator = AlgebraEvaluator(scan=engine.scan)
            return evaluator.evaluate(expression)

        return self.server.call(run)

    # -- meta-data ------------------------------------------------------------------------
    def source_collections(self) -> list[str]:
        engine: RelationalEngine = self.server.store
        return engine.table_names()

    def source_attributes(self, collection: str) -> list[str]:
        engine: RelationalEngine = self.server.store
        if not engine.has_table(collection):
            return []
        return engine.table(collection).column_names()

    def cardinality(self, collection: str) -> int | None:
        engine: RelationalEngine = self.server.store
        if not engine.has_table(collection):
            return None
        return engine.cardinality(collection)

"""A wrapper over cursor-style data sources that yield rows lazily.

Every other wrapper answers a ``submit`` with a fully materialized list --
the RPC model of the paper, where one exec call is one round trip.  Modern
sources (database cursors, paginated HTTP APIs, log tails) instead hand out
an iterator; materializing it defeats the streaming engine's bounded-memory
and early-termination guarantees.  :class:`GeneratorWrapper` models such
sources: its ``scan`` functions return any iterable (typically a generator),
pushed-down ``select``/``project`` are applied per row as the consumer
pulls, and a consumer that stops early -- a satisfied ``limit`` -- stops the
scan instead of draining it.

The materialized :meth:`~repro.wrappers.base.Wrapper.submit` path still
works (it drains the stream), so the wrapper is usable by the barrier
executor and the baselines unchanged.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from repro.algebra.capabilities import CapabilitySet
from repro.algebra.logical import LogicalOp
from repro.errors import WrapperError
from repro.wrappers.base import (
    RESUME_TOKEN,
    AlgebraEvaluator,
    ResumableStream,
    Row,
    Wrapper,
)

ScanFactory = Callable[[], Iterable[Row]]


class GeneratorWrapper(Wrapper):
    """Expose lazily produced collections as a DISCO data source.

    ``scans`` maps collection names to zero-argument callables returning a
    fresh iterable of rows (a generator function, a cursor factory, ...).
    ``attributes`` optionally declares each collection's attribute names so
    the mediator's run-time type check can run without draining the source.

    ``resume`` declares mid-stream resume support (see
    :attr:`~repro.wrappers.base.Wrapper.resume_support`).  The default is
    ``None``: an arbitrary generator may be non-deterministic (a live feed, a
    sampling cursor), in which case neither resuming nor replaying a
    half-consumed stream is sound and the streaming engine keeps the
    write-off.  Declare ``"token"`` or ``"replay"`` only for scan factories
    that re-produce the same row sequence on every call.
    """

    def __init__(
        self,
        name: str,
        scans: Mapping[str, ScanFactory],
        attributes: Mapping[str, Sequence[str]] | None = None,
        capabilities: CapabilitySet | None = None,
        resume: str | None = None,
    ):
        super().__init__(
            name,
            capabilities
            or CapabilitySet.of(
                "get",
                "project",
                "select",
                "union",
                "flatten",
                "limit",
                "rename",
                "in",
                "groupby",
            ),
        )
        self._scans = dict(scans)
        self._attributes = {k: list(v) for k, v in (attributes or {}).items()}
        self._evaluator = AlgebraEvaluator(scan=self._scan)
        self.resume_support = resume

    def _scan(self, collection: str) -> Iterable[Row]:
        factory = self._scans.get(collection)
        if factory is None:
            raise WrapperError(f"{self.name!r} exposes no collection {collection!r}")
        return factory()

    # -- execution -----------------------------------------------------------------------
    def _execute(self, expression: LogicalOp) -> list[Row]:
        return list(self._evaluator.evaluate_stream(expression))

    def _execute_stream(self, expression: LogicalOp):
        rows = self._evaluator.evaluate_stream(expression)
        if self.resume_support == RESUME_TOKEN:
            # Tokens are ordinal cursor positions; the base _resume_stream
            # seeks past them by consuming the fresh cursor quietly.
            return ResumableStream(rows)
        return rows

    # -- meta-data ------------------------------------------------------------------------
    def source_collections(self) -> list[str]:
        return sorted(self._scans)

    def source_attributes(self, collection: str) -> list[str]:
        return list(self._attributes.get(collection, []))

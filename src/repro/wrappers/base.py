"""The abstract wrapper interface and a shared algebra evaluator.

The paper: "DISCO interfaces to wrappers at the level of an abstract algebraic
machine of logical operators.  When the DBI implements a new wrapper, she
chooses a (sub) set of logical operators to support.  The DBI implements the
logical operators, and also implements a call in the wrapper interface which
returns the set of supported logical operators."
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.algebra.capabilities import CapabilityGrammar, CapabilitySet
from repro.algebra.logical import (
    BagLiteral,
    Flatten,
    Get,
    Join,
    Limit,
    LogicalOp,
    Project,
    Rename,
    Select,
    Union,
)
from repro.errors import CapabilityError, WrapperError

Row = dict[str, Any]
#: a scan may return a list (relational engines) or yield lazily (cursors)
ScanFunction = Callable[[str], Iterable[Row]]


class Wrapper:
    """Base class for every wrapper.

    Subclasses implement :meth:`_execute` (how a legal expression is actually
    evaluated at the source) and pass their capability set to ``__init__``.
    """

    def __init__(self, name: str, capabilities: CapabilitySet):
        self.name = name
        self.capabilities = capabilities
        self._grammar = capabilities.to_grammar()

    # -- the two calls of the wrapper interface ------------------------------------------
    def submit_functionality(self) -> CapabilityGrammar:
        """Return the grammar describing the supported logical operators."""
        return self._grammar

    def submit(self, expression: LogicalOp) -> list[Row]:
        """Evaluate ``expression`` (in the source's name space) and return rows.

        The expression is re-checked against the capability grammar: an
        illegal expression indicates an optimizer bug or a hand-built plan, so
        it fails loudly instead of silently changing query semantics.
        """
        self._check_capability(expression)
        return self._execute(expression)

    def submit_stream(self, expression: LogicalOp) -> Iterable[Row]:
        """Rows for ``expression``, possibly produced lazily.

        The streaming engine calls this instead of :meth:`submit`.  The base
        implementation delegates to :meth:`_execute` (one materialized round
        trip -- correct for RPC-style sources whose latency is per call);
        wrappers over cursor-style sources override :meth:`_execute_stream`
        to yield rows as the consumer pulls them, so a satisfied ``limit``
        stops the scan instead of draining it.
        """
        self._check_capability(expression)
        return self._execute_stream(expression)

    def _check_capability(self, expression: LogicalOp) -> None:
        """Fail loudly when ``expression`` is outside the wrapper's grammar."""
        if not self._grammar.accepts(expression):
            raise CapabilityError(
                f"wrapper {self.name!r} does not accept expression {expression.to_text()}"
            )

    # -- hooks for subclasses ------------------------------------------------------------
    def _execute(self, expression: LogicalOp) -> list[Row]:
        raise NotImplementedError

    def _execute_stream(self, expression: LogicalOp) -> Iterable[Row]:
        """Lazy variant of :meth:`_execute`; defaults to the materialized call."""
        return self._execute(expression)

    def source_collections(self) -> list[str]:
        """Names of the collections the underlying source exposes."""
        return []

    def source_attributes(self, collection: str) -> list[str]:
        """Attribute names of ``collection`` as seen by the data source.

        Used for the run-time type check of Section 2.1: the mediator compares
        these names with the mediator type (after applying the local
        transformation map) and raises a type conflict on mismatch.
        """
        return []

    def cardinality(self, collection: str) -> int | None:
        """Row count of ``collection`` when the source exports it, else None."""
        return None

    def describe(self) -> dict[str, Any]:
        """Catalog-friendly description of the wrapper."""
        return {
            "name": self.name,
            "operators": sorted(self.capabilities.operators),
            "compose": self.capabilities.compose,
        }


class AlgebraEvaluator:
    """Evaluates pushable logical expressions given a ``scan`` function.

    Wrappers whose sources expose row-level operations (relational engine,
    key-value store, CSV files) use this evaluator to run the pushed
    expression "at the source"; the only thing each wrapper provides is how a
    named collection is scanned.
    """

    def __init__(self, scan: ScanFunction):
        self.scan = scan

    def evaluate(self, expression: LogicalOp) -> list[Row]:
        """Evaluate ``expression`` and return rows (materialized).

        The semantics live in :meth:`evaluate_stream`; this simply drains it,
        so the barrier and streaming wrapper paths cannot diverge.
        """
        return list(self.evaluate_stream(expression))

    def evaluate_stream(self, expression: LogicalOp) -> Iterator[Row]:
        """Lazy variant of :meth:`evaluate`: generators end to end.

        Used by wrappers over cursor-style sources whose ``scan`` yields rows
        incrementally: pushed-down select/project are applied per row as the
        consumer pulls, so nothing is materialized at the source boundary and
        an early-terminating consumer (``limit``) stops the scan.  Joins
        build only their right side, exactly like the mediator-side hash
        join.
        """
        if isinstance(expression, Get):
            return iter(self.scan(expression.collection))
        if isinstance(expression, BagLiteral):
            return (dict(value) for value in expression.values)
        if isinstance(expression, Project):
            attributes = expression.attributes
            return (
                {attr: row.get(attr) for attr in attributes}
                for row in self.evaluate_stream(expression.child)
            )
        if isinstance(expression, Rename):
            pairs = expression.pairs
            return (
                {new: row.get(old) for old, new in pairs}
                for row in self.evaluate_stream(expression.child)
            )
        if isinstance(expression, Select):
            variable = expression.variable
            predicate = expression.predicate
            return (
                row
                for row in self.evaluate_stream(expression.child)
                if predicate.evaluate({variable: row})
            )
        if isinstance(expression, Join):
            return self._join_stream(expression)
        if isinstance(expression, Union):
            return self._union_stream(expression)
        if isinstance(expression, Flatten):
            return self._flatten_stream(expression)
        if isinstance(expression, Limit):
            return self._limit_stream(expression)
        raise WrapperError(f"cannot evaluate {expression.to_text()} at a data source")

    def _join_stream(self, expression: Join) -> Iterator[Row]:
        left_attr, right_attr = expression.join_attributes()
        buckets: dict[Any, list[Row]] = {}
        for row in self.evaluate_stream(expression.right):
            buckets.setdefault(row.get(right_attr), []).append(row)
        for row in self.evaluate_stream(expression.left):
            for match in buckets.get(row.get(left_attr), []):
                merged = dict(match)
                merged.update(row)
                yield merged

    def _union_stream(self, expression: Union) -> Iterator[Row]:
        for child in expression.inputs:
            yield from self.evaluate_stream(child)

    def _flatten_stream(self, expression: Flatten) -> Iterator[Row]:
        for row in self.evaluate_stream(expression.child):
            if isinstance(row, (list, tuple)):
                yield from row
            else:
                yield row

    def _limit_stream(self, expression: Limit) -> Iterator[Row]:
        """The pushed-down fetch size: stop the scan after ``count`` rows."""
        child = self.evaluate_stream(expression.child)
        if expression.count <= 0:
            close = getattr(child, "close", None)
            if close is not None:
                close()
            return
        try:
            produced = 0
            for row in child:
                yield row
                produced += 1
                if produced >= expression.count:
                    return
        finally:
            close = getattr(child, "close", None)
            if close is not None:
                close()

"""The abstract wrapper interface and a shared algebra evaluator.

The paper: "DISCO interfaces to wrappers at the level of an abstract algebraic
machine of logical operators.  When the DBI implements a new wrapper, she
chooses a (sub) set of logical operators to support.  The DBI implements the
logical operators, and also implements a call in the wrapper interface which
returns the set of supported logical operators."
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Iterator

from repro.algebra.capabilities import CapabilityGrammar, CapabilitySet
from repro.algebra.logical import (
    BagLiteral,
    Flatten,
    Get,
    GroupBy,
    Join,
    Limit,
    LogicalOp,
    Project,
    Rename,
    Select,
    Union,
)
from repro.errors import CapabilityError, WrapperError

Row = dict[str, Any]
#: a scan may return a list (relational engines) or yield lazily (cursors)
ScanFunction = Callable[[str], Iterable[Row]]

#: resume support levels a wrapper may declare (:attr:`Wrapper.resume_support`).
#: ``RESUME_TOKEN``: stream opens return a :class:`ResumableStream` whose
#: token can be passed back via ``submit_stream(expr, resume_from=token)``;
#: the *source* then skips the already-delivered rows, so only the remaining
#: rows cross the wire.  Token support implies the source can reposition a
#: cursor deterministically.
RESUME_TOKEN = "token"
#: ``RESUME_REPLAY``: the wrapper has no cursor tokens but re-evaluating the
#: same expression deterministically reproduces the same row sequence, so the
#: *mediator* may reopen the stream and skip the rows it already delivered
#: (reopen-and-skip; the skipped rows are re-shipped).  Declare it only for
#: sources with a stable scan order.
RESUME_REPLAY = "replay"


class ResumableStream:
    """A row iterator that carries a source-side resume token.

    After each yielded row, :attr:`token` identifies the position *after*
    that row; handing it back through ``submit_stream(expression,
    resume_from=token)`` continues the stream without re-delivering rows.
    The mediator treats the token as opaque -- here it is the ordinal cursor
    position, but a wrapper over a real source could subclass and carry
    server-issued cursor handles instead.
    """

    def __init__(self, rows: Iterable[Row], position: Any = 0):
        self._iterator = iter(rows)
        #: opaque resume token for the current position (updated per row).
        self.token = position
        #: row count when the underlying answer is a sized sequence (an
        #: RPC-style materialized reply), else None for true lazy cursors.
        #: Lets the mediator keep its sized-sequence bookkeeping (history
        #: recorded at open) even though the rows arrive wrapped.
        self.sized = len(rows) if isinstance(rows, (list, tuple)) else None

    def __iter__(self) -> "ResumableStream":
        return self

    def __next__(self) -> Row:
        row = next(self._iterator)
        self.token = self._advance(self.token)
        return row

    def _advance(self, token: Any) -> Any:
        """Token after one more row; the default token is the row ordinal."""
        return token + 1

    def close(self) -> None:
        close = getattr(self._iterator, "close", None)
        if close is not None:
            close()


class Wrapper:
    """Base class for every wrapper.

    Subclasses implement :meth:`_execute` (how a legal expression is actually
    evaluated at the source) and pass their capability set to ``__init__``.
    """

    #: mid-stream resume support: :data:`RESUME_TOKEN`, :data:`RESUME_REPLAY`
    #: or ``None`` (the default -- a call that dies after delivering rows is
    #: written off by the streaming engine rather than recovered).
    resume_support: str | None = None

    def __init__(self, name: str, capabilities: CapabilitySet):
        self.name = name
        self.capabilities = capabilities
        self._grammar = capabilities.to_grammar()

    # -- the two calls of the wrapper interface ------------------------------------------
    def submit_functionality(self) -> CapabilityGrammar:
        """Return the grammar describing the supported logical operators."""
        return self._grammar

    def submit(self, expression: LogicalOp) -> list[Row]:
        """Evaluate ``expression`` (in the source's name space) and return rows.

        The expression is re-checked against the capability grammar: an
        illegal expression indicates an optimizer bug or a hand-built plan, so
        it fails loudly instead of silently changing query semantics.
        """
        self._check_capability(expression)
        return self._execute(expression)

    def submit_stream(
        self, expression: LogicalOp, resume_from: Any = None
    ) -> Iterable[Row]:
        """Rows for ``expression``, possibly produced lazily.

        The streaming engine calls this instead of :meth:`submit`.  The base
        implementation delegates to :meth:`_execute` (one materialized round
        trip -- correct for RPC-style sources whose latency is per call);
        wrappers over cursor-style sources override :meth:`_execute_stream`
        to yield rows as the consumer pulls them, so a satisfied ``limit``
        stops the scan instead of draining it.

        ``resume_from`` is a token previously obtained from a
        :class:`ResumableStream` this wrapper returned for the *same*
        expression: the source skips the rows delivered before the token and
        ships only the remainder.  Only legal on wrappers declaring
        :data:`RESUME_TOKEN`; others raise :class:`CapabilityError` so the
        mediator can fall back (reopen-and-skip, or write-off).
        """
        self._check_capability(expression)
        if resume_from is None:
            return self._execute_stream(expression)
        if self.resume_support != RESUME_TOKEN:
            raise CapabilityError(
                f"wrapper {self.name!r} cannot resume a stream from a token"
            )
        return self._resume_stream(expression, resume_from)

    def _check_capability(self, expression: LogicalOp) -> None:
        """Fail loudly when ``expression`` is outside the wrapper's grammar."""
        if not self._grammar.accepts(expression):
            raise CapabilityError(
                f"wrapper {self.name!r} does not accept expression {expression.to_text()}"
            )

    # -- hooks for subclasses ------------------------------------------------------------
    def _execute(self, expression: LogicalOp) -> list[Row]:
        raise NotImplementedError

    def _execute_stream(self, expression: LogicalOp) -> Iterable[Row]:
        """Lazy variant of :meth:`_execute`; defaults to the materialized call."""
        return self._execute(expression)

    def _resume_stream(self, expression: LogicalOp, token: Any) -> Iterable[Row]:
        """Continue a stream past ``token`` (wrappers declaring RESUME_TOKEN).

        The default treats the token as a row ordinal and seeks the source
        cursor past it without shipping the skipped rows.
        """
        rows = itertools.islice(self._execute_stream(expression), int(token), None)
        return ResumableStream(rows, position=token)

    def source_collections(self) -> list[str]:
        """Names of the collections the underlying source exposes."""
        return []

    def source_attributes(self, collection: str) -> list[str]:
        """Attribute names of ``collection`` as seen by the data source.

        Used for the run-time type check of Section 2.1: the mediator compares
        these names with the mediator type (after applying the local
        transformation map) and raises a type conflict on mismatch.
        """
        return []

    def cardinality(self, collection: str) -> int | None:
        """Row count of ``collection`` when the source exports it, else None."""
        return None

    def describe(self) -> dict[str, Any]:
        """Catalog-friendly description of the wrapper."""
        return {
            "name": self.name,
            "operators": sorted(self.capabilities.operators),
            "compose": self.capabilities.compose,
            "resume": self.resume_support,
        }


class AlgebraEvaluator:
    """Evaluates pushable logical expressions given a ``scan`` function.

    Wrappers whose sources expose row-level operations (relational engine,
    key-value store, CSV files) use this evaluator to run the pushed
    expression "at the source"; the only thing each wrapper provides is how a
    named collection is scanned.
    """

    def __init__(self, scan: ScanFunction):
        self.scan = scan

    def evaluate(self, expression: LogicalOp) -> list[Row]:
        """Evaluate ``expression`` and return rows (materialized).

        The semantics live in :meth:`evaluate_stream`; this simply drains it,
        so the barrier and streaming wrapper paths cannot diverge.
        """
        return list(self.evaluate_stream(expression))

    def evaluate_stream(self, expression: LogicalOp) -> Iterator[Row]:
        """Lazy variant of :meth:`evaluate`: generators end to end.

        Used by wrappers over cursor-style sources whose ``scan`` yields rows
        incrementally: pushed-down select/project are applied per row as the
        consumer pulls, so nothing is materialized at the source boundary and
        an early-terminating consumer (``limit``) stops the scan.  Joins
        build only their right side, exactly like the mediator-side hash
        join.
        """
        if isinstance(expression, Get):
            return iter(self.scan(expression.collection))
        if isinstance(expression, BagLiteral):
            return (dict(value) for value in expression.values)
        if isinstance(expression, Project):
            attributes = expression.attributes
            return (
                {attr: row.get(attr) for attr in attributes}
                for row in self.evaluate_stream(expression.child)
            )
        if isinstance(expression, Rename):
            pairs = expression.pairs
            return (
                {new: row.get(old) for old, new in pairs}
                for row in self.evaluate_stream(expression.child)
            )
        if isinstance(expression, Select):
            variable = expression.variable
            predicate = expression.predicate
            return (
                row
                for row in self.evaluate_stream(expression.child)
                if predicate.evaluate({variable: row})
            )
        if isinstance(expression, Join):
            return self._join_stream(expression)
        if isinstance(expression, Union):
            return self._union_stream(expression)
        if isinstance(expression, Flatten):
            return self._flatten_stream(expression)
        if isinstance(expression, Limit):
            return self._limit_stream(expression)
        if isinstance(expression, GroupBy):
            return self._groupby_stream(expression)
        raise WrapperError(f"cannot evaluate {expression.to_text()} at a data source")

    def _join_stream(self, expression: Join) -> Iterator[Row]:
        left_attr, right_attr = expression.join_attributes()
        buckets: dict[Any, list[Row]] = {}
        for row in self.evaluate_stream(expression.right):
            buckets.setdefault(row.get(right_attr), []).append(row)
        for row in self.evaluate_stream(expression.left):
            for match in buckets.get(row.get(left_attr), []):
                merged = dict(match)
                merged.update(row)
                yield merged

    def _union_stream(self, expression: Union) -> Iterator[Row]:
        for child in expression.inputs:
            yield from self.evaluate_stream(child)

    def _flatten_stream(self, expression: Flatten) -> Iterator[Row]:
        for row in self.evaluate_stream(expression.child):
            if isinstance(row, (list, tuple)):
                yield from row
            else:
                yield row

    def _groupby_stream(self, expression: GroupBy) -> Iterator[Row]:
        """Grouped aggregation at the source (the ``groupby`` terminal).

        Shares :func:`~repro.runtime.operators.group_rows` with the
        mediator's compensation path, so a pushed and a mediator-side
        aggregation can never disagree on NULL or empty-group semantics.
        """
        from repro.runtime.operators import group_rows  # local: avoid cycle

        rows = self.evaluate_stream(expression.child)
        for row in group_rows(
            rows, expression.variable, expression.keys, expression.aggregates
        ):
            yield dict(row)

    def _limit_stream(self, expression: Limit) -> Iterator[Row]:
        """The pushed-down fetch size: stop the scan after ``count`` rows."""
        child = self.evaluate_stream(expression.child)
        if expression.count <= 0:
            close = getattr(child, "close", None)
            if close is not None:
                close()
            return
        try:
            produced = 0
            for row in child:
                yield row
                produced += 1
                if produced >= expression.count:
                    return
        finally:
            close = getattr(child, "close", None)
            if close is not None:
                close()

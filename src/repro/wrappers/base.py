"""The abstract wrapper interface and a shared algebra evaluator.

The paper: "DISCO interfaces to wrappers at the level of an abstract algebraic
machine of logical operators.  When the DBI implements a new wrapper, she
chooses a (sub) set of logical operators to support.  The DBI implements the
logical operators, and also implements a call in the wrapper interface which
returns the set of supported logical operators."
"""

from __future__ import annotations

from typing import Any, Callable

from repro.algebra.capabilities import CapabilityGrammar, CapabilitySet
from repro.algebra.logical import (
    BagLiteral,
    Flatten,
    Get,
    Join,
    LogicalOp,
    Project,
    Select,
    Union,
)
from repro.errors import CapabilityError, WrapperError

Row = dict[str, Any]
ScanFunction = Callable[[str], list[Row]]


class Wrapper:
    """Base class for every wrapper.

    Subclasses implement :meth:`_execute` (how a legal expression is actually
    evaluated at the source) and pass their capability set to ``__init__``.
    """

    def __init__(self, name: str, capabilities: CapabilitySet):
        self.name = name
        self.capabilities = capabilities
        self._grammar = capabilities.to_grammar()

    # -- the two calls of the wrapper interface ------------------------------------------
    def submit_functionality(self) -> CapabilityGrammar:
        """Return the grammar describing the supported logical operators."""
        return self._grammar

    def submit(self, expression: LogicalOp) -> list[Row]:
        """Evaluate ``expression`` (in the source's name space) and return rows.

        The expression is re-checked against the capability grammar: an
        illegal expression indicates an optimizer bug or a hand-built plan, so
        it fails loudly instead of silently changing query semantics.
        """
        if not self._grammar.accepts(expression):
            raise CapabilityError(
                f"wrapper {self.name!r} does not accept expression {expression.to_text()}"
            )
        return self._execute(expression)

    # -- hooks for subclasses ------------------------------------------------------------
    def _execute(self, expression: LogicalOp) -> list[Row]:
        raise NotImplementedError

    def source_collections(self) -> list[str]:
        """Names of the collections the underlying source exposes."""
        return []

    def source_attributes(self, collection: str) -> list[str]:
        """Attribute names of ``collection`` as seen by the data source.

        Used for the run-time type check of Section 2.1: the mediator compares
        these names with the mediator type (after applying the local
        transformation map) and raises a type conflict on mismatch.
        """
        return []

    def cardinality(self, collection: str) -> int | None:
        """Row count of ``collection`` when the source exports it, else None."""
        return None

    def describe(self) -> dict[str, Any]:
        """Catalog-friendly description of the wrapper."""
        return {
            "name": self.name,
            "operators": sorted(self.capabilities.operators),
            "compose": self.capabilities.compose,
        }


class AlgebraEvaluator:
    """Evaluates pushable logical expressions given a ``scan`` function.

    Wrappers whose sources expose row-level operations (relational engine,
    key-value store, CSV files) use this evaluator to run the pushed
    expression "at the source"; the only thing each wrapper provides is how a
    named collection is scanned.
    """

    def __init__(self, scan: ScanFunction):
        self.scan = scan

    def evaluate(self, expression: LogicalOp) -> list[Row]:
        """Evaluate ``expression`` and return rows."""
        if isinstance(expression, Get):
            return self.scan(expression.collection)
        if isinstance(expression, BagLiteral):
            return [dict(value) for value in expression.values]
        if isinstance(expression, Project):
            rows = self.evaluate(expression.child)
            missing_ok = expression.attributes
            return [{attr: row.get(attr) for attr in missing_ok} for row in rows]
        if isinstance(expression, Select):
            rows = self.evaluate(expression.child)
            variable = expression.variable
            predicate = expression.predicate
            return [row for row in rows if predicate.evaluate({variable: row})]
        if isinstance(expression, Join):
            left_rows = self.evaluate(expression.left)
            right_rows = self.evaluate(expression.right)
            left_attr, right_attr = expression.join_attributes()
            buckets: dict[Any, list[Row]] = {}
            for row in right_rows:
                buckets.setdefault(row.get(right_attr), []).append(row)
            joined: list[Row] = []
            for row in left_rows:
                for match in buckets.get(row.get(left_attr), []):
                    merged = dict(match)
                    merged.update(row)
                    joined.append(merged)
            return joined
        if isinstance(expression, Union):
            result: list[Row] = []
            for child in expression.inputs:
                result.extend(self.evaluate(child))
            return result
        if isinstance(expression, Flatten):
            rows = self.evaluate(expression.child)
            flattened: list[Row] = []
            for row in rows:
                if isinstance(row, (list, tuple)):
                    flattened.extend(row)
                else:
                    flattened.append(row)
            return flattened
        raise WrapperError(f"cannot evaluate {expression.to_text()} at a data source")

"""Wrapper for the key-value store: the least capable data source.

Only ``get(collection)`` is supported, so every selection, projection and
join involving this source must run at the mediator -- the situation the
paper's default cost model and capability grammar are designed to handle.
"""

from __future__ import annotations

from repro.algebra.capabilities import CapabilitySet
from repro.algebra.logical import Get, LogicalOp
from repro.errors import WrapperError
from repro.sources.keyvalue_store import KeyValueStore
from repro.sources.server import SimulatedServer
from repro.wrappers.base import Row, Wrapper


class KeyValueWrapper(Wrapper):
    """Wrapper over a :class:`KeyValueStore` hosted by a simulated server."""

    def __init__(self, name: str, server: SimulatedServer):
        super().__init__(name, CapabilitySet.get_only())
        self.server = server

    def _execute(self, expression: LogicalOp) -> list[Row]:
        if not isinstance(expression, Get):
            raise WrapperError(
                f"key-value wrapper {self.name!r} only evaluates get(collection)"
            )
        collection = expression.collection

        def run(store: KeyValueStore) -> list[Row]:
            return store.scan(collection)

        return self.server.call(run)

    def source_collections(self) -> list[str]:
        store: KeyValueStore = self.server.store
        return store.collection_names()

    def source_attributes(self, collection: str) -> list[str]:
        store: KeyValueStore = self.server.store
        if collection not in store.collection_names():
            return []
        rows = store.scan(collection)
        return list(rows[0]) if rows else []

    def cardinality(self, collection: str) -> int | None:
        store: KeyValueStore = self.server.store
        if collection not in store.collection_names():
            return None
        return store.cardinality(collection)

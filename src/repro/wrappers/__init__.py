"""Wrappers: the component interface to data sources (paper Sections 1.4 and 3.2).

Every wrapper implements two calls:

* ``submit_functionality()`` -- return the capability grammar describing which
  logical operators (and which compositions) the wrapper understands;
* ``submit(expression)`` -- evaluate a logical expression, already translated
  into the *source's* name space, and return rows.

The concrete wrappers differ in capability and in how they execute:

=========================  ==========================================  =====================
wrapper                    underlying source                           capabilities
=========================  ==========================================  =====================
:class:`RelationalWrapper` :class:`~repro.sources.RelationalEngine`    configurable, full by default
:class:`SqlWrapper`        :class:`~repro.sources.sql.SqlEngine`       get/project/select/join, translated to SQL text
:class:`KeyValueWrapper`   :class:`~repro.sources.KeyValueStore`       get only
:class:`TextSearchWrapper` :class:`~repro.sources.TextStore`           get + equality select (keyword search), no composition
:class:`CsvWrapper`        :class:`~repro.sources.CsvStore`            get + project
:class:`MediatorWrapper`   another DISCO mediator                      full (distributed mediator composition)
=========================  ==========================================  =====================
"""

from repro.wrappers.base import (
    RESUME_REPLAY,
    RESUME_TOKEN,
    AlgebraEvaluator,
    ResumableStream,
    Wrapper,
)
from repro.wrappers.generator import GeneratorWrapper
from repro.wrappers.relational import RelationalWrapper
from repro.wrappers.sqlwrapper import SqlWrapper
from repro.wrappers.keyvalue import KeyValueWrapper
from repro.wrappers.textsearch import TextSearchWrapper
from repro.wrappers.csvsource import CsvWrapper
from repro.wrappers.mediator_wrapper import MediatorWrapper

__all__ = [
    "Wrapper",
    "AlgebraEvaluator",
    "ResumableStream",
    "RESUME_TOKEN",
    "RESUME_REPLAY",
    "GeneratorWrapper",
    "RelationalWrapper",
    "SqlWrapper",
    "KeyValueWrapper",
    "TextSearchWrapper",
    "CsvWrapper",
    "MediatorWrapper",
]

"""Wrapper for the file-backed CSV source: ``get`` and ``project`` only."""

from __future__ import annotations

from repro.algebra.capabilities import CapabilitySet
from repro.algebra.logical import Get, LogicalOp, Project
from repro.errors import WrapperError
from repro.sources.csv_store import CsvStore
from repro.sources.server import SimulatedServer
from repro.wrappers.base import Row, Wrapper


class CsvWrapper(Wrapper):
    """Wrapper over a :class:`CsvStore` hosted by a simulated server."""

    def __init__(self, name: str, server: SimulatedServer):
        super().__init__(name, CapabilitySet.of("get", "project"))
        self.server = server

    def _execute(self, expression: LogicalOp) -> list[Row]:
        if isinstance(expression, Get):
            collection = expression.collection
            return self.server.call(lambda store: store.scan(collection))
        if isinstance(expression, Project) and isinstance(expression.child, Get):
            collection = expression.child.collection
            columns = list(expression.attributes)
            return self.server.call(lambda store: store.scan(collection, columns=columns))
        raise WrapperError(
            f"csv wrapper {self.name!r} cannot evaluate {expression.to_text()}"
        )

    def source_collections(self) -> list[str]:
        store: CsvStore = self.server.store
        return store.collection_names()

    def source_attributes(self, collection: str) -> list[str]:
        store: CsvStore = self.server.store
        if collection not in store.collection_names():
            return []
        rows = store.scan(collection)
        return list(rows[0]) if rows else []

    def cardinality(self, collection: str) -> int | None:
        store: CsvStore = self.server.store
        if collection not in store.collection_names():
            return None
        return store.cardinality(collection)

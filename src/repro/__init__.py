"""repro: a reproduction of DISCO -- Scaling Heterogeneous Databases and the
Design of Disco (Tomasic, Raschid, Valduriez; INRIA RR-2704, 1995 / ICDCS 1996).

The public API is re-exported here::

    from repro import Mediator, Repository, RelationalWrapper
    from repro.sources import RelationalEngine, SimulatedServer

    mediator = Mediator()
    mediator.register_wrapper("w0", RelationalWrapper("w0", server))
    mediator.create_repository("r0", host="rodin")
    mediator.define_interface("Person", [("name", "String"), ("salary", "Short")],
                              extent_name="person")
    mediator.add_extent("person0", "Person", "w0", "r0")
    result = mediator.query("select x.name from x in person where x.salary > 10")

See README.md for the full quickstart and DESIGN.md for the system inventory.
"""

from repro.core.catalog import Catalog
from repro.core.mediator import Mediator
from repro.core.result import QueryResult
from repro.core.session import Session
from repro.datamodel.mapping import LocalTransformationMap
from repro.datamodel.repository import Repository
from repro.datamodel.values import Bag, Struct, make_bag, make_struct
from repro.errors import (
    AdmissionError,
    CapabilityError,
    DiscoError,
    NameResolutionError,
    ParseError,
    SchemaError,
    TypeConflictError,
    UnavailableSourceError,
)
from repro.runtime.answercache import AnswerCache
from repro.serving import MediatorServer, ServerConfig, ServerReport
from repro.wrappers import (
    CsvWrapper,
    GeneratorWrapper,
    KeyValueWrapper,
    MediatorWrapper,
    RelationalWrapper,
    SqlWrapper,
    TextSearchWrapper,
)

__version__ = "1.0.0"

__all__ = [
    "Mediator",
    "AnswerCache",
    "Catalog",
    "Session",
    "QueryResult",
    "Repository",
    "LocalTransformationMap",
    "Bag",
    "Struct",
    "make_bag",
    "make_struct",
    "RelationalWrapper",
    "GeneratorWrapper",
    "SqlWrapper",
    "KeyValueWrapper",
    "TextSearchWrapper",
    "CsvWrapper",
    "MediatorWrapper",
    "DiscoError",
    "ParseError",
    "SchemaError",
    "NameResolutionError",
    "TypeConflictError",
    "CapabilityError",
    "UnavailableSourceError",
    "AdmissionError",
    "MediatorServer",
    "ServerConfig",
    "ServerReport",
    "__version__",
]

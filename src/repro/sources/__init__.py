"""Simulated heterogeneous data sources (substrates).

The paper's mediator talks, through wrappers, to autonomous remote data
sources: relational databases, WAIS servers, file systems and so on.  This
package provides laptop-scale stand-ins for those sources:

* :mod:`repro.sources.table` -- in-memory tables with a typed schema;
* :mod:`repro.sources.relational_engine` -- a small relational engine
  (scan / select / project / join / union) over those tables;
* :mod:`repro.sources.sql` -- a miniature SQL dialect (lexer, parser, engine)
  so that one wrapper genuinely translates the mediator algebra into a
  different query language;
* :mod:`repro.sources.keyvalue_store` -- a get-only key-value store, the
  least capable source;
* :mod:`repro.sources.text_store` -- a WAIS-like keyword-search server;
* :mod:`repro.sources.csv_store` -- a file-backed source;
* :mod:`repro.sources.network` and :mod:`repro.sources.server` -- the
  simulated network (latency, availability failures) and the server wrapper
  around any store;
* :mod:`repro.sources.workload` -- synthetic data generators, including the
  water-quality application the paper uses as motivation.
"""

from repro.sources.table import Table, TableSchema, Column
from repro.sources.relational_engine import RelationalEngine
from repro.sources.keyvalue_store import KeyValueStore
from repro.sources.text_store import TextStore, Document
from repro.sources.csv_store import CsvStore
from repro.sources.network import NetworkProfile, AvailabilityModel
from repro.sources.server import SimulatedServer
from repro.sources.workload import (
    WorkloadConfig,
    generate_person_rows,
    generate_water_quality_rows,
    build_person_sources,
    build_water_quality_sources,
)

__all__ = [
    "Table",
    "TableSchema",
    "Column",
    "RelationalEngine",
    "KeyValueStore",
    "TextStore",
    "Document",
    "CsvStore",
    "NetworkProfile",
    "AvailabilityModel",
    "SimulatedServer",
    "WorkloadConfig",
    "generate_person_rows",
    "generate_water_quality_rows",
    "build_person_sources",
    "build_water_quality_sources",
]

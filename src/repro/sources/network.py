"""Simulated network behaviour: latency and availability.

The two properties of 1995 wide-area data sources that DISCO's mechanisms
react to are (a) how long a call takes -- which drives the learned cost model
of Section 3.3 -- and (b) whether the source answers at all -- which drives
the partial-evaluation semantics of Section 4.  Both are modelled explicitly
and deterministically (seeded) so experiments are repeatable.

Lock discipline: one lock per model instance, guarding the seeded generator
and the armed-failure lists -- with concurrent queries (the serving layer,
the concurrency bench) many exec workers hit the same source model at once,
and an unguarded ``random.Random`` or a list popped by two threads corrupts
the injection schedule.  Under concurrency the *order* in which workers draw
from the generator is scheduling-dependent, so cross-run repeatability is
per-draw-set, not per-draw -- same multiset of delays, different assignment.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

from repro.errors import UnavailableSourceError


@dataclass
class NetworkProfile:
    """Latency model for one source: ``base + per_row * rows`` seconds, plus jitter."""

    base_latency: float = 0.0
    per_row_latency: float = 0.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()

    def delay_for(self, row_count: int = 0) -> float:
        """Return the simulated transfer delay for a reply of ``row_count`` rows."""
        delay = self.base_latency + self.per_row_latency * max(row_count, 0)
        if self.jitter > 0:
            with self._lock:
                delay += self._rng.uniform(0, self.jitter)
        return max(delay, 0.0)

    @classmethod
    def instant(cls) -> "NetworkProfile":
        """A zero-latency profile (unit tests, logic-only experiments)."""
        return cls()

    @classmethod
    def lan(cls, seed: int = 0) -> "NetworkProfile":
        """A fast local-network profile."""
        return cls(base_latency=0.0005, per_row_latency=0.000001, jitter=0.0002, seed=seed)

    @classmethod
    def wan(cls, seed: int = 0) -> "NetworkProfile":
        """A slow wide-area profile, the setting the paper worries about."""
        return cls(base_latency=0.005, per_row_latency=0.00001, jitter=0.002, seed=seed)


@dataclass
class AvailabilityModel:
    """Whether a source answers a given request.

    Three mechanisms, combinable:

    * ``available`` -- a hard switch (the DBA took the source down);
    * ``failure_probability`` -- each request independently fails with this
      probability, drawn from a seeded generator;
    * ``fail_next(n)`` -- force the next ``n`` requests to fail (failure
      injection for tests and the partial-answer experiments);
    * ``crash_next(exc, n)`` -- force the next ``n`` requests to raise an
      *arbitrary* exception instead of the clean
      :class:`~repro.errors.UnavailableSourceError`, modelling sources that
      die mid-flight (connection reset, bad row, wrapper bug) rather than
      refusing service;
    * ``kill_after(rows, n)`` -- let the next ``n`` requests *succeed*, then
      kill the returned row stream after ``rows`` rows have been delivered:
      the mid-stream death (dropped connection, lost cursor) that exercises
      the streaming engine's resume-token recovery.
    """

    available: bool = True
    failure_probability: float = 0.0
    seed: int = 0
    _forced_failures: int = field(default=0, repr=False)
    _forced_crashes: list = field(default_factory=list, repr=False)
    _forced_kills: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_probability <= 1.0:
            raise ValueError("failure_probability must be within [0, 1]")
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()

    def fail_next(self, count: int = 1) -> None:
        """Force the next ``count`` requests to be treated as unavailable."""
        with self._lock:
            self._forced_failures += count

    def crash_next(self, exception: BaseException | type, count: int = 1) -> None:
        """Force the next ``count`` requests to raise ``exception``.

        Accepts an exception instance (raised as-is) or an exception class
        (instantiated with a descriptive message per request).  Unlike
        :meth:`fail_next`, the raised error is *not* an
        :class:`UnavailableSourceError` -- this is the hook for testing that
        the mediator isolates generic wrapper crashes.
        """
        with self._lock:
            self._forced_crashes.extend([exception] * count)

    def kill_after(
        self, rows: int, exception: BaseException | type | None = None, count: int = 1
    ) -> None:
        """Arm the next ``count`` requests to die after delivering ``rows`` rows.

        The request itself succeeds (the availability check passes and the
        call returns a row stream), but the stream raises once ``rows`` rows
        have been consumed -- a source that answered and then dropped the
        connection mid-transfer.  ``exception`` follows the
        :meth:`crash_next` conventions (instance raised as-is, class
        instantiated with a message); the default is a clean
        :class:`UnavailableSourceError`.  A stream shorter than ``rows``
        never reaches the kill point and completes normally.
        """
        if rows < 0:
            raise ValueError("rows must be non-negative")
        with self._lock:
            self._forced_kills.extend([(rows, exception)] * count)

    def take_kill(self) -> tuple[int, BaseException | type | None] | None:
        """Pop the armed kill for the request being served, if any."""
        with self._lock:
            if self._forced_kills:
                return self._forced_kills.pop(0)
            return None

    def set_available(self, available: bool) -> None:
        """Flip the hard availability switch."""
        self.available = available

    def check(self, source_name: str) -> None:
        """Raise :class:`UnavailableSourceError` when this request should fail."""
        with self._lock:
            if self._forced_crashes:
                crash = self._forced_crashes.pop(0)
                if isinstance(crash, BaseException):
                    raise crash
                raise crash(f"{source_name!r}: injected crash")
            if self._forced_failures > 0:
                self._forced_failures -= 1
                raise UnavailableSourceError(
                    source_name, f"{source_name!r}: injected failure"
                )
            if not self.available:
                raise UnavailableSourceError(source_name)
            if self.failure_probability and self._rng.random() < self.failure_probability:
                raise UnavailableSourceError(
                    source_name, f"{source_name!r}: transient network failure"
                )

    def would_fail(self) -> bool:
        """Non-destructive peek used by analytical availability models."""
        return not self.available

"""In-memory tables: the storage layer under every simulated data source.

Rows are plain dicts.  A :class:`TableSchema` carries column names and
light-weight Python types so the engines can validate inserts and the
wrappers can report the source-side type to the mediator (which is how the
run-time type check of paper Section 2.1 is exercised).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.errors import QueryExecutionError, SchemaError


@dataclass(frozen=True)
class Column:
    """One column of a table: a name and an optional Python type."""

    name: str
    py_type: type | None = None

    def check(self, value: Any) -> None:
        """Raise :class:`SchemaError` when ``value`` does not match the column type."""
        if value is None or self.py_type is None:
            return
        if self.py_type is float and isinstance(value, int) and not isinstance(value, bool):
            return
        if not isinstance(value, self.py_type):
            raise SchemaError(
                f"column {self.name!r} expects {self.py_type.__name__}, got {value!r}"
            )


@dataclass(frozen=True)
class TableSchema:
    """Ordered collection of columns."""

    columns: tuple[Column, ...]

    @classmethod
    def of(cls, *specs: str | tuple[str, type]) -> "TableSchema":
        """Build a schema from names or ``(name, type)`` pairs."""
        columns = []
        for spec in specs:
            if isinstance(spec, tuple):
                columns.append(Column(spec[0], spec[1]))
            else:
                columns.append(Column(spec))
        return cls(tuple(columns))

    def column_names(self) -> list[str]:
        """Return column names in order."""
        return [column.name for column in self.columns]

    def has_column(self, name: str) -> bool:
        """Return True when the schema declares ``name``."""
        return any(column.name == name for column in self.columns)

    def validate_row(self, row: Mapping[str, Any]) -> None:
        """Raise when ``row`` is missing a column or has a badly typed value."""
        for column in self.columns:
            if column.name not in row:
                raise SchemaError(f"row {dict(row)!r} is missing column {column.name!r}")
            column.check(row[column.name])


class Table:
    """A named collection of rows with an optional schema.

    This is the storage substrate shared by the relational engine, the SQL
    engine and the CSV store; wrappers never see it directly.
    """

    def __init__(
        self,
        name: str,
        schema: TableSchema | None = None,
        rows: Iterable[Mapping[str, Any]] | None = None,
    ):
        if not name:
            raise SchemaError("a table needs a non-empty name")
        self.name = name
        self.schema = schema
        self._rows: list[dict[str, Any]] = []
        for row in rows or ():
            self.insert(row)

    # -- mutation -------------------------------------------------------------
    def insert(self, row: Mapping[str, Any]) -> None:
        """Insert a row, validating against the schema when one is declared."""
        materialised = dict(row)
        if self.schema is not None:
            self.schema.validate_row(materialised)
        self._rows.append(materialised)

    def insert_many(self, rows: Iterable[Mapping[str, Any]]) -> int:
        """Insert every row in ``rows``; return how many were inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def delete_where(self, predicate: Callable[[Mapping[str, Any]], bool]) -> int:
        """Delete rows matching ``predicate``; return how many were removed."""
        before = len(self._rows)
        self._rows = [row for row in self._rows if not predicate(row)]
        return before - len(self._rows)

    def clear(self) -> None:
        """Remove every row."""
        self._rows.clear()

    # -- access ----------------------------------------------------------------
    def rows(self) -> Iterator[dict[str, Any]]:
        """Iterate over copies of the rows (callers cannot corrupt storage)."""
        for row in self._rows:
            yield dict(row)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return self.rows()

    def column_names(self) -> list[str]:
        """Column names from the schema, or inferred from the first row."""
        if self.schema is not None:
            return self.schema.column_names()
        if self._rows:
            return list(self._rows[0])
        return []

    def column_values(self, name: str) -> list[Any]:
        """Return every value of column ``name`` (for statistics and tests)."""
        if self.column_names() and name not in self.column_names():
            raise QueryExecutionError(f"table {self.name!r} has no column {name!r}")
        return [row.get(name) for row in self._rows]

    def cardinality(self) -> int:
        """Number of rows (used by cost statistics exported by some wrappers)."""
        return len(self._rows)

    def __repr__(self) -> str:
        return f"Table(name={self.name!r}, rows={len(self._rows)})"

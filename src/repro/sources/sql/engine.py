"""Executor for the miniature SQL dialect.

Evaluates a parsed :class:`~repro.sources.sql.parser.SelectStatement` against
a :class:`~repro.sources.relational_engine.RelationalEngine`.  The engine is
deliberately simple (nested hash joins, tuple-at-a-time predicates); it exists
so that the SQL wrapper really translates mediator algebra into another
language and gets rows back from a foreign executor.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import QueryExecutionError
from repro.sources.relational_engine import RelationalEngine
from repro.sources.sql.parser import (
    BooleanExpr,
    ColumnRef,
    Comparison,
    InPredicate,
    Literal,
    SelectStatement,
    SqlParser,
)

Row = dict[str, Any]


class SqlEngine:
    """Run miniature-SQL SELECT statements against a relational engine."""

    def __init__(self, engine: RelationalEngine | None = None, name: str = "sqldb"):
        self.name = name
        self.engine = engine or RelationalEngine(name=f"{name}-storage")

    # -- convenience passthroughs -----------------------------------------------------
    def create_table(self, name: str, schema=None, rows=None):
        """Create a table in the underlying storage engine."""
        return self.engine.create_table(name, schema=schema, rows=rows)

    def table_names(self) -> list[str]:
        """Names of the tables this SQL engine can query."""
        return self.engine.table_names()

    def cardinality(self, table_name: str) -> int:
        """Row count of ``table_name``."""
        return self.engine.cardinality(table_name)

    # -- execution --------------------------------------------------------------------
    def execute(self, sql: str) -> list[Row]:
        """Parse and execute ``sql``, returning a list of result rows."""
        statement = SqlParser(sql).parse()
        return self.execute_statement(statement)

    def execute_statement(self, statement: SelectStatement) -> list[Row]:
        """Execute an already-parsed SELECT statement."""
        rows = self._rows_for(statement.table)
        for join in statement.joins:
            right_rows = self._rows_for(join.table)
            rows = self.engine.join(
                rows, right_rows, on=(join.left_column.name, join.right_column.name)
            )
        if statement.where is not None:
            rows = [row for row in rows if self._evaluate(statement.where, row)]
        if statement.columns is not None:
            # Aliases (``col AS name``) rename while projecting; a derived
            # table built this way exposes uniquely named columns before any
            # enclosing join merges rows.  Unknown columns stay an error,
            # like the storage engine's own projection.
            projected: list[Row] = []
            for row in rows:
                missing = [c.name for c in statement.columns if c.name not in row]
                if missing:
                    raise QueryExecutionError(
                        f"projection refers to unknown column(s) {missing!r}"
                    )
                projected.append(
                    {c.output_name(): row[c.name] for c in statement.columns}
                )
            rows = projected
        if statement.limit is not None:
            rows = rows[: max(statement.limit, 0)]
        return rows

    def _rows_for(self, table_ref: Any) -> list[Row]:
        """Rows of a FROM/JOIN operand: a base table or a derived table."""
        if isinstance(table_ref, SelectStatement):
            return self.execute_statement(table_ref)
        return self.engine.scan(table_ref)

    # -- predicate evaluation -------------------------------------------------------------
    def _evaluate(self, expr: Any, row: Mapping[str, Any]) -> bool:
        if isinstance(expr, Comparison):
            return self._compare(expr, row)
        if isinstance(expr, InPredicate):
            value = self._operand_value(expr.operand, row)
            if value is None:
                return False
            for item in expr.items:
                candidate = item.value
                if candidate is None:
                    continue
                try:
                    if value == candidate:
                        return True
                except TypeError:
                    continue
            return False
        if isinstance(expr, BooleanExpr):
            if expr.op == "AND":
                return all(self._evaluate(operand, row) for operand in expr.operands)
            if expr.op == "OR":
                return any(self._evaluate(operand, row) for operand in expr.operands)
            if expr.op == "NOT":
                return not self._evaluate(expr.operands[0], row)
        raise QueryExecutionError(f"cannot evaluate SQL expression {expr!r}")

    def _compare(self, comparison: Comparison, row: Mapping[str, Any]) -> bool:
        left = self._operand_value(comparison.left, row)
        right = self._operand_value(comparison.right, row)
        op = comparison.op
        if left is None or right is None:
            # SQL three-valued logic collapsed to "unknown is false".
            return False
        try:
            if op == "=":
                return left == right
            if op == "<>":
                return left != right
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
        except TypeError:
            return False
        raise QueryExecutionError(f"unknown comparison operator {op!r}")

    def _operand_value(self, operand: Any, row: Mapping[str, Any]) -> Any:
        if isinstance(operand, Literal):
            return operand.value
        if isinstance(operand, ColumnRef):
            if operand.name not in row:
                raise QueryExecutionError(f"unknown column {operand.render()!r}")
            return row[operand.name]
        raise QueryExecutionError(f"unknown operand {operand!r}")

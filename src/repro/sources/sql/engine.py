"""Executor for the miniature SQL dialect.

Evaluates a parsed :class:`~repro.sources.sql.parser.SelectStatement` against
a :class:`~repro.sources.relational_engine.RelationalEngine`.  The engine is
deliberately simple (nested hash joins, tuple-at-a-time predicates); it exists
so that the SQL wrapper really translates mediator algebra into another
language and gets rows back from a foreign executor.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import QueryExecutionError
from repro.sources.relational_engine import RelationalEngine
from repro.sources.sql.parser import (
    AggregateRef,
    BooleanExpr,
    ColumnRef,
    Comparison,
    InPredicate,
    Literal,
    SelectStatement,
    SqlParser,
)

Row = dict[str, Any]


class SqlEngine:
    """Run miniature-SQL SELECT statements against a relational engine."""

    def __init__(self, engine: RelationalEngine | None = None, name: str = "sqldb"):
        self.name = name
        self.engine = engine or RelationalEngine(name=f"{name}-storage")

    # -- convenience passthroughs -----------------------------------------------------
    def create_table(self, name: str, schema=None, rows=None):
        """Create a table in the underlying storage engine."""
        return self.engine.create_table(name, schema=schema, rows=rows)

    def table_names(self) -> list[str]:
        """Names of the tables this SQL engine can query."""
        return self.engine.table_names()

    def cardinality(self, table_name: str) -> int:
        """Row count of ``table_name``."""
        return self.engine.cardinality(table_name)

    # -- execution --------------------------------------------------------------------
    def execute(self, sql: str) -> list[Row]:
        """Parse and execute ``sql``, returning a list of result rows."""
        statement = SqlParser(sql).parse()
        return self.execute_statement(statement)

    def execute_statement(self, statement: SelectStatement) -> list[Row]:
        """Execute an already-parsed SELECT statement."""
        rows = self._rows_for(statement.table)
        for join in statement.joins:
            right_rows = self._rows_for(join.table)
            rows = self.engine.join(
                rows, right_rows, on=(join.left_column.name, join.right_column.name)
            )
        if statement.where is not None:
            rows = [row for row in rows if self._evaluate(statement.where, row)]
        aggregates = any(
            isinstance(column, AggregateRef) for column in statement.columns or ()
        )
        if statement.group_by or aggregates:
            rows = self._grouped(statement, rows)
        elif statement.columns is not None:
            # Aliases (``col AS name``) rename while projecting; a derived
            # table built this way exposes uniquely named columns before any
            # enclosing join merges rows.  Unknown columns stay an error,
            # like the storage engine's own projection.
            projected: list[Row] = []
            for row in rows:
                missing = [c.name for c in statement.columns if c.name not in row]
                if missing:
                    raise QueryExecutionError(
                        f"projection refers to unknown column(s) {missing!r}"
                    )
                projected.append(
                    {c.output_name(): row[c.name] for c in statement.columns}
                )
            rows = projected
        if statement.limit is not None:
            rows = rows[: max(statement.limit, 0)]
        return rows

    def _grouped(self, statement: SelectStatement, rows: list[Row]) -> list[Row]:
        """Evaluate a GROUP BY / aggregate projection over ``rows``.

        NULL semantics match the mediator's own aggregation
        (:mod:`repro.runtime.operators`): COUNT(col) counts non-NULL values
        while COUNT(*) counts rows; SUM/MIN/MAX/AVG ignore NULLs and return
        NULL when no non-NULL value exists.
        """
        if statement.columns is None:
            raise QueryExecutionError(
                "SELECT * cannot be combined with GROUP BY or aggregates"
            )
        key_names = [column.name for column in statement.group_by]
        for column in statement.columns:
            if isinstance(column, ColumnRef) and column.name not in key_names:
                raise QueryExecutionError(
                    f"column {column.render()!r} must appear in GROUP BY or an aggregate"
                )
        groups: dict[tuple[Any, ...], list[Row]] = {}
        order: list[tuple[Any, ...]] = []
        for row in rows:
            key = tuple(self._column_value(column, row) for column in statement.group_by)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        if not statement.group_by and not order:
            # An aggregate without keys always yields exactly one row, even
            # over empty input (COUNT gives 0, the others NULL).
            groups[()] = []
            order.append(())
        result: list[Row] = []
        for key in order:
            bucket = groups[key]
            key_values = dict(zip(key_names, key))
            out: Row = {}
            for column in statement.columns:
                if isinstance(column, AggregateRef):
                    out[column.output_name()] = self._aggregate_value(column, bucket)
                else:
                    out[column.output_name()] = key_values[column.name]
            result.append(out)
        return result

    def _aggregate_value(self, aggregate: AggregateRef, bucket: list[Row]) -> Any:
        if aggregate.column is None:  # COUNT(*)
            return len(bucket)
        values = [
            value
            for row in bucket
            if (value := self._column_value(aggregate.column, row)) is not None
        ]
        if aggregate.func == "COUNT":
            return len(values)
        if not values:
            return None
        if aggregate.func == "SUM":
            return sum(values)
        if aggregate.func == "AVG":
            return sum(values) / len(values)
        if aggregate.func == "MIN":
            return min(values)
        if aggregate.func == "MAX":
            return max(values)
        raise QueryExecutionError(f"unknown aggregate function {aggregate.func!r}")

    def _column_value(self, column: ColumnRef, row: Mapping[str, Any]) -> Any:
        if column.name not in row:
            raise QueryExecutionError(f"unknown column {column.render()!r}")
        return row[column.name]

    def _rows_for(self, table_ref: Any) -> list[Row]:
        """Rows of a FROM/JOIN operand: a base table or a derived table."""
        if isinstance(table_ref, SelectStatement):
            return self.execute_statement(table_ref)
        return self.engine.scan(table_ref)

    # -- predicate evaluation -------------------------------------------------------------
    def _evaluate(self, expr: Any, row: Mapping[str, Any]) -> bool:
        if isinstance(expr, Comparison):
            return self._compare(expr, row)
        if isinstance(expr, InPredicate):
            value = self._operand_value(expr.operand, row)
            if value is None:
                return False
            for item in expr.items:
                candidate = item.value
                if candidate is None:
                    continue
                try:
                    if value == candidate:
                        return True
                except TypeError:
                    continue
            return False
        if isinstance(expr, BooleanExpr):
            if expr.op == "AND":
                return all(self._evaluate(operand, row) for operand in expr.operands)
            if expr.op == "OR":
                return any(self._evaluate(operand, row) for operand in expr.operands)
            if expr.op == "NOT":
                return not self._evaluate(expr.operands[0], row)
        raise QueryExecutionError(f"cannot evaluate SQL expression {expr!r}")

    def _compare(self, comparison: Comparison, row: Mapping[str, Any]) -> bool:
        left = self._operand_value(comparison.left, row)
        right = self._operand_value(comparison.right, row)
        op = comparison.op
        if left is None or right is None:
            # SQL three-valued logic collapsed to "unknown is false".
            return False
        try:
            if op == "=":
                return left == right
            if op == "<>":
                return left != right
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
        except TypeError:
            return False
        raise QueryExecutionError(f"unknown comparison operator {op!r}")

    def _operand_value(self, operand: Any, row: Mapping[str, Any]) -> Any:
        if isinstance(operand, Literal):
            return operand.value
        if isinstance(operand, ColumnRef):
            if operand.name not in row:
                raise QueryExecutionError(f"unknown column {operand.render()!r}")
            return row[operand.name]
        raise QueryExecutionError(f"unknown operand {operand!r}")

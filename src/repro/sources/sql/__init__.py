"""A miniature SQL dialect: lexer, parser and executor.

The paper's first wrapper example is ``WrapperPostgres()`` -- a wrapper around
a relational database that speaks SQL.  To exercise the same code path (the
wrapper translates the mediator's algebraic expression into a *different*
query language), this package implements a small but genuine SQL engine:

* ``SELECT <columns | *> FROM <table> [JOIN <table> ON a = b ...]``
  ``[WHERE <predicate>]`` with ``AND`` / ``OR`` / ``NOT``, comparison
  operators, numeric and string literals;
* query execution against a :class:`~repro.sources.relational_engine.RelationalEngine`.

The SQL wrapper (:mod:`repro.wrappers.sqlwrapper`) builds SQL text from
algebra trees and sends it here, never touching the engine's tables directly.
"""

from repro.sources.sql.lexer import SqlLexer, SqlToken
from repro.sources.sql.parser import SqlParser, SelectStatement, JoinClause
from repro.sources.sql.engine import SqlEngine

__all__ = [
    "SqlLexer",
    "SqlToken",
    "SqlParser",
    "SelectStatement",
    "JoinClause",
    "SqlEngine",
]

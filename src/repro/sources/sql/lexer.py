"""Tokenizer for the miniature SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "JOIN",
    "ON",
    "LIMIT",
    "GROUP",
    "BY",
    "AND",
    "OR",
    "NOT",
    "AS",
    "IN",
    "TRUE",
    "FALSE",
    "NULL",
}

OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "*", ",", ".", "(", ")")


@dataclass(frozen=True)
class SqlToken:
    """One lexical token: a kind, the source text and its position."""

    kind: str  # KEYWORD, IDENT, NUMBER, STRING, OP, EOF
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        """Return True when this token is the keyword ``word``."""
        return self.kind == "KEYWORD" and self.text == word.upper()


class SqlLexer:
    """Hand-written scanner producing :class:`SqlToken` objects."""

    def __init__(self, text: str):
        self.text = text
        self.position = 0

    def tokens(self) -> list[SqlToken]:
        """Tokenize the whole input, ending with an EOF token."""
        result: list[SqlToken] = []
        while True:
            token = self._next_token()
            result.append(token)
            if token.kind == "EOF":
                return result

    # -- internals --------------------------------------------------------------
    def _next_token(self) -> SqlToken:
        self._skip_whitespace()
        if self.position >= len(self.text):
            return SqlToken("EOF", "", self.position)
        start = self.position
        char = self.text[self.position]
        if char == "'":
            return self._string(start)
        if char.isdigit() or (char == "-" and self._peek_is_digit()):
            return self._number(start)
        if char.isalpha() or char == "_":
            return self._word(start)
        for operator in OPERATORS:
            if self.text.startswith(operator, self.position):
                self.position += len(operator)
                return SqlToken("OP", operator, start)
        raise ParseError(f"unexpected character {char!r} in SQL", column=start)

    def _skip_whitespace(self) -> None:
        while self.position < len(self.text) and self.text[self.position].isspace():
            self.position += 1

    def _peek_is_digit(self) -> bool:
        return (
            self.position + 1 < len(self.text) and self.text[self.position + 1].isdigit()
        )

    def _string(self, start: int) -> SqlToken:
        self.position += 1
        chars: list[str] = []
        while self.position < len(self.text):
            char = self.text[self.position]
            if char == "'":
                # '' escapes a quote inside a string literal.
                if self.text.startswith("''", self.position):
                    chars.append("'")
                    self.position += 2
                    continue
                self.position += 1
                return SqlToken("STRING", "".join(chars), start)
            chars.append(char)
            self.position += 1
        raise ParseError("unterminated SQL string literal", column=start)

    def _number(self, start: int) -> SqlToken:
        self.position += 1
        while self.position < len(self.text) and (
            self.text[self.position].isdigit() or self.text[self.position] == "."
        ):
            self.position += 1
        return SqlToken("NUMBER", self.text[start : self.position], start)

    def _word(self, start: int) -> SqlToken:
        while self.position < len(self.text) and (
            self.text[self.position].isalnum() or self.text[self.position] == "_"
        ):
            self.position += 1
        text = self.text[start : self.position]
        if text.upper() in KEYWORDS:
            return SqlToken("KEYWORD", text.upper(), start)
        return SqlToken("IDENT", text, start)

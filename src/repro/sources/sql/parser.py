"""Recursive-descent parser for the miniature SQL dialect.

Grammar (roughly)::

    select    := SELECT projection FROM table_ref
                 (JOIN table_ref ON column = column)*
                 (WHERE expr)? (GROUP BY column (',' column)*)? (LIMIT number)?
    table_ref := IDENT | '(' select ')'
    projection:= '*' | item (',' item)*
    item      := (column | aggregate) (AS IDENT)?
    aggregate := (COUNT | SUM | MIN | MAX | AVG) '(' ('*' | column) ')'
    expr      := term (OR term)*
    term      := factor (AND factor)*
    factor    := NOT factor | '(' expr ')' | comparison
    comparison:= operand cmp_op operand
    operand   := column | NUMBER | STRING | TRUE | FALSE | NULL
    column    := IDENT ('.' IDENT)?

``AS`` aliases and derived tables exist for the mediator's namespace
aliasing: a pushed multi-extent join whose source columns collide arrives as
``SELECT * FROM (SELECT id, nm AS nm__emp0 FROM t_emp) JOIN (...) ON ...``,
so each branch's columns are uniquely named *before* the join merges rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ParseError
from repro.sources.sql.lexer import SqlLexer, SqlToken


# -- AST ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ColumnRef:
    """A column reference, optionally qualified by a table name and aliased."""

    name: str
    table: str | None = None
    #: output name when the projection item carries ``AS alias``; None keeps
    #: the column's own name.
    alias: str | None = None

    def output_name(self) -> str:
        """The name this column contributes to the result row."""
        return self.alias or self.name

    def render(self) -> str:
        """Render back to SQL text."""
        text = f"{self.table}.{self.name}" if self.table else self.name
        return f"{text} AS {self.alias}" if self.alias else text


#: the aggregate functions of the dialect (``COUNT(*)`` takes no column).
AGGREGATE_FUNCTIONS = ("COUNT", "SUM", "MIN", "MAX", "AVG")


@dataclass(frozen=True)
class AggregateRef:
    """``FUNC(column)`` / ``COUNT(*)`` as a projection item, optionally aliased."""

    func: str  # one of AGGREGATE_FUNCTIONS, upper-cased
    column: ColumnRef | None = None  # None means COUNT(*)
    alias: str | None = None

    def output_name(self) -> str:
        """The name this aggregate contributes to the result row."""
        return self.alias or self.func.lower()

    def render(self) -> str:
        """Render back to SQL text."""
        argument = "*" if self.column is None else self.column.render()
        text = f"{self.func}({argument})"
        return f"{text} AS {self.alias}" if self.alias else text


@dataclass(frozen=True)
class Literal:
    """A constant value in a predicate."""

    value: Any

    def render(self) -> str:
        """Render back to SQL text."""
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(self.value)


@dataclass(frozen=True)
class Comparison:
    """``left <op> right`` with op in =, <>, <, <=, >, >=."""

    op: str
    left: ColumnRef | Literal
    right: ColumnRef | Literal


@dataclass(frozen=True)
class InPredicate:
    """``operand IN (literal, ...)`` -- the batched-probe membership test."""

    operand: ColumnRef | Literal
    items: tuple[Literal, ...]


@dataclass(frozen=True)
class BooleanExpr:
    """``AND`` / ``OR`` / ``NOT`` combination of predicates."""

    op: str  # AND, OR, NOT
    operands: tuple[Any, ...]


@dataclass(frozen=True)
class JoinClause:
    """``JOIN <table ref> ON <left column> = <right column>``.

    ``table`` is either a table name or a nested :class:`SelectStatement`
    (a derived table).
    """

    table: Any
    left_column: ColumnRef
    right_column: ColumnRef


@dataclass(frozen=True)
class SelectStatement:
    """A parsed SELECT statement.

    ``table`` is either a table name (str) or a nested
    :class:`SelectStatement` -- a derived table, ``FROM (SELECT ...)``.
    """

    columns: tuple[Any, ...] | None  # ColumnRef/AggregateRef items; None means '*'
    table: Any
    joins: tuple[JoinClause, ...] = ()
    where: Any | None = None
    limit: int | None = None
    group_by: tuple[ColumnRef, ...] = ()


# -- parser -------------------------------------------------------------------------
class SqlParser:
    """Turn SQL text into a :class:`SelectStatement`."""

    def __init__(self, text: str):
        self.text = text
        self._tokens = SqlLexer(text).tokens()
        self._index = 0

    # -- token helpers -------------------------------------------------------------
    def _peek(self) -> SqlToken:
        return self._tokens[self._index]

    def _advance(self) -> SqlToken:
        token = self._tokens[self._index]
        if token.kind != "EOF":
            self._index += 1
        return token

    def _expect_keyword(self, word: str) -> SqlToken:
        token = self._advance()
        if not token.is_keyword(word):
            raise ParseError(f"expected {word}, got {token.text!r}", column=token.position)
        return token

    def _expect(self, kind: str, text: str | None = None) -> SqlToken:
        token = self._advance()
        if token.kind != kind or (text is not None and token.text != text):
            raise ParseError(
                f"expected {text or kind}, got {token.text!r}", column=token.position
            )
        return token

    def _match_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def _match_op(self, text: str) -> bool:
        token = self._peek()
        if token.kind == "OP" and token.text == text:
            self._advance()
            return True
        return False

    # -- grammar ----------------------------------------------------------------------
    def parse(self) -> SelectStatement:
        """Parse one SELECT statement; trailing input is an error."""
        statement = self._select()
        trailing = self._peek()
        if trailing.kind != "EOF":
            raise ParseError(
                f"unexpected trailing input {trailing.text!r}", column=trailing.position
            )
        return statement

    def _select(self) -> SelectStatement:
        self._expect_keyword("SELECT")
        columns = self._projection()
        self._expect_keyword("FROM")
        table = self._table_ref()
        joins: list[JoinClause] = []
        while self._match_keyword("JOIN"):
            join_table = self._table_ref()
            self._expect_keyword("ON")
            left = self._column()
            self._expect("OP", "=")
            right = self._column()
            joins.append(JoinClause(table=join_table, left_column=left, right_column=right))
        where = None
        if self._match_keyword("WHERE"):
            where = self._expression()
        group_by: tuple[ColumnRef, ...] = ()
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            keys = [self._column()]
            while self._match_op(","):
                keys.append(self._column())
            group_by = tuple(keys)
        limit = None
        if self._match_keyword("LIMIT"):
            token = self._expect("NUMBER")
            if "." in token.text or int(token.text) < 0:
                raise ParseError(
                    f"LIMIT takes a non-negative integer, got {token.text!r}",
                    column=token.position,
                )
            limit = int(token.text)
        return SelectStatement(
            columns=columns,
            table=table,
            joins=tuple(joins),
            where=where,
            limit=limit,
            group_by=group_by,
        )

    def _table_ref(self) -> Any:
        """A table name, or a parenthesized derived table ``(SELECT ...)``."""
        if self._match_op("("):
            statement = self._select()
            self._expect("OP", ")")
            return statement
        return self._expect("IDENT").text

    def _projection(self) -> tuple[ColumnRef, ...] | None:
        if self._match_op("*"):
            return None
        columns = [self._projection_item()]
        while self._match_op(","):
            columns.append(self._projection_item())
        return tuple(columns)

    def _projection_item(self) -> ColumnRef | AggregateRef:
        token = self._peek()
        following = self._tokens[min(self._index + 1, len(self._tokens) - 1)]
        if (
            token.kind == "IDENT"
            and token.text.upper() in AGGREGATE_FUNCTIONS
            and following.kind == "OP"
            and following.text == "("
        ):
            return self._aggregate_item()
        column = self._column()
        if self._match_keyword("AS"):
            alias = self._expect("IDENT").text
            return ColumnRef(name=column.name, table=column.table, alias=alias)
        return column

    def _aggregate_item(self) -> AggregateRef:
        func = self._expect("IDENT").text.upper()
        self._expect("OP", "(")
        column: ColumnRef | None = None
        if self._match_op("*"):
            if func != "COUNT":
                raise ParseError(
                    f"{func}(*) is not valid; only COUNT takes '*'",
                    column=self._peek().position,
                )
        else:
            column = self._column()
        self._expect("OP", ")")
        alias = None
        if self._match_keyword("AS"):
            alias = self._expect("IDENT").text
        return AggregateRef(func=func, column=column, alias=alias)

    def _column(self) -> ColumnRef:
        first = self._expect("IDENT").text
        if self._match_op("."):
            second = self._expect("IDENT").text
            return ColumnRef(name=second, table=first)
        return ColumnRef(name=first)

    def _expression(self) -> Any:
        left = self._term()
        operands = [left]
        while self._match_keyword("OR"):
            operands.append(self._term())
        if len(operands) == 1:
            return left
        return BooleanExpr(op="OR", operands=tuple(operands))

    def _term(self) -> Any:
        left = self._factor()
        operands = [left]
        while self._match_keyword("AND"):
            operands.append(self._factor())
        if len(operands) == 1:
            return left
        return BooleanExpr(op="AND", operands=tuple(operands))

    def _factor(self) -> Any:
        if self._match_keyword("NOT"):
            return BooleanExpr(op="NOT", operands=(self._factor(),))
        if self._match_op("("):
            inner = self._expression()
            self._expect("OP", ")")
            return inner
        return self._comparison()

    def _comparison(self) -> Comparison | InPredicate:
        left = self._operand()
        if self._match_keyword("IN"):
            self._expect("OP", "(")
            items: list[Literal] = []
            if not (self._peek().kind == "OP" and self._peek().text == ")"):
                items.append(self._literal())
                while self._match_op(","):
                    items.append(self._literal())
            self._expect("OP", ")")
            return InPredicate(operand=left, items=tuple(items))
        token = self._advance()
        if token.kind != "OP" or token.text not in ("=", "<>", "!=", "<", "<=", ">", ">="):
            raise ParseError(
                f"expected comparison operator, got {token.text!r}", column=token.position
            )
        op = "<>" if token.text == "!=" else token.text
        right = self._operand()
        return Comparison(op=op, left=left, right=right)

    def _literal(self) -> Literal:
        operand = self._operand()
        if not isinstance(operand, Literal):
            raise ParseError(
                f"IN list items must be literals, got {operand!r}",
                column=self._peek().position,
            )
        return operand

    def _operand(self) -> ColumnRef | Literal:
        token = self._peek()
        if token.kind == "IDENT":
            return self._column()
        token = self._advance()
        if token.kind == "NUMBER":
            text = token.text
            return Literal(float(text) if "." in text else int(text))
        if token.kind == "STRING":
            return Literal(token.text)
        if token.is_keyword("TRUE"):
            return Literal(True)
        if token.is_keyword("FALSE"):
            return Literal(False)
        if token.is_keyword("NULL"):
            return Literal(None)
        raise ParseError(f"expected operand, got {token.text!r}", column=token.position)

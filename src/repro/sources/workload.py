"""Synthetic workload generators.

Two families of data:

* **Persons** -- the running example of the paper (``Person`` with ``name`` and
  ``salary``, plus ``Student`` subtypes, ``PersonPrime`` renamed variants and
  ``PersonTwo`` with split salary fields);
* **Water quality** -- the paper's motivating application: many geographically
  distributed sources holding measurements *of the same type* taken at the
  physical site of each database.

All generators are seeded and deterministic so that experiments are
repeatable and property tests can shrink.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.sources.network import AvailabilityModel, NetworkProfile
from repro.sources.relational_engine import RelationalEngine
from repro.sources.server import SimulatedServer
from repro.sources.table import TableSchema

_FIRST_NAMES = [
    "Mary", "Sam", "Anthony", "Louiqa", "Patrick", "Olga", "Nicolas", "Daniela",
    "Eric", "Catherine", "Yannis", "Peter", "Victor", "Alexandre", "Sophie",
    "Jean", "Robert", "Claire", "Marc", "Julie",
]
_SITES = [
    "Seine", "Loire", "Rhone", "Garonne", "Marne", "Oise", "Somme", "Moselle",
    "Charente", "Dordogne", "Allier", "Cher",
]
_PARAMETERS = ["ph", "nitrates", "turbidity", "oxygen", "temperature", "lead"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters shared by the source-building helpers."""

    sources: int = 4
    rows_per_source: int = 100
    seed: int = 7
    base_latency: float = 0.0
    per_row_latency: float = 0.0
    failure_probability: float = 0.0
    real_sleep: bool = False


def generate_person_rows(count: int, seed: int = 0, id_offset: int = 0) -> list[dict[str, Any]]:
    """Generate ``count`` person rows with ``id``, ``name`` and ``salary``."""
    rng = random.Random(seed)
    rows = []
    for index in range(count):
        rows.append(
            {
                "id": id_offset + index,
                "name": rng.choice(_FIRST_NAMES) + f"_{id_offset + index}",
                "salary": rng.randint(10, 500),
            }
        )
    return rows


def generate_student_rows(count: int, seed: int = 0, id_offset: int = 0) -> list[dict[str, Any]]:
    """Generate student rows: person fields plus a ``university``."""
    rng = random.Random(seed)
    rows = generate_person_rows(count, seed=seed, id_offset=id_offset)
    for row in rows:
        row["university"] = rng.choice(["UMD", "Paris VI", "Stanford", "INRIA"])
    return rows


def generate_water_quality_rows(
    count: int, site: str | None = None, seed: int = 0
) -> list[dict[str, Any]]:
    """Generate water-quality measurement rows for one site.

    Every source has the *same* row type -- ``site``, ``day``, ``parameter``,
    ``value`` -- which is precisely the property the paper exploits: adding a
    new monitoring station is just one more extent of the same mediator type.
    """
    rng = random.Random(seed)
    site = site or rng.choice(_SITES)
    rows = []
    for index in range(count):
        parameter = rng.choice(_PARAMETERS)
        rows.append(
            {
                "site": site,
                "day": index % 365,
                "parameter": parameter,
                "value": round(rng.uniform(0.0, 14.0 if parameter == "ph" else 100.0), 3),
            }
        )
    return rows


def _server(name: str, engine: RelationalEngine, config: WorkloadConfig, index: int) -> SimulatedServer:
    return SimulatedServer(
        name=name,
        store=engine,
        network=NetworkProfile(
            base_latency=config.base_latency,
            per_row_latency=config.per_row_latency,
            seed=config.seed + index,
        ),
        availability=AvailabilityModel(
            failure_probability=config.failure_probability, seed=config.seed + index
        ),
        real_sleep=config.real_sleep,
    )


def build_person_sources(config: WorkloadConfig) -> list[SimulatedServer]:
    """Build ``config.sources`` relational servers, each with one ``person<i>`` table."""
    servers = []
    for index in range(config.sources):
        engine = RelationalEngine(name=f"persondb{index}")
        engine.create_table(
            f"person{index}",
            schema=TableSchema.of(("id", int), ("name", str), ("salary", int)),
            rows=generate_person_rows(
                config.rows_per_source,
                seed=config.seed + index,
                id_offset=index * config.rows_per_source,
            ),
        )
        servers.append(_server(f"person-host-{index}", engine, config, index))
    return servers


def build_water_quality_sources(config: WorkloadConfig) -> list[SimulatedServer]:
    """Build ``config.sources`` relational servers of identical measurement type."""
    servers = []
    for index in range(config.sources):
        site = _SITES[index % len(_SITES)] + (f"_{index // len(_SITES)}" if index >= len(_SITES) else "")
        engine = RelationalEngine(name=f"waterdb{index}")
        engine.create_table(
            f"measurements{index}",
            schema=TableSchema.of(("site", str), ("day", int), ("parameter", str), ("value", float)),
            rows=generate_water_quality_rows(config.rows_per_source, site=site, seed=config.seed + index),
        )
        servers.append(_server(f"water-host-{index}", engine, config, index))
    return servers

"""A key-value data source: the least capable kind of server.

The paper stresses that wrappers must handle a "mismatch in querying power of
each server".  This store can only enumerate its collections and return every
record of one collection (``get``); it cannot filter, project or join.  Its
wrapper therefore advertises the minimal capability grammar and the mediator
must do all other work itself.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.errors import QueryExecutionError, SchemaError


class KeyValueStore:
    """Named collections of ``key -> record`` entries."""

    def __init__(self, name: str = "kvstore"):
        self.name = name
        self._collections: dict[str, dict[Any, dict[str, Any]]] = {}

    def create_collection(self, name: str) -> None:
        """Create an empty collection; duplicates are an error."""
        if name in self._collections:
            raise SchemaError(f"collection {name!r} already exists in {self.name!r}")
        self._collections[name] = {}

    def put(self, collection: str, key: Any, record: Mapping[str, Any]) -> None:
        """Insert or replace a record under ``key``."""
        self._require(collection)[key] = dict(record)

    def put_many(self, collection: str, records: Iterable[tuple[Any, Mapping[str, Any]]]) -> int:
        """Insert many ``(key, record)`` pairs; return how many were stored."""
        count = 0
        for key, record in records:
            self.put(collection, key, record)
            count += 1
        return count

    def get(self, collection: str, key: Any) -> dict[str, Any]:
        """Return the record stored under ``key``."""
        records = self._require(collection)
        if key not in records:
            raise QueryExecutionError(f"no record {key!r} in collection {collection!r}")
        return dict(records[key])

    def scan(self, collection: str) -> list[dict[str, Any]]:
        """Return every record of ``collection`` (the only bulk operation)."""
        return [dict(record) for record in self._require(collection).values()]

    def collection_names(self) -> list[str]:
        """Names of every collection."""
        return list(self._collections)

    def cardinality(self, collection: str) -> int:
        """Number of records in ``collection``."""
        return len(self._require(collection))

    def _require(self, collection: str) -> dict[Any, dict[str, Any]]:
        try:
            return self._collections[collection]
        except KeyError:
            raise QueryExecutionError(
                f"store {self.name!r} has no collection {collection!r}"
            ) from None

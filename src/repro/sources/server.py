"""The simulated data-source server.

A :class:`SimulatedServer` stands between a wrapper and the store it exposes:
every call goes through the availability model (possibly raising
:class:`~repro.errors.UnavailableSourceError`) and through the latency model
(optionally really sleeping, always accounting the simulated time).  Wrappers
never bypass it, so the mediator sees remote sources exactly as the paper's
mediator does: as things that may be slow or silent.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import UnavailableSourceError
from repro.runtime import cancellation
from repro.sources.network import AvailabilityModel, NetworkProfile


@dataclass
class ServerStatistics:
    """Counters accumulated by one simulated server."""

    requests: int = 0
    failures: int = 0
    rows_returned: int = 0
    #: rows a resume token let the source skip instead of re-shipping them
    #: (they never cross the simulated wire and are never charged latency).
    rows_skipped: int = 0
    simulated_seconds: float = 0.0


@dataclass
class SimulatedServer:
    """One remote host: a store plus network and availability behaviour."""

    name: str
    store: Any
    network: NetworkProfile = field(default_factory=NetworkProfile.instant)
    availability: AvailabilityModel = field(default_factory=AvailabilityModel)
    real_sleep: bool = False
    statistics: ServerStatistics = field(default_factory=ServerStatistics)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    # -- control -----------------------------------------------------------------
    def take_down(self) -> None:
        """Make the server unavailable (hard switch)."""
        self.availability.set_available(False)

    def bring_up(self) -> None:
        """Make the server available again."""
        self.availability.set_available(True)

    def is_up(self) -> bool:
        """Return True when the hard availability switch is on."""
        return self.availability.available

    # -- the request path -------------------------------------------------------------
    def call(self, operation: Callable[[Any], Any], resume_from: int | None = None) -> Any:
        """Run ``operation(store)`` as one remote request.

        Applies the availability check first (an unavailable source never does
        work), runs the operation, then charges the latency of shipping the
        result back.  Returns the operation's result unchanged.

        ``resume_from`` is the server's resume capability: the first
        ``resume_from`` rows of the result are skipped *source-side* (a cursor
        seek), so they are neither shipped nor charged -- only the remaining
        rows cross the simulated wire.  This is what makes a resumed exec
        call cost only the rows still owed, instead of a full replay.

        A kill armed via :meth:`AvailabilityModel.kill_after` lets the call
        succeed but returns a lazy stream that raises after the armed number
        of rows -- the mid-stream death the streaming engine must recover
        from.  Latency is charged only for the rows delivered before the
        death.

        The latency sleep checks the caller's cooperative-cancellation event
        (see :mod:`repro.runtime.cancellation`): when the mediator writes the
        call off -- deadline expired, query aborted, ``limit`` satisfied --
        the sleep ends immediately and the call raises
        :class:`UnavailableSourceError` instead of holding its worker thread
        for the full simulated latency.
        """
        if cancellation.cancelled():
            raise UnavailableSourceError(self.name, f"{self.name!r}: call cancelled by mediator")
        with self._lock:
            self.statistics.requests += 1
            try:
                self.availability.check(self.name)
            except Exception:
                self.statistics.failures += 1
                raise
        result = operation(self.store)
        if resume_from:
            if isinstance(result, (list, tuple)):
                skipped = min(resume_from, len(result))
                result = list(result)[resume_from:]
            else:
                # Lazy cursor: seek by consuming quietly; the skipped rows are
                # produced at the source but never shipped.
                skipped = resume_from
                result = itertools.islice(result, resume_from, None)
            with self._lock:
                self.statistics.rows_skipped += skipped
        sized_count = len(result) if isinstance(result, (list, tuple)) else None
        row_count = sized_count or 0
        with self._lock:
            kill = self.availability.take_kill()
        if kill is not None:
            kill_rows, kill_exc = kill
            result = self._die_after(result, kill_rows, kill_exc)
            # Charge only the rows that cross the wire before the death.  A
            # lazy cursor's length is unknown without draining it, so the
            # kill point is the best estimate; a cursor that ends sooner is
            # (slightly) overcharged.
            row_count = min(sized_count, kill_rows) if sized_count is not None else kill_rows
        delay = self.network.delay_for(row_count)
        with self._lock:
            self.statistics.rows_returned += row_count
            self.statistics.simulated_seconds += delay
        if self.real_sleep and delay > 0:
            if cancellation.sleep(delay):
                raise UnavailableSourceError(
                    self.name, f"{self.name!r}: call cancelled by mediator"
                )
        return result

    def _die_after(
        self, rows: Any, count: int, exception: BaseException | type | None
    ) -> Iterator[Any]:
        """Wrap ``rows`` into a stream that raises after ``count`` rows."""

        def stream() -> Iterator[Any]:
            delivered = 0
            for row in iter(rows):
                if delivered >= count:
                    if isinstance(exception, BaseException):
                        raise exception
                    if exception is not None:
                        raise exception(
                            f"{self.name!r}: connection lost after {count} rows"
                        )
                    raise UnavailableSourceError(
                        self.name, f"{self.name!r}: connection lost after {count} rows"
                    )
                delivered += 1
                yield row

        return stream()

    def reset_statistics(self) -> None:
        """Zero the accumulated counters."""
        with self._lock:
            self.statistics = ServerStatistics()

"""The simulated data-source server.

A :class:`SimulatedServer` stands between a wrapper and the store it exposes:
every call goes through the availability model (possibly raising
:class:`~repro.errors.UnavailableSourceError`) and through the latency model
(optionally really sleeping, always accounting the simulated time).  Wrappers
never bypass it, so the mediator sees remote sources exactly as the paper's
mediator does: as things that may be slow or silent.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import UnavailableSourceError
from repro.runtime import cancellation
from repro.sources.network import AvailabilityModel, NetworkProfile


@dataclass
class ServerStatistics:
    """Counters accumulated by one simulated server."""

    requests: int = 0
    failures: int = 0
    rows_returned: int = 0
    simulated_seconds: float = 0.0


@dataclass
class SimulatedServer:
    """One remote host: a store plus network and availability behaviour."""

    name: str
    store: Any
    network: NetworkProfile = field(default_factory=NetworkProfile.instant)
    availability: AvailabilityModel = field(default_factory=AvailabilityModel)
    real_sleep: bool = False
    statistics: ServerStatistics = field(default_factory=ServerStatistics)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    # -- control -----------------------------------------------------------------
    def take_down(self) -> None:
        """Make the server unavailable (hard switch)."""
        self.availability.set_available(False)

    def bring_up(self) -> None:
        """Make the server available again."""
        self.availability.set_available(True)

    def is_up(self) -> bool:
        """Return True when the hard availability switch is on."""
        return self.availability.available

    # -- the request path -------------------------------------------------------------
    def call(self, operation: Callable[[Any], Any]) -> Any:
        """Run ``operation(store)`` as one remote request.

        Applies the availability check first (an unavailable source never does
        work), runs the operation, then charges the latency of shipping the
        result back.  Returns the operation's result unchanged.

        The latency sleep checks the caller's cooperative-cancellation event
        (see :mod:`repro.runtime.cancellation`): when the mediator writes the
        call off -- deadline expired, query aborted, ``limit`` satisfied --
        the sleep ends immediately and the call raises
        :class:`UnavailableSourceError` instead of holding its worker thread
        for the full simulated latency.
        """
        if cancellation.cancelled():
            raise UnavailableSourceError(self.name, f"{self.name!r}: call cancelled by mediator")
        with self._lock:
            self.statistics.requests += 1
            try:
                self.availability.check(self.name)
            except Exception:
                self.statistics.failures += 1
                raise
        result = operation(self.store)
        row_count = len(result) if isinstance(result, (list, tuple)) else 0
        delay = self.network.delay_for(row_count)
        with self._lock:
            self.statistics.rows_returned += row_count
            self.statistics.simulated_seconds += delay
        if self.real_sleep and delay > 0:
            if cancellation.sleep(delay):
                raise UnavailableSourceError(
                    self.name, f"{self.name!r}: call cancelled by mediator"
                )
        return result

    def reset_statistics(self) -> None:
        """Zero the accumulated counters."""
        with self._lock:
            self.statistics = ServerStatistics()

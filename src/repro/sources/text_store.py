"""A WAIS-like keyword-search data source.

The paper lists WAIS servers among the information servers DISCO should
federate.  This store holds documents with a few structured fields plus a
body, and supports keyword search with a tiny inverted index.  Its wrapper
maps the mediator's equality/containment selections onto keyword queries and
returns the structured fields as rows.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import QueryExecutionError, SchemaError

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> list[str]:
    """Lower-case word tokens of ``text``."""
    return _TOKEN_RE.findall(text.lower())


@dataclass
class Document:
    """One document: an identifier, structured fields and a free-text body."""

    doc_id: str
    body: str
    fields: dict[str, Any] = field(default_factory=dict)

    def as_row(self) -> dict[str, Any]:
        """Flatten the document into a row the wrapper can hand to the mediator."""
        row = {"doc_id": self.doc_id, "body": self.body}
        row.update(self.fields)
        return row


class TextStore:
    """Named collections of documents with keyword search."""

    def __init__(self, name: str = "waisstore"):
        self.name = name
        self._collections: dict[str, dict[str, Document]] = {}
        self._index: dict[str, dict[str, set[str]]] = {}

    def create_collection(self, name: str) -> None:
        """Create an empty document collection."""
        if name in self._collections:
            raise SchemaError(f"collection {name!r} already exists in {self.name!r}")
        self._collections[name] = {}
        self._index[name] = {}

    def add_document(self, collection: str, document: Document) -> None:
        """Add a document and index its body and string fields."""
        documents = self._require(collection)
        documents[document.doc_id] = document
        index = self._index[collection]
        searchable = [document.body] + [
            value for value in document.fields.values() if isinstance(value, str)
        ]
        for token in set(tokenize(" ".join(searchable))):
            index.setdefault(token, set()).add(document.doc_id)

    def add_documents(self, collection: str, documents: Iterable[Document]) -> int:
        """Add many documents; return how many were added."""
        count = 0
        for document in documents:
            self.add_document(collection, document)
            count += 1
        return count

    def scan(self, collection: str) -> list[dict[str, Any]]:
        """Return every document of ``collection`` as rows."""
        return [doc.as_row() for doc in self._require(collection).values()]

    def search(self, collection: str, keywords: str) -> list[dict[str, Any]]:
        """Return rows of documents containing *all* keywords."""
        documents = self._require(collection)
        tokens = tokenize(keywords)
        if not tokens:
            return self.scan(collection)
        index = self._index[collection]
        matching: set[str] | None = None
        for token in tokens:
            ids = index.get(token, set())
            matching = ids if matching is None else (matching & ids)
        return [documents[doc_id].as_row() for doc_id in sorted(matching or set())]

    def collection_names(self) -> list[str]:
        """Names of every collection."""
        return list(self._collections)

    def cardinality(self, collection: str) -> int:
        """Number of documents in ``collection``."""
        return len(self._require(collection))

    def _require(self, collection: str) -> dict[str, Document]:
        try:
            return self._collections[collection]
        except KeyError:
            raise QueryExecutionError(
                f"store {self.name!r} has no collection {collection!r}"
            ) from None

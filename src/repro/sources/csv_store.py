"""A file-backed CSV data source.

Stands in for the paper's "file systems" class of information servers: the
data lives in plain CSV files on disk and the source can only deliver whole
files (optionally with a column projection applied while reading).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.errors import QueryExecutionError, SchemaError


def _coerce(value: str) -> Any:
    """Best-effort conversion of CSV text to int/float/bool, else keep the string."""
    lowered = value.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value


class CsvStore:
    """A directory of CSV files, each file being one collection."""

    def __init__(self, directory: str | Path, name: str = "csvstore"):
        self.name = name
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, collection: str) -> Path:
        return self.directory / f"{collection}.csv"

    def write_collection(
        self, collection: str, rows: Iterable[Mapping[str, Any]], overwrite: bool = False
    ) -> int:
        """Write ``rows`` to ``<collection>.csv``; return the number of rows written."""
        path = self._path(collection)
        if path.exists() and not overwrite:
            raise SchemaError(f"collection {collection!r} already exists in {self.name!r}")
        rows = [dict(row) for row in rows]
        if not rows:
            path.write_text("")
            return 0
        fieldnames = list(rows[0])
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            writer.writeheader()
            writer.writerows(rows)
        return len(rows)

    def scan(self, collection: str, columns: list[str] | None = None) -> list[dict[str, Any]]:
        """Read every row of ``collection``; optionally keep only ``columns``."""
        path = self._path(collection)
        if not path.exists():
            raise QueryExecutionError(f"store {self.name!r} has no collection {collection!r}")
        if path.stat().st_size == 0:
            return []
        with path.open(newline="") as handle:
            reader = csv.DictReader(handle)
            rows = [{key: _coerce(value) for key, value in row.items()} for row in reader]
        if columns is not None:
            missing = [c for c in columns if rows and c not in rows[0]]
            if missing:
                raise QueryExecutionError(f"unknown column(s) {missing!r} in {collection!r}")
            rows = [{column: row[column] for column in columns} for row in rows]
        return rows

    def collection_names(self) -> list[str]:
        """Names of every CSV collection in the directory."""
        return sorted(path.stem for path in self.directory.glob("*.csv"))

    def cardinality(self, collection: str) -> int:
        """Number of rows in ``collection``."""
        return len(self.scan(collection))

"""A small relational engine over in-memory tables.

This is the execution substrate of the "relational database" data sources in
the reproduction.  It exposes the handful of operations a wrapper may push
down -- scan, selection, projection, join and union -- plus a tiny statistics
interface.  Wrappers with restricted capability grammars simply refuse to call
the richer operations even though the engine supports them, which is exactly
the querying-power mismatch the paper's wrapper interface is designed around.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from repro.errors import QueryExecutionError, SchemaError
from repro.sources.table import Table, TableSchema

Row = dict[str, Any]
Predicate = Callable[[Mapping[str, Any]], bool]


class RelationalEngine:
    """A named collection of tables with basic relational operations."""

    def __init__(self, name: str = "reldb"):
        self.name = name
        self._tables: dict[str, Table] = {}

    # -- catalog ----------------------------------------------------------------
    def create_table(
        self,
        name: str,
        schema: TableSchema | None = None,
        rows: Iterable[Mapping[str, Any]] | None = None,
    ) -> Table:
        """Create (and register) a table; duplicate names are an error."""
        if name in self._tables:
            raise SchemaError(f"table {name!r} already exists in {self.name!r}")
        table = Table(name, schema=schema, rows=rows)
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table from the engine."""
        if name not in self._tables:
            raise SchemaError(f"unknown table {name!r} in {self.name!r}")
        del self._tables[name]

    def table(self, name: str) -> Table:
        """Return the table called ``name`` or raise."""
        try:
            return self._tables[name]
        except KeyError:
            raise QueryExecutionError(
                f"engine {self.name!r} has no table {name!r}"
            ) from None

    def has_table(self, name: str) -> bool:
        """Return True when a table called ``name`` exists."""
        return name in self._tables

    def table_names(self) -> list[str]:
        """Return the names of every table."""
        return list(self._tables)

    # -- relational operations ------------------------------------------------------
    def scan(self, table_name: str) -> list[Row]:
        """Full scan of a table (the ``get`` operator at the source)."""
        return list(self.table(table_name).rows())

    def select(self, rows: Iterable[Row], predicate: Predicate) -> list[Row]:
        """Keep rows satisfying ``predicate``."""
        return [row for row in rows if predicate(row)]

    def project(self, rows: Iterable[Row], columns: list[str]) -> list[Row]:
        """Keep only ``columns`` of each row; unknown columns are an error."""
        result: list[Row] = []
        for row in rows:
            missing = [column for column in columns if column not in row]
            if missing:
                raise QueryExecutionError(
                    f"projection refers to unknown column(s) {missing!r}"
                )
            result.append({column: row[column] for column in columns})
        return result

    def join(
        self,
        left: Iterable[Row],
        right: Iterable[Row],
        on: str | tuple[str, str],
    ) -> list[Row]:
        """Equi-join two row collections on a shared column (hash join).

        ``on`` is either a single column present on both sides (the paper's
        ``join(..., dept)``) or a ``(left_column, right_column)`` pair.  When
        both sides define a non-join column with the same name the left value
        wins, which mirrors the struct-merging behaviour of the mediator's own
        join operator.
        """
        if isinstance(on, tuple):
            left_key, right_key = on
        else:
            left_key = right_key = on
        buckets: dict[Any, list[Row]] = {}
        for row in right:
            buckets.setdefault(row.get(right_key), []).append(row)
        joined: list[Row] = []
        for row in left:
            for match in buckets.get(row.get(left_key), []):
                merged = dict(match)
                merged.update(row)
                joined.append(merged)
        return joined

    def union(self, left: Iterable[Row], right: Iterable[Row]) -> list[Row]:
        """Bag union of two row collections."""
        return list(left) + list(right)

    # -- statistics ------------------------------------------------------------------
    def cardinality(self, table_name: str) -> int:
        """Number of rows in a table (exported by cooperative wrappers)."""
        return self.table(table_name).cardinality()

    def statistics(self) -> dict[str, int]:
        """Cardinality of every table, keyed by table name."""
        return {name: table.cardinality() for name, table in self._tables.items()}

"""The blocking / all-or-nothing query semantics baseline.

Paper Section 1: "to answer a query involving N databases, all N databases
must be available.  If some database is unavailable, either no answer is
returned, or some partial answer is returned.  The availability of answers in
the system declines as the number of databases rises."

This baseline wraps a DISCO mediator but discards partial answers: a query is
either complete or it fails.  It also provides the analytical model
``p ** n`` used by experiment E2 to show the decline the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mediator import Mediator
from repro.core.result import QueryResult
from repro.errors import UnavailableSourceError


def complete_answer_probability(per_source_availability: float, sources: int) -> float:
    """Probability that a query over ``sources`` independent sources completes."""
    if not 0.0 <= per_source_availability <= 1.0:
        raise ValueError("per_source_availability must be within [0, 1]")
    if sources < 0:
        raise ValueError("sources must be non-negative")
    return per_source_availability ** sources


@dataclass
class BlockingSemantics:
    """All-or-nothing execution on top of a DISCO mediator."""

    mediator: Mediator
    raise_on_unavailable: bool = True

    def query(self, text: str, timeout: float | None = None) -> QueryResult:
        """Run ``text``; an unavailable source means no answer at all."""
        result = self.mediator.query(text, timeout=timeout)
        return self._enforce(text, result)

    def query_stream(self, text: str, timeout: float | None = None) -> QueryResult:
        """Run ``text`` with the streaming engine, still all-or-nothing.

        Blocking semantics cannot deliver rows before knowing every source
        answered, so the stream is drained first -- which is exactly the
        point of the comparison: the DISCO result streams, this one cannot.
        """
        result = self.mediator.query_stream(text, timeout=timeout)
        result.rows()  # drain; failures surface on the result afterwards
        return self._enforce(text, result)

    def _enforce(self, text: str, result: QueryResult) -> QueryResult:
        """Apply the all-or-nothing rule to a settled result."""
        if not result.is_partial:
            return result
        if self.raise_on_unavailable:
            raise UnavailableSourceError(
                ",".join(result.unavailable_sources),
                "blocking semantics: query aborted because "
                f"{len(result.unavailable_sources)} source(s) did not respond",
            )
        return QueryResult(
            query_text=text,
            data=None,
            is_partial=True,
            unavailable_sources=result.unavailable_sources,
            reports=result.reports,
        )

    def answered(self, text: str, timeout: float | None = None) -> bool:
        """True when the query completed, False when any source was unavailable."""
        try:
            result = self.query(text, timeout=timeout)
        except UnavailableSourceError:
            return False
        return not result.is_partial

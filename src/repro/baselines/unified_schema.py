"""A unified-global-schema integration baseline (Pegasus / UniSQL-M style).

The paper's related-work section: "Scalability was not explicitly addressed,
and will pose problems, since the unified schema must be substantially
modified as new sources are integrated."  This module models that process so
experiment E3 can compare DBA effort: every new source must be reconciled
against every virtual class already in the global schema, and the global
population queries (which union all sources of a class) must be rewritten.

The model counts *statements touched* -- the unit the DISCO side also reports
(one extent declaration per new same-type source).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class VirtualClass:
    """One homogenised entity in the global unified schema."""

    name: str
    attributes: tuple[str, ...]
    member_sources: list[str] = field(default_factory=list)
    population_query_version: int = 0


@dataclass
class IntegrationReport:
    """How much work one source integration required."""

    source_name: str
    statements_touched: int
    conflicts_resolved: int
    population_queries_rewritten: int


class UnifiedSchemaIntegrator:
    """Simulates DBA work of integrating sources into one unified schema."""

    def __init__(self):
        self._classes: dict[str, VirtualClass] = {}
        self.reports: list[IntegrationReport] = []

    # -- integration ---------------------------------------------------------------------
    def integrate_source(
        self,
        source_name: str,
        class_name: str,
        attributes: tuple[str, ...],
        conflicting_attributes: int = 0,
    ) -> IntegrationReport:
        """Integrate one source exposing ``class_name`` with ``attributes``.

        Work performed (and counted as touched statements):

        * define or extend the virtual class -- compare against every existing
          virtual class to place it in the generalisation hierarchy (one
          statement per existing class inspected, the conflict analysis of
          UniSQL/M);
        * resolve attribute conflicts (one statement each);
        * rewrite the population query of the class, which unions every member
          source, so its size is proportional to the number of sources already
          in the class;
        * import-type statements for the new source itself.
        """
        inspected = len(self._classes)
        virtual_class = self._classes.get(class_name)
        if virtual_class is None:
            virtual_class = VirtualClass(name=class_name, attributes=attributes)
            self._classes[class_name] = virtual_class
            class_statements = 1 + len(attributes)
        else:
            merged = tuple(dict.fromkeys(virtual_class.attributes + attributes))
            class_statements = len(set(merged) - set(virtual_class.attributes))
            virtual_class.attributes = merged
        virtual_class.member_sources.append(source_name)
        virtual_class.population_query_version += 1
        population_statements = len(virtual_class.member_sources)
        statements = (
            inspected  # generalisation-conflict analysis against existing classes
            + class_statements
            + conflicting_attributes
            + population_statements
            + 1  # the import declaration of the source itself
        )
        report = IntegrationReport(
            source_name=source_name,
            statements_touched=statements,
            conflicts_resolved=conflicting_attributes,
            population_queries_rewritten=1,
        )
        self.reports.append(report)
        return report

    # -- inspection -----------------------------------------------------------------------
    def classes(self) -> list[VirtualClass]:
        """Every virtual class in the unified schema."""
        return list(self._classes.values())

    def total_statements(self) -> int:
        """Total statements touched across every integration so far."""
        return sum(report.statements_touched for report in self.reports)

    def cumulative_statements(self) -> list[int]:
        """Running total of statements touched, one entry per integrated source."""
        totals: list[int] = []
        running = 0
        for report in self.reports:
            running += report.statements_touched
            totals.append(running)
        return totals

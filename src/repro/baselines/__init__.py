"""Baselines the experiments compare DISCO against.

* :mod:`repro.baselines.blocking` -- the conventional query semantics the
  paper argues against: with no replication, a query over N sources returns
  nothing (or blocks) unless *every* source answers;
* :mod:`repro.baselines.unified_schema` -- a Pegasus/UniSQL-style integration
  process where every new source must be reconciled into one global unified
  schema, so integration effort grows with the number of sources already
  integrated;
* :mod:`repro.baselines.no_pushdown` -- a mediator that never pushes work to
  wrappers (every wrapper is treated as get-only), isolating the benefit of
  DISCO's capability-aware push-down.
"""

from repro.baselines.blocking import BlockingSemantics, complete_answer_probability
from repro.baselines.unified_schema import UnifiedSchemaIntegrator
from repro.baselines.no_pushdown import GetOnlyWrapper, make_get_only

__all__ = [
    "BlockingSemantics",
    "complete_answer_probability",
    "UnifiedSchemaIntegrator",
    "GetOnlyWrapper",
    "make_get_only",
]

"""A mediator configuration that never pushes work to data sources.

Wrapping every wrapper in :class:`GetOnlyWrapper` makes its capability
grammar advertise only ``get``, so the optimizer cannot push selections,
projections or joins: every row travels to the mediator and all work happens
there.  Experiment E4 uses this to quantify the benefit of DISCO's
capability-aware push-down.
"""

from __future__ import annotations

from repro.algebra.capabilities import CapabilitySet
from repro.algebra.logical import Get, LogicalOp
from repro.errors import WrapperError
from repro.wrappers.base import Row, Wrapper


class GetOnlyWrapper(Wrapper):
    """Delegate ``get`` to an inner wrapper; refuse everything else."""

    def __init__(self, inner: Wrapper):
        super().__init__(f"{inner.name}-get-only", CapabilitySet.get_only())
        self.inner = inner
        # Stripping capabilities does not change how the source's cursor
        # behaves: mid-stream resume support passes through.
        self.resume_support = inner.resume_support

    def _execute(self, expression: LogicalOp) -> list[Row]:
        if not isinstance(expression, Get):
            raise WrapperError(
                f"{self.name!r} only evaluates get(collection); got {expression.to_text()}"
            )
        return self.inner.submit(expression)

    def _execute_stream(self, expression: LogicalOp):
        """Preserve the inner source's laziness under the streaming engine."""
        if not isinstance(expression, Get):
            raise WrapperError(
                f"{self.name!r} only evaluates get(collection); got {expression.to_text()}"
            )
        return self.inner.submit_stream(expression)

    def _resume_stream(self, expression: LogicalOp, token):
        if not isinstance(expression, Get):
            raise WrapperError(
                f"{self.name!r} only evaluates get(collection); got {expression.to_text()}"
            )
        return self.inner.submit_stream(expression, resume_from=token)

    def source_collections(self) -> list[str]:
        return self.inner.source_collections()

    def source_attributes(self, collection: str) -> list[str]:
        return self.inner.source_attributes(collection)

    def cardinality(self, collection: str) -> int | None:
        return self.inner.cardinality(collection)


def make_get_only(wrapper: Wrapper) -> GetOnlyWrapper:
    """Convenience constructor matching the wrappers' factory style."""
    return GetOnlyWrapper(wrapper)

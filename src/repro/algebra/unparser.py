"""Turning logical expressions back into OQL text.

Partial evaluation (paper Section 4) requires that "the physical expression is
transformed back into a high level query", which is possible "because each
physical operation has a corresponding logical operation, and each logical
operation has a corresponding OQL expression".  This module implements the
logical -> OQL half of that round trip; the physical -> logical half lives in
:mod:`repro.runtime.partial_eval`.
"""

from __future__ import annotations

import itertools

from repro.algebra.expressions import Const, Expr, Path, Var
from repro.algebra.logical import (
    Apply,
    BagLiteral,
    BindJoin,
    Distinct,
    Flatten,
    Get,
    GroupBy,
    Join,
    Limit,
    LogicalOp,
    Project,
    Rename,
    Select,
    Submit,
    Union,
    walk,
)
from repro.errors import QueryExecutionError


def _render_value(value) -> str:
    """Render one literal value the way OQL writes it.

    Structs and nested collections are rendered with OQL constructors so that
    a partial answer containing data rows remains parseable when re-submitted
    as a query.
    """
    from collections.abc import Mapping

    from repro.datamodel.values import Bag, Struct

    if isinstance(value, (Struct, Mapping)):
        inner = ", ".join(f"{name}: {_render_value(field)}" for name, field in dict(value).items())
        return f"struct({inner})"
    if isinstance(value, (Bag, list, tuple)):
        return "bag(" + ", ".join(_render_value(item) for item in value) + ")"
    return Const(value).to_oql()


class _Unparser:
    """Stateful helper allocating fresh variable names while unparsing."""

    def __init__(self) -> None:
        self._counter = itertools.count()

    def fresh_variable(self, preferred: str | None = None) -> str:
        """Return ``preferred`` or a fresh ``xN`` variable name."""
        if preferred:
            return preferred
        return f"x{next(self._counter)}"

    # -- collection-level rendering -----------------------------------------------------
    def unparse(self, node: LogicalOp) -> str:
        """Render ``node`` as an OQL expression producing a collection."""
        if isinstance(node, BagLiteral):
            return "Bag(" + ", ".join(_render_value(value) for value in node.values) + ")"
        if isinstance(node, Union):
            return "union(" + ", ".join(self.unparse(child) for child in node.inputs) + ")"
        if isinstance(node, Flatten):
            return f"flatten({self.unparse(node.child)})"
        if isinstance(node, Limit):
            if isinstance(
                node.child,
                (Get, Submit, Project, Rename, Select, Apply, Join, Distinct, GroupBy),
            ):
                # OQL's limit clause applies last, after grouping, so a limit
                # over a groupby attaches to the grouped block directly.
                return self.unparse(node.child) + f" limit {node.count}"
            # A limited union/flatten/literal becomes a select block so the
            # "limit" clause has a select to attach to.
            variable = self.fresh_variable()
            return (
                f"select {variable} from {variable} in "
                f"({self.unparse(node.child)}) limit {node.count}"
            )
        if isinstance(node, Distinct):
            child = node.child
            while isinstance(child, Distinct):  # distinct is idempotent
                child = child.child
            inner = self.unparse(child)
            if inner.startswith("select distinct "):
                return inner
            if inner.startswith("select "):
                return "select distinct " + inner[len("select "):]
            # distinct over a union/flatten/literal becomes its own block.
            variable = self.fresh_variable()
            return f"select distinct {variable} from {variable} in ({inner})"
        if isinstance(node, GroupBy):
            # A grouped block of its own: the select item is the output
            # struct (keys plus aggregate calls), and the grouping keys
            # repeat in the ``group by`` clause.  A keyless groupby -- a
            # scalar aggregate -- omits the clause: the aggregate calls in
            # the item are what makes the re-parsed query aggregate.
            variable = node.variable
            fields = [f"{name}: {expr.to_oql()}" for name, expr in node.keys]
            fields.extend(
                f"{name}: {func}({arg.to_oql()})"
                for name, func, arg in node.aggregates
            )
            text = (
                f"select struct({', '.join(fields)}) "
                f"from {variable} in {self._inline_source(node.child)}"
            )
            if node.keys:
                text += " group by " + ", ".join(
                    f"{name}: {expr.to_oql()}" for name, expr in node.keys
                )
            return text
        if isinstance(node, (Get, Submit, Project, Rename, Select, Apply, Join, BindJoin)):
            return self._render_select(node)
        raise QueryExecutionError(f"cannot render {node.to_text()} as OQL")

    # -- select-from-where rendering -------------------------------------------------------
    def _render_select(self, node: LogicalOp) -> str:
        select_item, sources, predicates, limit = self._decompose(node)
        if not sources:
            raise QueryExecutionError(f"no collection under {node.to_text()}")
        from_parts = ", ".join(f"{var} in {collection}" for var, collection in sources)
        text = f"select {select_item} from {from_parts}"
        if predicates:
            text += " where " + " and ".join(predicates)
        if limit is not None:
            text += f" limit {limit}"
        return text

    def _decompose(
        self, node: LogicalOp
    ) -> tuple[str, list[tuple[str, str]], list[str], int | None]:
        """Break a single-block plan into (item, from sources, predicates, limit).

        The limit is carried separately so that a ``limit`` in the middle of
        a project/apply spine (the shape the fetch-size pushdown produces)
        renders as the block's ``limit`` clause instead of forcing a nested
        block -- nesting would re-apply single-attribute projections to the
        already-projected values.  Project/apply are one-to-one, so a limit
        below them equals the block-level limit OQL applies last; a select
        above a limit changes the semantics and nests instead.
        """
        if isinstance(node, Submit):
            # submit is transparent in OQL: its argument already names the
            # extent in the mediator name space.
            return self._decompose(node.expression)
        if isinstance(node, Get):
            variable = self.fresh_variable()
            return variable, [(variable, node.collection)], [], None
        if isinstance(node, Limit):
            item, sources, predicates, limit = self._decompose(node.child)
            limit = node.count if limit is None else min(limit, node.count)
            return item, sources, predicates, limit
        if isinstance(node, Project):
            item, sources, predicates, limit = self._decompose(node.child)
            variable = sources[0][0] if sources else item
            if len(node.attributes) == 1:
                item = f"{variable}.{node.attributes[0]}"
            else:
                fields = ", ".join(f"{attr}: {variable}.{attr}" for attr in node.attributes)
                item = f"struct({fields})"
            return item, sources, predicates, limit
        if isinstance(node, Rename):
            # A project-with-aliases: a struct item that reads the old names
            # and writes the new ones.  Rename is one-to-one per element, so
            # a limit below it commutes exactly like it does for project.
            _item, sources, predicates, limit = self._decompose(node.child)
            if len(sources) != 1:
                # A rename above a join/bindjoin reads attributes off the
                # *merged* element; without schema knowledge the attributes
                # cannot be attributed to one block variable, so there is no
                # faithful OQL rendering -- fail loudly rather than emit a
                # query that reads every attribute off the first variable.
                raise QueryExecutionError(
                    f"cannot render {node.to_text()} as OQL: rename over a "
                    "multi-source block has no faithful select-from rendering"
                )
            variable = sources[0][0]
            fields = ", ".join(f"{new}: {variable}.{old}" for old, new in node.pairs)
            return f"struct({fields})", sources, predicates, limit
        if isinstance(node, Select):
            child_item, sources, predicates, limit = self._decompose(node.child)
            if limit is not None:
                # The limit truncates *before* this predicate filters; OQL's
                # limit clause applies last, so the limited child must become
                # its own block.
                variable = self.fresh_variable()
                predicate_text = self._rebind_expression(
                    node.predicate, node.variable, variable
                )
                return (
                    variable,
                    [(variable, self._inline_source(node.child))],
                    [predicate_text],
                    None,
                )
            variable = sources[0][0] if sources else node.variable
            predicate_text = self._rebind_expression(node.predicate, node.variable, variable)
            return child_item, sources, predicates + [predicate_text], limit
        if isinstance(node, Apply):
            item, sources, predicates, limit = self._decompose(node.child)
            variable = sources[0][0] if sources else node.variable
            item = self._rebind_expression(node.expression, node.variable, variable)
            return item, sources, predicates, limit
        if isinstance(node, Join):
            left_sources, left_predicates = self._join_operand(node.left)
            right_sources, right_predicates = self._join_operand(node.right)
            left_attr, right_attr = node.join_attributes()
            left_var = left_sources[0][0]
            right_var = right_sources[0][0]
            item = f"struct(left: {left_var}, right: {right_var})"
            predicates = left_predicates + right_predicates + [
                f"{left_var}.{left_attr} = {right_var}.{right_attr}"
            ]
            return item, left_sources + right_sources, predicates, None
        if isinstance(node, BindJoin):
            # A multi-variable from clause: each side becomes an inline
            # collection ranged over by the bindjoin's own variable, so the
            # condition (and any enclosing apply item) keeps its references.
            sources = [
                (node.left_variable, self._inline_source(node.left)),
                (node.right_variable, self._inline_source(node.right)),
            ]
            predicates = [] if node.condition is None else [node.condition.to_oql()]
            item = (
                f"struct({node.left_variable}: {node.left_variable}, "
                f"{node.right_variable}: {node.right_variable})"
            )
            return item, sources, predicates, None
        if isinstance(node, (Union, Flatten, BagLiteral, Distinct, GroupBy)):
            # A nested collection expression becomes an inline from-source.
            variable = self.fresh_variable()
            return variable, [(variable, self._inline_source(node))], [], None
        raise QueryExecutionError(f"cannot decompose {node.to_text()}")

    def _join_operand(self, side: LogicalOp) -> tuple[list[tuple[str, str]], list[str]]:
        """One join operand's sources and predicates; a limited side becomes
        its own block (the limit truncates before joining, so it cannot merge
        into the join's block).  A side containing a rename also becomes its
        own block: the aliases change the element's attribute names before the
        join sees them, which a merged select-from-where cannot express."""
        _item, sources, predicates, limit = self._decompose(side)
        if limit is None and not any(isinstance(node, Rename) for node in walk(side)):
            return sources, predicates
        variable = self.fresh_variable()
        return [(variable, self._inline_source(side))], []

    def _inline_source(self, node: LogicalOp) -> str:
        """Render ``node`` as a parenthesized inline from-clause collection."""
        if isinstance(node, Get):
            return node.collection
        return f"({self.unparse(node)})"

    def _rebind_expression(self, expression: Expr, old: str, new: str) -> str:
        """Render ``expression`` with variable ``old`` renamed to ``new``."""
        if old == new:
            return expression.to_oql()
        return _substitute_variable(expression, old, new).to_oql()


def _substitute_variable(expression: Expr, old: str, new: str) -> Expr:
    """Return ``expression`` with every reference to ``old`` replaced by ``new``."""
    from repro.algebra.expressions import (
        Arithmetic,
        BagExpr,
        BooleanExpr,
        Comparison,
        FunctionCall,
        InList,
        StructExpr,
    )

    if isinstance(expression, Var):
        return Var(new) if expression.name == old else expression
    if isinstance(expression, Path):
        return Path(_substitute_variable(expression.base, old, new), expression.attribute)
    if isinstance(expression, Comparison):
        return Comparison(
            expression.op,
            _substitute_variable(expression.left, old, new),
            _substitute_variable(expression.right, old, new),
        )
    if isinstance(expression, Arithmetic):
        return Arithmetic(
            expression.op,
            _substitute_variable(expression.left, old, new),
            _substitute_variable(expression.right, old, new),
        )
    if isinstance(expression, BooleanExpr):
        return BooleanExpr(
            expression.op,
            tuple(_substitute_variable(operand, old, new) for operand in expression.operands),
        )
    if isinstance(expression, InList):
        return InList(
            _substitute_variable(expression.operand, old, new),
            tuple(_substitute_variable(item, old, new) for item in expression.items),
        )
    if isinstance(expression, StructExpr):
        return StructExpr(
            tuple(
                (name, _substitute_variable(value, old, new)) for name, value in expression.fields
            )
        )
    if isinstance(expression, BagExpr):
        return BagExpr(tuple(_substitute_variable(item, old, new) for item in expression.items))
    if isinstance(expression, FunctionCall):
        return FunctionCall(
            expression.name,
            tuple(_substitute_variable(arg, old, new) for arg in expression.args),
        )
    return expression


def logical_to_oql(node: LogicalOp) -> str:
    """Render a logical plan as OQL text (entry point used for partial answers)."""
    return _Unparser().unparse(node)

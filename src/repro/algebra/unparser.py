"""Turning logical expressions back into OQL text.

Partial evaluation (paper Section 4) requires that "the physical expression is
transformed back into a high level query", which is possible "because each
physical operation has a corresponding logical operation, and each logical
operation has a corresponding OQL expression".  This module implements the
logical -> OQL half of that round trip; the physical -> logical half lives in
:mod:`repro.runtime.partial_eval`.
"""

from __future__ import annotations

import itertools

from repro.algebra.expressions import Const, Expr, Path, Var
from repro.algebra.logical import (
    Apply,
    BagLiteral,
    Distinct,
    Flatten,
    Get,
    Join,
    Limit,
    LogicalOp,
    Project,
    Select,
    Submit,
    Union,
)
from repro.errors import QueryExecutionError


def _render_value(value) -> str:
    """Render one literal value the way OQL writes it.

    Structs and nested collections are rendered with OQL constructors so that
    a partial answer containing data rows remains parseable when re-submitted
    as a query.
    """
    from collections.abc import Mapping

    from repro.datamodel.values import Bag, Struct

    if isinstance(value, (Struct, Mapping)):
        inner = ", ".join(f"{name}: {_render_value(field)}" for name, field in dict(value).items())
        return f"struct({inner})"
    if isinstance(value, (Bag, list, tuple)):
        return "bag(" + ", ".join(_render_value(item) for item in value) + ")"
    return Const(value).to_oql()


class _Unparser:
    """Stateful helper allocating fresh variable names while unparsing."""

    def __init__(self) -> None:
        self._counter = itertools.count()

    def fresh_variable(self, preferred: str | None = None) -> str:
        """Return ``preferred`` or a fresh ``xN`` variable name."""
        if preferred:
            return preferred
        return f"x{next(self._counter)}"

    # -- collection-level rendering -----------------------------------------------------
    def unparse(self, node: LogicalOp) -> str:
        """Render ``node`` as an OQL expression producing a collection."""
        if isinstance(node, BagLiteral):
            return "Bag(" + ", ".join(_render_value(value) for value in node.values) + ")"
        if isinstance(node, Union):
            return "union(" + ", ".join(self.unparse(child) for child in node.inputs) + ")"
        if isinstance(node, Flatten):
            return f"flatten({self.unparse(node.child)})"
        if isinstance(node, Limit):
            if isinstance(node.child, (Get, Submit, Project, Select, Apply, Join, Distinct)):
                return self.unparse(node.child) + f" limit {node.count}"
            # A limited union/flatten/literal becomes a select block so the
            # "limit" clause has a select to attach to.
            variable = self.fresh_variable()
            return (
                f"select {variable} from {variable} in "
                f"({self.unparse(node.child)}) limit {node.count}"
            )
        if isinstance(node, Distinct):
            child = node.child
            while isinstance(child, Distinct):  # distinct is idempotent
                child = child.child
            inner = self.unparse(child)
            if inner.startswith("select distinct "):
                return inner
            if inner.startswith("select "):
                return "select distinct " + inner[len("select "):]
            # distinct over a union/flatten/literal becomes its own block.
            variable = self.fresh_variable()
            return f"select distinct {variable} from {variable} in ({inner})"
        if isinstance(node, (Get, Submit, Project, Select, Apply, Join)):
            return self._render_select(node)
        raise QueryExecutionError(f"cannot render {node.to_text()} as OQL")

    # -- select-from-where rendering -------------------------------------------------------
    def _render_select(self, node: LogicalOp) -> str:
        select_item, sources, predicates = self._decompose(node)
        if not sources:
            raise QueryExecutionError(f"no collection under {node.to_text()}")
        from_parts = ", ".join(f"{var} in {collection}" for var, collection in sources)
        text = f"select {select_item} from {from_parts}"
        if predicates:
            text += " where " + " and ".join(predicates)
        return text

    def _decompose(
        self, node: LogicalOp
    ) -> tuple[str, list[tuple[str, str]], list[str]]:
        """Break a single-block plan into (select item, from sources, where predicates)."""
        if isinstance(node, Submit):
            # submit is transparent in OQL: its argument already names the
            # extent in the mediator name space.
            return self._decompose(node.expression)
        if isinstance(node, Get):
            variable = self.fresh_variable()
            return variable, [(variable, node.collection)], []
        if isinstance(node, Project):
            item, sources, predicates = self._decompose(node.child)
            variable = sources[0][0] if sources else item
            if len(node.attributes) == 1:
                item = f"{variable}.{node.attributes[0]}"
            else:
                fields = ", ".join(f"{attr}: {variable}.{attr}" for attr in node.attributes)
                item = f"struct({fields})"
            return item, sources, predicates
        if isinstance(node, Select):
            item, sources, predicates = self._decompose(node.child)
            variable = sources[0][0] if sources else node.variable
            predicate_text = self._rebind_expression(node.predicate, node.variable, variable)
            return item, sources, predicates + [predicate_text]
        if isinstance(node, Apply):
            item, sources, predicates = self._decompose(node.child)
            variable = sources[0][0] if sources else node.variable
            item = self._rebind_expression(node.expression, node.variable, variable)
            return item, sources, predicates
        if isinstance(node, Join):
            left_item, left_sources, left_predicates = self._decompose(node.left)
            right_item, right_sources, right_predicates = self._decompose(node.right)
            left_attr, right_attr = node.join_attributes()
            left_var = left_sources[0][0]
            right_var = right_sources[0][0]
            item = f"struct(left: {left_var}, right: {right_var})"
            predicates = left_predicates + right_predicates + [
                f"{left_var}.{left_attr} = {right_var}.{right_attr}"
            ]
            return item, left_sources + right_sources, predicates
        if isinstance(node, (Union, Flatten, BagLiteral, Limit, Distinct)):
            # A nested collection expression becomes an inline from-source.
            variable = self.fresh_variable()
            return variable, [(variable, f"({self.unparse(node)})")], []
        raise QueryExecutionError(f"cannot decompose {node.to_text()}")

    def _rebind_expression(self, expression: Expr, old: str, new: str) -> str:
        """Render ``expression`` with variable ``old`` renamed to ``new``."""
        if old == new:
            return expression.to_oql()
        return _substitute_variable(expression, old, new).to_oql()


def _substitute_variable(expression: Expr, old: str, new: str) -> Expr:
    """Return ``expression`` with every reference to ``old`` replaced by ``new``."""
    from repro.algebra.expressions import (
        Arithmetic,
        BagExpr,
        BooleanExpr,
        Comparison,
        FunctionCall,
        StructExpr,
    )

    if isinstance(expression, Var):
        return Var(new) if expression.name == old else expression
    if isinstance(expression, Path):
        return Path(_substitute_variable(expression.base, old, new), expression.attribute)
    if isinstance(expression, Comparison):
        return Comparison(
            expression.op,
            _substitute_variable(expression.left, old, new),
            _substitute_variable(expression.right, old, new),
        )
    if isinstance(expression, Arithmetic):
        return Arithmetic(
            expression.op,
            _substitute_variable(expression.left, old, new),
            _substitute_variable(expression.right, old, new),
        )
    if isinstance(expression, BooleanExpr):
        return BooleanExpr(
            expression.op,
            tuple(_substitute_variable(operand, old, new) for operand in expression.operands),
        )
    if isinstance(expression, StructExpr):
        return StructExpr(
            tuple(
                (name, _substitute_variable(value, old, new)) for name, value in expression.fields
            )
        )
    if isinstance(expression, BagExpr):
        return BagExpr(tuple(_substitute_variable(item, old, new) for item in expression.items))
    if isinstance(expression, FunctionCall):
        return FunctionCall(
            expression.name,
            tuple(_substitute_variable(arg, old, new) for arg in expression.args),
        )
    return expression


def logical_to_oql(node: LogicalOp) -> str:
    """Render a logical plan as OQL text (entry point used for partial answers)."""
    return _Unparser().unparse(node)

"""Scalar expression language shared by the OQL AST and the algebra.

Expressions are evaluated against an *environment*: a mapping from query
variable names to the current element bound by the enclosing ``from`` clause
(a :class:`~repro.datamodel.values.Struct` or plain dict).  Every node knows
how to evaluate itself, report the variables and attribute paths it uses
(needed by the optimizer to decide what can be pushed to a wrapper), rename
attributes (needed by the local transformation maps of Section 2.2.2) and
print itself back as OQL text (needed for partial answers, Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from repro.datamodel.values import Bag, Struct
from repro.errors import QueryExecutionError

Environment = Mapping[str, Any]

COMPARISON_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

ARITHMETIC_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}

AGGREGATE_FUNCTIONS = ("sum", "count", "min", "max", "avg")


class Expr:
    """Base class for every scalar expression node."""

    def evaluate(self, env: Environment, evaluator=None) -> Any:
        """Evaluate under ``env``; ``evaluator`` runs nested subqueries."""
        raise NotImplementedError

    def free_variables(self) -> set[str]:
        """Names of the query variables this expression references."""
        return set()

    def attribute_paths(self) -> set[tuple[str, str]]:
        """``(variable, attribute)`` pairs accessed by this expression."""
        return set()

    def rename_attributes(self, renames: Mapping[str, str]) -> "Expr":
        """Return a copy with attribute names substituted (map application)."""
        return self

    def to_oql(self) -> str:
        """Render back to OQL text."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_oql()})"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.to_oql() == other.to_oql()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.to_oql()))


@dataclass(frozen=True, eq=False)
class Const(Expr):
    """A literal constant."""

    value: Any

    def evaluate(self, env: Environment, evaluator=None) -> Any:
        return self.value

    def to_oql(self) -> str:
        if isinstance(self.value, str):
            return '"' + self.value.replace('"', '\\"') + '"'
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        if self.value is None:
            return "nil"
        return str(self.value)


@dataclass(frozen=True, eq=False)
class Var(Expr):
    """A reference to a query variable bound by a ``from`` clause."""

    name: str

    def evaluate(self, env: Environment, evaluator=None) -> Any:
        if self.name not in env:
            raise QueryExecutionError(f"unbound variable {self.name!r}")
        return env[self.name]

    def free_variables(self) -> set[str]:
        return {self.name}

    def to_oql(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class Path(Expr):
    """Attribute access ``base.attribute`` (e.g. ``x.salary``)."""

    base: Expr
    attribute: str

    def evaluate(self, env: Environment, evaluator=None) -> Any:
        value = self.base.evaluate(env, evaluator)
        if isinstance(value, (Struct, Mapping)):
            try:
                return value[self.attribute]
            except KeyError:
                raise QueryExecutionError(
                    f"object {value!r} has no attribute {self.attribute!r}"
                ) from None
        if hasattr(value, self.attribute):
            return getattr(value, self.attribute)
        raise QueryExecutionError(f"cannot access {self.attribute!r} on {value!r}")

    def free_variables(self) -> set[str]:
        return self.base.free_variables()

    def attribute_paths(self) -> set[tuple[str, str]]:
        paths = set(self.base.attribute_paths())
        if isinstance(self.base, Var):
            paths.add((self.base.name, self.attribute))
        return paths

    def rename_attributes(self, renames: Mapping[str, str]) -> "Expr":
        return Path(self.base.rename_attributes(renames), renames.get(self.attribute, self.attribute))

    def to_oql(self) -> str:
        return f"{self.base.to_oql()}.{self.attribute}"


@dataclass(frozen=True, eq=False)
class Comparison(Expr):
    """Binary comparison ``left <op> right`` with op in =, !=, <, <=, >, >=."""

    op: str
    left: Expr
    right: Expr

    def evaluate(self, env: Environment, evaluator=None) -> bool:
        if self.op not in COMPARISON_OPS:
            raise QueryExecutionError(f"unknown comparison operator {self.op!r}")
        left = self.left.evaluate(env, evaluator)
        right = self.right.evaluate(env, evaluator)
        if left is None or right is None:
            return False
        try:
            return COMPARISON_OPS[self.op](left, right)
        except TypeError:
            return False

    def free_variables(self) -> set[str]:
        return self.left.free_variables() | self.right.free_variables()

    def attribute_paths(self) -> set[tuple[str, str]]:
        return self.left.attribute_paths() | self.right.attribute_paths()

    def rename_attributes(self, renames: Mapping[str, str]) -> "Expr":
        return Comparison(
            self.op, self.left.rename_attributes(renames), self.right.rename_attributes(renames)
        )

    def to_oql(self) -> str:
        return f"{self.left.to_oql()} {self.op} {self.right.to_oql()}"


@dataclass(frozen=True, eq=False)
class InList(Expr):
    """Set-valued membership test ``operand in (item, ...)``.

    This is the batched-probe predicate: a bind join collecting probe keys
    issues one ``select(x: x.attr in (k1, ..., kn), get(...))`` submit per
    batch instead of one submit per key.  Wrappers advertise the ``in``
    capability terminal when they can evaluate it (the SQL dialect renders it
    as ``IN (...)``).  Semantics mirror :class:`Comparison` equality: a None
    operand matches nothing, None items match nothing, incomparable types
    are simply not equal.
    """

    operand: Expr
    items: tuple[Expr, ...]

    def evaluate(self, env: Environment, evaluator=None) -> bool:
        value = self.operand.evaluate(env, evaluator)
        if value is None:
            return False
        for item in self.items:
            candidate = item.evaluate(env, evaluator)
            if candidate is None:
                continue
            try:
                if value == candidate:
                    return True
            except TypeError:
                continue
        return False

    def free_variables(self) -> set[str]:
        result = set(self.operand.free_variables())
        for item in self.items:
            result |= item.free_variables()
        return result

    def attribute_paths(self) -> set[tuple[str, str]]:
        result = set(self.operand.attribute_paths())
        for item in self.items:
            result |= item.attribute_paths()
        return result

    def rename_attributes(self, renames: Mapping[str, str]) -> "Expr":
        return InList(
            self.operand.rename_attributes(renames),
            tuple(item.rename_attributes(renames) for item in self.items),
        )

    def to_oql(self) -> str:
        return (
            f"{self.operand.to_oql()} in ("
            + ", ".join(item.to_oql() for item in self.items)
            + ")"
        )


@dataclass(frozen=True, eq=False)
class BooleanExpr(Expr):
    """``and`` / ``or`` / ``not`` combination of predicates."""

    op: str
    operands: tuple[Expr, ...]

    def evaluate(self, env: Environment, evaluator=None) -> bool:
        if self.op == "and":
            return all(operand.evaluate(env, evaluator) for operand in self.operands)
        if self.op == "or":
            return any(operand.evaluate(env, evaluator) for operand in self.operands)
        if self.op == "not":
            return not self.operands[0].evaluate(env, evaluator)
        raise QueryExecutionError(f"unknown boolean operator {self.op!r}")

    def free_variables(self) -> set[str]:
        result: set[str] = set()
        for operand in self.operands:
            result |= operand.free_variables()
        return result

    def attribute_paths(self) -> set[tuple[str, str]]:
        result: set[tuple[str, str]] = set()
        for operand in self.operands:
            result |= operand.attribute_paths()
        return result

    def rename_attributes(self, renames: Mapping[str, str]) -> "Expr":
        return BooleanExpr(self.op, tuple(o.rename_attributes(renames) for o in self.operands))

    def to_oql(self) -> str:
        if self.op == "not":
            return f"not ({self.operands[0].to_oql()})"
        joiner = f" {self.op} "
        return "(" + joiner.join(operand.to_oql() for operand in self.operands) + ")"


@dataclass(frozen=True, eq=False)
class Arithmetic(Expr):
    """Binary arithmetic ``left <op> right`` with op in +, -, *, /."""

    op: str
    left: Expr
    right: Expr

    def evaluate(self, env: Environment, evaluator=None) -> Any:
        if self.op not in ARITHMETIC_OPS:
            raise QueryExecutionError(f"unknown arithmetic operator {self.op!r}")
        left = self.left.evaluate(env, evaluator)
        right = self.right.evaluate(env, evaluator)
        try:
            return ARITHMETIC_OPS[self.op](left, right)
        except (TypeError, ZeroDivisionError) as exc:
            raise QueryExecutionError(f"cannot compute {self.to_oql()}: {exc}") from exc

    def free_variables(self) -> set[str]:
        return self.left.free_variables() | self.right.free_variables()

    def attribute_paths(self) -> set[tuple[str, str]]:
        return self.left.attribute_paths() | self.right.attribute_paths()

    def rename_attributes(self, renames: Mapping[str, str]) -> "Expr":
        return Arithmetic(
            self.op, self.left.rename_attributes(renames), self.right.rename_attributes(renames)
        )

    def to_oql(self) -> str:
        return f"{self.left.to_oql()} {self.op} {self.right.to_oql()}"


@dataclass(frozen=True, eq=False)
class StructExpr(Expr):
    """The OQL ``struct(name: expr, ...)`` constructor."""

    fields: tuple[tuple[str, Expr], ...]

    def evaluate(self, env: Environment, evaluator=None) -> Struct:
        return Struct({name: expr.evaluate(env, evaluator) for name, expr in self.fields})

    def free_variables(self) -> set[str]:
        result: set[str] = set()
        for _, expr in self.fields:
            result |= expr.free_variables()
        return result

    def attribute_paths(self) -> set[tuple[str, str]]:
        result: set[tuple[str, str]] = set()
        for _, expr in self.fields:
            result |= expr.attribute_paths()
        return result

    def rename_attributes(self, renames: Mapping[str, str]) -> "Expr":
        return StructExpr(tuple((name, expr.rename_attributes(renames)) for name, expr in self.fields))

    def to_oql(self) -> str:
        inner = ", ".join(f"{name}: {expr.to_oql()}" for name, expr in self.fields)
        return f"struct({inner})"

    def field_names(self) -> list[str]:
        """Names of the struct fields in declaration order."""
        return [name for name, _ in self.fields]


@dataclass(frozen=True, eq=False)
class BagExpr(Expr):
    """The OQL ``bag(e1, e2, ...)`` constructor."""

    items: tuple[Expr, ...]

    def evaluate(self, env: Environment, evaluator=None) -> Bag:
        result = Bag()
        for item in self.items:
            value = item.evaluate(env, evaluator)
            if isinstance(value, Bag):
                result.extend(value)
            else:
                result.add(value)
        return result

    def free_variables(self) -> set[str]:
        result: set[str] = set()
        for item in self.items:
            result |= item.free_variables()
        return result

    def attribute_paths(self) -> set[tuple[str, str]]:
        result: set[tuple[str, str]] = set()
        for item in self.items:
            result |= item.attribute_paths()
        return result

    def rename_attributes(self, renames: Mapping[str, str]) -> "Expr":
        return BagExpr(tuple(item.rename_attributes(renames) for item in self.items))

    def to_oql(self) -> str:
        return "bag(" + ", ".join(item.to_oql() for item in self.items) + ")"


@dataclass(frozen=True, eq=False)
class FunctionCall(Expr):
    """A call to a built-in function, including the aggregates and ``flatten``.

    Aggregates (``sum``, ``count``, ``min``, ``max``, ``avg``) take a single
    collection-valued argument -- typically a nested ``select`` wrapped in a
    :class:`Subquery`.  Reconciliation functions (Section 2.2.3) are just
    ordinary function calls; ``sum`` over two sources in the paper's
    ``multiple`` view is exactly this node.
    """

    name: str
    args: tuple[Expr, ...]

    def evaluate(self, env: Environment, evaluator=None) -> Any:
        values = [arg.evaluate(env, evaluator) for arg in self.args]
        name = self.name.lower()
        if name in AGGREGATE_FUNCTIONS:
            return self._aggregate(name, values)
        if name == "flatten":
            collection = values[0]
            if isinstance(collection, Bag):
                return collection.flatten()
            return Bag(collection).flatten()
        if name == "abs":
            return abs(values[0])
        if name == "ratio":
            # Nil-safe division used by the partial-aggregation combine to
            # recompute ``avg`` from shipped sum/count partials: an empty
            # group's ``avg`` is nil, never a division error.
            if len(values) != 2:
                raise QueryExecutionError("ratio takes exactly two arguments")
            numerator, denominator = values
            if numerator is None or denominator is None or denominator == 0:
                return None
            return numerator / denominator
        if name == "union":
            result = Bag()
            for value in values:
                result.extend(value if isinstance(value, (Bag, list, tuple)) else [value])
            return result
        raise QueryExecutionError(f"unknown function {self.name!r}")

    def _aggregate(self, name: str, values: list[Any]) -> Any:
        if len(values) != 1:
            raise QueryExecutionError(f"aggregate {name!r} takes exactly one argument")
        collection = values[0]
        items = list(collection) if isinstance(collection, (Bag, list, tuple)) else [collection]
        if name == "count":
            return len(items)
        if not items:
            return 0 if name == "sum" else None
        if name == "sum":
            return sum(items)
        if name == "min":
            return min(items)
        if name == "max":
            return max(items)
        if name == "avg":
            return sum(items) / len(items)
        raise QueryExecutionError(f"unknown aggregate {name!r}")

    def free_variables(self) -> set[str]:
        result: set[str] = set()
        for arg in self.args:
            result |= arg.free_variables()
        return result

    def attribute_paths(self) -> set[tuple[str, str]]:
        result: set[tuple[str, str]] = set()
        for arg in self.args:
            result |= arg.attribute_paths()
        return result

    def rename_attributes(self, renames: Mapping[str, str]) -> "Expr":
        return FunctionCall(self.name, tuple(arg.rename_attributes(renames) for arg in self.args))

    def to_oql(self) -> str:
        return f"{self.name}(" + ", ".join(arg.to_oql() for arg in self.args) + ")"


@dataclass(frozen=True, eq=False)
class Subquery(Expr):
    """A nested query used as an expression (``sum(select z.salary from ...)``).

    ``query`` is an OQL AST node; evaluation is delegated to the ``evaluator``
    callable supplied by the run-time system, with the enclosing environment
    made available so correlated subqueries (``where x.id = z.id``) work.
    """

    query: Any

    def evaluate(self, env: Environment, evaluator=None) -> Any:
        if evaluator is None:
            raise QueryExecutionError("no evaluator available for nested subquery")
        return evaluator(self.query, env)

    def free_variables(self) -> set[str]:
        free = getattr(self.query, "free_variables", None)
        return free() if callable(free) else set()

    def to_oql(self) -> str:
        to_oql = getattr(self.query, "to_oql", None)
        return to_oql() if callable(to_oql) else repr(self.query)


# -- helpers -----------------------------------------------------------------------
def walk_expr(expr: Expr):
    """Yield ``expr`` and every sub-expression it contains (pre-order)."""
    yield expr
    if isinstance(expr, Path):
        yield from walk_expr(expr.base)
    elif isinstance(expr, (Comparison, Arithmetic)):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, BooleanExpr):
        for operand in expr.operands:
            yield from walk_expr(operand)
    elif isinstance(expr, InList):
        yield from walk_expr(expr.operand)
        for item in expr.items:
            yield from walk_expr(item)
    elif isinstance(expr, StructExpr):
        for _, value in expr.fields:
            yield from walk_expr(value)
    elif isinstance(expr, (BagExpr, FunctionCall)):
        children = expr.items if isinstance(expr, BagExpr) else expr.args
        for child in children:
            yield from walk_expr(child)


def walk_expr_for_subqueries(expr: Expr):
    """Alias of :func:`walk_expr`; rules use it to detect nested subqueries."""
    return walk_expr(expr)


def contains_subquery(expr: Expr) -> bool:
    """Return True when ``expr`` contains a nested :class:`Subquery`."""
    return any(isinstance(node, Subquery) for node in walk_expr(expr))


def conjunction(predicates: Iterable[Expr]) -> Expr | None:
    """Combine predicates with ``and``; return None for an empty iterable."""
    predicates = [p for p in predicates if p is not None]
    if not predicates:
        return None
    if len(predicates) == 1:
        return predicates[0]
    return BooleanExpr("and", tuple(predicates))


def split_conjuncts(predicate: Expr | None) -> list[Expr]:
    """Split a predicate into its top-level ``and`` conjuncts."""
    if predicate is None:
        return []
    if isinstance(predicate, BooleanExpr) and predicate.op == "and":
        result: list[Expr] = []
        for operand in predicate.operands:
            result.extend(split_conjuncts(operand))
        return result
    return [predicate]


def find_equi_conjunct(
    condition: Expr | None, left_variable: str, right_variable: str
) -> tuple[Expr, Expr] | None:
    """Find a ``left.a = right.b`` conjunct usable as a hash/probe-join key.

    Returns the ``(left_expression, right_expression)`` pair oriented so the
    first's free variables are exactly ``{left_variable}`` and the second's
    exactly ``{right_variable}``, whichever way the comparison was written.
    """
    for conjunct in split_conjuncts(condition):
        if not isinstance(conjunct, Comparison) or conjunct.op != "=":
            continue
        left_vars = conjunct.left.free_variables()
        right_vars = conjunct.right.free_variables()
        if left_vars == {left_variable} and right_vars == {right_variable}:
            return conjunct.left, conjunct.right
        if left_vars == {right_variable} and right_vars == {left_variable}:
            return conjunct.right, conjunct.left
    return None

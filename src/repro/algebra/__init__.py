"""Algebraic machine of the DISCO mediator (paper Section 3).

* :mod:`repro.algebra.expressions` -- scalar expressions (paths, constants,
  comparisons, boolean connectives, arithmetic, aggregate calls, struct and
  bag constructors, nested subqueries) shared by the OQL AST and the algebra;
* :mod:`repro.algebra.logical` -- logical operators: ``get``, ``project``,
  ``select``, ``join``, ``union``, ``flatten``, ``apply``, ``bag`` and the
  DISCO-specific ``submit(source, expression)``;
* :mod:`repro.algebra.physical` -- physical algorithms: ``exec``, ``mkproj``,
  ``filter``, ``hash-join``, ``nested-loop-join``, ``mkunion``, ...;
* :mod:`repro.algebra.capabilities` -- wrapper capability descriptions, both
  as flat operator sets and as the grammars of Section 3.2;
* :mod:`repro.algebra.rules` and :mod:`repro.algebra.rewriter` -- the
  transformation rules (push-downs into ``submit``) and the rule engine;
* :mod:`repro.algebra.unparser` -- turning logical plans back into OQL text,
  which is what makes partial answers expressible as queries (Section 4).
"""

from repro.algebra import expressions
from repro.algebra import logical
from repro.algebra import physical
from repro.algebra.capabilities import CapabilityGrammar, CapabilitySet, grammar_for
from repro.algebra.rewriter import Rewriter
from repro.algebra.unparser import logical_to_oql

__all__ = [
    "expressions",
    "logical",
    "physical",
    "CapabilityGrammar",
    "CapabilitySet",
    "grammar_for",
    "Rewriter",
    "logical_to_oql",
]

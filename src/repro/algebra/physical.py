"""Physical algorithms of the run-time system (paper Sections 3.1 and 3.3).

Each logical operator has at least one physical algorithm implementing it:

====================  =======================================
logical               physical
====================  =======================================
``submit``            :class:`Exec` (calls the wrapper)
``project``           :class:`MkProj`
``select``            :class:`Filter`
``apply``             :class:`MkApply`
``join``              :class:`HashJoin`, :class:`NestedLoopJoin`
``union``             :class:`MkUnion`
``flatten``           :class:`MkFlatten`
``bag`` literal       :class:`MkBag`
``get`` (single obj)  :class:`Field`
====================  =======================================

``Exec`` keeps its argument as a *logical* expression because "the wrapper
interface accepts a logical expression"; the run-time system applies the
extent's local transformation map before calling the wrapper and applies the
inverse map to the rows that come back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.algebra.expressions import Expr
from repro.algebra.logical import LogicalOp


class PhysicalOp:
    """Base class for physical operator nodes."""

    algo_name: str = "physical"

    def children(self) -> tuple["PhysicalOp", ...]:
        """Child operators, left to right."""
        return ()

    def with_children(self, children: Sequence["PhysicalOp"]) -> "PhysicalOp":
        """Return a copy with ``children`` substituted."""
        if children:
            raise ValueError(f"{self.algo_name} takes no children")
        return self

    def to_text(self) -> str:
        """Compact textual form, e.g. ``mkproj(name, exec(field(r0), ...))``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.to_text()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PhysicalOp) and self.to_text() == other.to_text()

    def __hash__(self) -> int:
        return hash(self.to_text())


@dataclass(eq=False)
class Field(PhysicalOp):
    """``field(r)``: the physical form of ``get`` on a single object (a repository)."""

    name: str
    algo_name = "field"

    def to_text(self) -> str:
        return f"field({self.name})"


@dataclass(eq=False)
class Exec(PhysicalOp):
    """``exec(field(source), logical_expression)``: one call to a wrapper.

    ``extent_name`` identifies which MetaExtent (and therefore which wrapper,
    repository and map) the run-time system uses for the call.
    """

    source: Field
    expression: LogicalOp
    extent_name: str
    algo_name = "exec"

    def to_text(self) -> str:
        return f"exec({self.source.to_text()}, {self.expression.to_text()})"


@dataclass(eq=False)
class MkProj(PhysicalOp):
    """``mkproj(attributes, child)``: mediator-side projection."""

    attributes: tuple[str, ...]
    child: PhysicalOp
    algo_name = "mkproj"

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PhysicalOp]) -> "MkProj":
        (child,) = children
        return MkProj(self.attributes, child)

    def to_text(self) -> str:
        return f"mkproj({','.join(self.attributes)}, {self.child.to_text()})"


@dataclass(eq=False)
class MkRename(PhysicalOp):
    """``mkrename(old as new, ..., child)``: mediator-side project-with-aliases."""

    pairs: tuple[tuple[str, str], ...]
    child: PhysicalOp
    algo_name = "mkrename"

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PhysicalOp]) -> "MkRename":
        (child,) = children
        return MkRename(self.pairs, child)

    def to_text(self) -> str:
        aliased = ",".join(
            old if old == new else f"{old} as {new}" for old, new in self.pairs
        )
        return f"mkrename({aliased}, {self.child.to_text()})"


@dataclass(eq=False)
class Filter(PhysicalOp):
    """``filter(predicate, child)``: mediator-side selection."""

    variable: str
    predicate: Expr
    child: PhysicalOp
    algo_name = "filter"

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PhysicalOp]) -> "Filter":
        (child,) = children
        return Filter(self.variable, self.predicate, child)

    def to_text(self) -> str:
        return f"filter({self.variable}: {self.predicate.to_oql()}, {self.child.to_text()})"


@dataclass(eq=False)
class MkApply(PhysicalOp):
    """``mkapply(expr, child)``: mediator-side per-element computation."""

    variable: str
    expression: Expr
    child: PhysicalOp
    algo_name = "mkapply"

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PhysicalOp]) -> "MkApply":
        (child,) = children
        return MkApply(self.variable, self.expression, child)

    def to_text(self) -> str:
        return f"mkapply({self.variable}: {self.expression.to_oql()}, {self.child.to_text()})"


@dataclass(eq=False)
class HashJoin(PhysicalOp):
    """Hash equi-join, the default join algorithm."""

    left: PhysicalOp
    right: PhysicalOp
    on: str | tuple[str, str]
    algo_name = "hashjoin"

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[PhysicalOp]) -> "HashJoin":
        left, right = children
        return HashJoin(left, right, self.on)

    def join_attributes(self) -> tuple[str, str]:
        """Return the ``(left_attribute, right_attribute)`` pair."""
        return self.on if isinstance(self.on, tuple) else (self.on, self.on)

    def to_text(self) -> str:
        on = self.on if isinstance(self.on, str) else f"{self.on[0]}={self.on[1]}"
        return f"hashjoin({self.left.to_text()}, {self.right.to_text()}, {on})"


@dataclass(eq=False)
class NestedLoopJoin(PhysicalOp):
    """Nested-loop equi-join: cheaper to set up, quadratic to run."""

    left: PhysicalOp
    right: PhysicalOp
    on: str | tuple[str, str]
    algo_name = "nljoin"

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[PhysicalOp]) -> "NestedLoopJoin":
        left, right = children
        return NestedLoopJoin(left, right, self.on)

    def join_attributes(self) -> tuple[str, str]:
        """Return the ``(left_attribute, right_attribute)`` pair."""
        return self.on if isinstance(self.on, tuple) else (self.on, self.on)

    def to_text(self) -> str:
        on = self.on if isinstance(self.on, str) else f"{self.on[0]}={self.on[1]}"
        return f"nljoin({self.left.to_text()}, {self.right.to_text()}, {on})"


@dataclass(eq=False)
class MkBindJoin(PhysicalOp):
    """Mediator-side join over variable bindings (implements logical ``bindjoin``)."""

    left: PhysicalOp
    right: PhysicalOp
    left_variable: str
    right_variable: str
    condition: Expr | None = None
    algo_name = "mkbindjoin"

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[PhysicalOp]) -> "MkBindJoin":
        left, right = children
        return MkBindJoin(
            left, right, self.left_variable, self.right_variable, condition=self.condition
        )

    def to_text(self) -> str:
        condition = self.condition.to_oql() if self.condition is not None else "true"
        return (
            f"mkbindjoin({self.left_variable}: {self.left.to_text()}, "
            f"{self.right_variable}: {self.right.to_text()}, {condition})"
        )


@dataclass(eq=False)
class ProbeJoin(PhysicalOp):
    """Batched bind join: probe the right source with ``IN``-lists of left keys.

    Implements logical ``bindjoin`` when the right side is a single ``submit``
    and the condition carries an equi-join conjunct.  Instead of shipping the
    whole right extent (``MkBindJoin``) or probing one binding per call
    (``evaluate_subquery``), the run-time system collects up to
    ``ExecutorConfig.bind_batch_size`` distinct left-side keys and issues one
    set-valued submit per batch: ``select(v: key in (k1, ..., kn), expr)``.

    ``probe`` is deliberately *not* a child: ``execs_in`` must not see it, or
    both engines would dispatch the full right-side exec eagerly before a
    single probe key exists.
    """

    left: PhysicalOp
    probe: Exec
    left_variable: str
    right_variable: str
    condition: Expr
    algo_name = "probejoin"

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.left,)

    def with_children(self, children: Sequence[PhysicalOp]) -> "ProbeJoin":
        (left,) = children
        return ProbeJoin(
            left,
            self.probe,
            self.left_variable,
            self.right_variable,
            self.condition,
        )

    def to_text(self) -> str:
        return (
            f"probejoin({self.left_variable}: {self.left.to_text()}, "
            f"{self.right_variable}: {self.probe.to_text()}, {self.condition.to_oql()})"
        )


@dataclass(eq=False)
class MkUnion(PhysicalOp):
    """``mkunion(children...)``: mediator-side bag union."""

    inputs: tuple[PhysicalOp, ...]
    algo_name = "mkunion"

    def children(self) -> tuple[PhysicalOp, ...]:
        return self.inputs

    def with_children(self, children: Sequence[PhysicalOp]) -> "MkUnion":
        return MkUnion(tuple(children))

    def to_text(self) -> str:
        return "mkunion(" + ", ".join(child.to_text() for child in self.inputs) + ")"


@dataclass(eq=False)
class MkFlatten(PhysicalOp):
    """``mkflatten(child)``: mediator-side flatten."""

    child: PhysicalOp
    algo_name = "mkflatten"

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PhysicalOp]) -> "MkFlatten":
        (child,) = children
        return MkFlatten(child)

    def to_text(self) -> str:
        return f"mkflatten({self.child.to_text()})"


@dataclass(eq=False)
class MkDistinct(PhysicalOp):
    """``mkdistinct(child)``: mediator-side duplicate elimination."""

    child: PhysicalOp
    algo_name = "mkdistinct"

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PhysicalOp]) -> "MkDistinct":
        (child,) = children
        return MkDistinct(child)

    def to_text(self) -> str:
        return f"mkdistinct({self.child.to_text()})"


@dataclass(eq=False)
class MkGroupBy(PhysicalOp):
    """``mkgroupby(keys; aggregates, child)``: mediator-side grouped aggregation.

    Implements logical ``groupby`` when it stays at the mediator -- the
    compensation side of the summarization pushdown (and the combine phase of
    two-phase aggregation over a union).  A pipeline barrier: groups are
    emitted only after the child is exhausted.
    """

    variable: str
    keys: tuple[tuple[str, Expr], ...]
    aggregates: tuple[tuple[str, str, Expr], ...]
    child: PhysicalOp
    algo_name = "mkgroupby"

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PhysicalOp]) -> "MkGroupBy":
        (child,) = children
        return MkGroupBy(self.variable, self.keys, self.aggregates, child)

    def to_text(self) -> str:
        keys = ",".join(f"{name}: {expr.to_oql()}" for name, expr in self.keys)
        aggs = ",".join(
            f"{name}: {func}({arg.to_oql()})" for name, func, arg in self.aggregates
        )
        return f"mkgroupby({self.variable}: [{keys}] [{aggs}], {self.child.to_text()})"


@dataclass(eq=False)
class MkLimit(PhysicalOp):
    """``mklimit(n, child)``: stop after ``n`` elements (implements ``limit``).

    Under the streaming engine this is an early-termination point: once the
    count is reached the child pipeline is closed and in-flight exec calls
    are cancelled.
    """

    count: int
    child: PhysicalOp
    algo_name = "mklimit"

    def children(self) -> tuple[PhysicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[PhysicalOp]) -> "MkLimit":
        (child,) = children
        return MkLimit(self.count, child)

    def to_text(self) -> str:
        return f"mklimit({self.count}, {self.child.to_text()})"


@dataclass(eq=False)
class MkBag(PhysicalOp):
    """``mkbag(values)``: literal data in a physical plan."""

    values: tuple[Any, ...] = ()
    algo_name = "mkbag"

    def to_text(self) -> str:
        return "mkbag(" + ", ".join(repr(value) for value in self.values) + ")"


def walk(node: PhysicalOp):
    """Yield every node of the physical tree, parents before children."""
    yield node
    for child in node.children():
        yield from walk(child)


def execs_in(node: PhysicalOp) -> list[Exec]:
    """Return every :class:`Exec` node in the tree, in pre-order."""
    return [candidate for candidate in walk(node) if isinstance(candidate, Exec)]

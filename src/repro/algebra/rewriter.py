"""The rule engine that drives logical-plan rewriting.

Two modes, both used by the optimizer:

* :meth:`Rewriter.rewrite_greedy` applies the rules bottom-up until no rule
  fires anywhere -- this yields the "maximum push-down" plan the paper's
  default cost model favours (everything done at a data source costs 0);
* :meth:`Rewriter.alternatives` enumerates the closure of single-rule
  applications (bounded), which is the search space handed to the cost-based
  optimizer.
"""

from __future__ import annotations

from typing import Iterable

from repro.algebra.logical import LogicalOp, transform_bottom_up
from repro.algebra.rules import (
    DEFAULT_RULES,
    CapabilityResolver,
    TransformationRule,
)


class Rewriter:
    """Applies transformation rules under a wrapper-capability resolver."""

    def __init__(
        self,
        capabilities: CapabilityResolver,
        rules: Iterable[TransformationRule] | None = None,
        max_alternatives: int = 64,
    ):
        self.capabilities = capabilities
        self.rules: tuple[TransformationRule, ...] = tuple(rules or DEFAULT_RULES)
        self.max_alternatives = max_alternatives

    # -- greedy fixpoint -------------------------------------------------------------
    def rewrite_greedy(self, root: LogicalOp) -> LogicalOp:
        """Apply rules bottom-up until a fixpoint is reached."""
        current = root
        for _ in range(100):  # fixpoint bound; the rule sets used here terminate quickly
            rewritten = self._one_pass(current)
            if rewritten == current:
                return current
            current = rewritten
        return current

    def _one_pass(self, root: LogicalOp) -> LogicalOp:
        def visit(node: LogicalOp) -> LogicalOp:
            for rule in self.rules:
                alternatives = rule.apply(node, self.capabilities)
                if alternatives:
                    return alternatives[0]
            return node

        return transform_bottom_up(root, visit)

    # -- exhaustive enumeration ---------------------------------------------------------
    def alternatives(self, root: LogicalOp) -> list[LogicalOp]:
        """Return the closure of rule applications starting from ``root``.

        Always includes ``root`` itself; bounded by ``max_alternatives`` so a
        pathological rule set cannot blow up the search space.
        """
        seen: dict[str, LogicalOp] = {root.to_text(): root}
        frontier: list[LogicalOp] = [root]
        while frontier and len(seen) < self.max_alternatives:
            plan = frontier.pop()
            for variant in self._single_step_variants(plan):
                key = variant.to_text()
                if key not in seen:
                    seen[key] = variant
                    frontier.append(variant)
                if len(seen) >= self.max_alternatives:
                    break
        return list(seen.values())

    def _single_step_variants(self, root: LogicalOp) -> list[LogicalOp]:
        """Every plan obtainable from ``root`` by one rule application at one node."""
        variants: list[LogicalOp] = []
        for path, node in self._nodes_with_paths(root, []):
            for rule in self.rules:
                for alternative in rule.apply(node, self.capabilities):
                    variants.append(self._replace_at(root, path, alternative))
        return variants

    def _nodes_with_paths(
        self, node: LogicalOp, path: list[int]
    ) -> list[tuple[list[int], LogicalOp]]:
        result: list[tuple[list[int], LogicalOp]] = [(path, node)]
        for index, child in enumerate(node.children()):
            result.extend(self._nodes_with_paths(child, path + [index]))
        return result

    def _replace_at(
        self, root: LogicalOp, path: list[int], replacement: LogicalOp
    ) -> LogicalOp:
        if not path:
            return replacement
        children = list(root.children())
        index = path[0]
        children[index] = self._replace_at(children[index], path[1:], replacement)
        return root.with_children(children)

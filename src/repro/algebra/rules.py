"""Transformation rules over logical expressions (paper Section 3.2).

Each rule rewrites a logical expression into an equivalent one.  The rules
that move work across the ``submit`` boundary must first consult the wrapper's
capability grammar (obtained through the ``submit-functionality`` interface);
a rule silently declines to fire when the wrapper would not understand the
resulting expression, which is how "transformation rules insure that wrapper
functionality is not violated".

The capability resolver passed to every rule maps a :class:`Submit` node to
the grammar of the wrapper serving that extent.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.algebra.capabilities import CapabilityGrammar
from repro.algebra.expressions import (
    Expr,
    FunctionCall,
    Path,
    StructExpr,
    Subquery,
    Var,
    conjunction,
    contains_subquery,
    split_conjuncts,
    walk_expr_for_subqueries,
)
from repro.algebra.logical import (
    Apply,
    BindJoin,
    GroupBy,
    Join,
    Limit,
    LogicalOp,
    Project,
    Select,
    Submit,
    Union,
)

CapabilityResolver = Callable[[Submit], CapabilityGrammar]


class TransformationRule(Protocol):
    """A rule proposes zero or more equivalent rewrites of one node."""

    name: str

    def apply(self, node: LogicalOp, capabilities: CapabilityResolver) -> list[LogicalOp]:
        """Return alternative forms of ``node`` (not including ``node`` itself)."""
        ...


def _predicate_is_pushable(select: Select) -> bool:
    """A predicate can cross the wrapper boundary only if it is self-contained.

    The paper forbids passing mediator object references, path expressions
    into mediator data and mediator-defined functions through the wrapper
    interface; concretely the predicate may only mention the select's own
    variable and constants, and may not contain nested subqueries.
    """
    predicate = select.predicate
    if predicate.free_variables() - {select.variable}:
        return False
    for node in walk_expr_for_subqueries(predicate):
        if isinstance(node, Subquery):
            return False
    return True


class PushProjectIntoSubmit:
    """``project(attrs, submit(r, e))`` -> ``submit(r, project(attrs, e))``."""

    name = "push-project-into-submit"

    def apply(self, node: LogicalOp, capabilities: CapabilityResolver) -> list[LogicalOp]:
        if not isinstance(node, Project) or not isinstance(node.child, Submit):
            return []
        submit = node.child
        pushed = Project(node.attributes, submit.expression)
        if not capabilities(submit).accepts(pushed):
            return []
        return [Submit(submit.source, pushed, extent_name=submit.extent_name)]


class PushSelectIntoSubmit:
    """``select(p, submit(r, e))`` -> ``submit(r, select(p, e))``."""

    name = "push-select-into-submit"

    def apply(self, node: LogicalOp, capabilities: CapabilityResolver) -> list[LogicalOp]:
        if not isinstance(node, Select) or not isinstance(node.child, Submit):
            return []
        if not _predicate_is_pushable(node):
            return []
        submit = node.child
        pushed = Select(node.variable, node.predicate, submit.expression)
        if not capabilities(submit).accepts(pushed):
            return []
        return [Submit(submit.source, pushed, extent_name=submit.extent_name)]


class PushJoinIntoSubmit:
    """``join(submit(r, e1), submit(r, e2), a)`` -> ``submit(r, join(e1, e2, a))``.

    Only fires when both operands live at the *same* source: the ``submit``
    operator has RPC semantics and cannot ship data between sources (the
    paper's semijoin restriction).
    """

    name = "push-join-into-submit"

    def apply(self, node: LogicalOp, capabilities: CapabilityResolver) -> list[LogicalOp]:
        if not isinstance(node, Join):
            return []
        left, right = node.left, node.right
        if not (isinstance(left, Submit) and isinstance(right, Submit)):
            return []
        if left.source != right.source:
            return []
        pushed = Join(
            left.expression,
            right.expression,
            node.on,
            left_variable=node.left_variable,
            right_variable=node.right_variable,
        )
        if not capabilities(left).accepts(pushed):
            return []
        return [Submit(left.source, pushed, extent_name=left.extent_name)]


class PushProjectThroughUnion:
    """``project(attrs, union(e1, ..., en))`` -> ``union(project(attrs, e1), ...)``."""

    name = "push-project-through-union"

    def apply(self, node: LogicalOp, capabilities: CapabilityResolver) -> list[LogicalOp]:
        if not isinstance(node, Project) or not isinstance(node.child, Union):
            return []
        rewritten = Union(
            tuple(Project(node.attributes, child) for child in node.child.inputs)
        )
        return [rewritten]


class PushSelectThroughUnion:
    """``select(p, union(e1, ..., en))`` -> ``union(select(p, e1), ...)``."""

    name = "push-select-through-union"

    def apply(self, node: LogicalOp, capabilities: CapabilityResolver) -> list[LogicalOp]:
        if not isinstance(node, Select) or not isinstance(node.child, Union):
            return []
        rewritten = Union(
            tuple(
                Select(node.variable, node.predicate, child) for child in node.child.inputs
            )
        )
        return [rewritten]


def _bindjoin_bound_variables(join: BindJoin) -> set[str]:
    """Every variable an element produced by ``join`` binds.

    Left-deep chains use the placeholder variable ``_env`` for an environment
    left side; the real bindings come from the nested bindjoin.
    """
    variables = {join.right_variable}
    if isinstance(join.left, BindJoin):
        variables |= _bindjoin_bound_variables(join.left)
    else:
        variables.add(join.left_variable)
    return variables


class PushConditionIntoBindJoin:
    """``select(p, bindjoin(l, r))`` -> ``bindjoin(l, r, p')`` for join conjuncts.

    The translator leaves the whole ``where`` clause in a select *above* the
    bindjoin, which forces a cross product followed by a filter.  Sinking the
    conjuncts that mention the join's right variable into the bindjoin's
    condition activates the run-time's equi-hash path -- and gives the
    batched-probe join (``ProbeJoin``) the key expression it probes with.
    Conjuncts referencing outer variables or nested subqueries stay in a
    residual select.
    """

    name = "push-condition-into-bindjoin"

    def apply(self, node: LogicalOp, capabilities: CapabilityResolver) -> list[LogicalOp]:
        if not isinstance(node, Select) or not isinstance(node.child, BindJoin):
            return []
        join = node.child
        bound = _bindjoin_bound_variables(join)
        sinkable, residual = [], []
        for conjunct in split_conjuncts(node.predicate):
            free = conjunct.free_variables()
            if (
                free
                and free <= bound
                and join.right_variable in free
                and not contains_subquery(conjunct)
            ):
                sinkable.append(conjunct)
            else:
                residual.append(conjunct)
        if not sinkable:
            return []
        condition = conjunction([join.condition] + sinkable)
        rewritten = BindJoin(
            join.left,
            join.right,
            join.left_variable,
            join.right_variable,
            condition=condition,
        )
        residual_predicate = conjunction(residual)
        if residual_predicate is not None:
            return [Select(node.variable, residual_predicate, rewritten)]
        return [rewritten]


class CommuteSelectProject:
    """``select(p, project(attrs, e))`` -> ``project(attrs, select(p, e))``.

    Legal only when the predicate references attributes that survive the
    projection (it always does in plans built by the translator, but the guard
    keeps the rule sound on hand-built plans).
    """

    name = "commute-select-project"

    def apply(self, node: LogicalOp, capabilities: CapabilityResolver) -> list[LogicalOp]:
        if not isinstance(node, Select) or not isinstance(node.child, Project):
            return []
        project = node.child
        used = {attr for _, attr in node.predicate.attribute_paths()}
        if not used <= set(project.attributes):
            return []
        return [Project(project.attributes, Select(node.variable, node.predicate, project.child))]


class PushLimitThroughProject:
    """``limit(n, project(attrs, e))`` -> ``project(attrs, limit(n, e))``.

    A projection is one-to-one per element, so truncating before or after it
    yields the same bag; truncating first lets the streaming engine stop the
    child pipeline (and cancel exec calls) earlier.
    """

    name = "push-limit-through-project"

    def apply(self, node: LogicalOp, capabilities: CapabilityResolver) -> list[LogicalOp]:
        if not isinstance(node, Limit) or not isinstance(node.child, Project):
            return []
        project = node.child
        return [Project(project.attributes, Limit(node.count, project.child))]


class PushLimitThroughApply:
    """``limit(n, apply(v: e, child))`` -> ``apply(v: e, limit(n, child))``.

    Apply computes one output element per input element, so the truncation
    commutes; pushing it below saves per-element computation and, under the
    streaming engine, stops the child pipeline earlier.  (Select and
    distinct change cardinality, so limit never crosses those.)
    """

    name = "push-limit-through-apply"

    def apply(self, node: LogicalOp, capabilities: CapabilityResolver) -> list[LogicalOp]:
        if not isinstance(node, Limit) or not isinstance(node.child, Apply):
            return []
        inner = node.child
        return [Apply(inner.variable, inner.expression, Limit(node.count, inner.child))]


def _effectively_limited(node: LogicalOp, count: int) -> bool:
    """True when ``node`` already produces at most ``count`` elements.

    Looks through the one-to-one operators (project/apply) that the other
    limit rules push a limit below, so a branch rewritten to
    ``project(a, limit(n, e))`` is recognized as limited and not re-wrapped
    -- otherwise PushLimitThroughUnion and PushLimitThroughProject would feed
    each other nested limits forever.  A ``submit`` whose pushed expression is
    limited counts too (PushLimitIntoSubmit moved the cap across the wrapper
    boundary), for the same termination reason.
    """
    while isinstance(node, (Project, Apply)):
        node = node.child
    if isinstance(node, Submit):
        return _effectively_limited(node.expression, count)
    return isinstance(node, Limit) and node.count <= count


class PushLimitThroughUnion:
    """``limit(n, union(e1, ..., ek))`` -> ``limit(n, union(limit(n, e1), ...))``.

    No single union branch needs to produce more than ``n`` elements; the
    outer limit is kept because the branches together may still exceed it.
    Branches already (effectively) limited to ``n`` or less are left alone,
    and the rule declines entirely when every branch is -- that is what makes
    the rewrite fixpoint terminate.
    """

    name = "push-limit-through-union"

    def apply(self, node: LogicalOp, capabilities: CapabilityResolver) -> list[LogicalOp]:
        if not isinstance(node, Limit) or not isinstance(node.child, Union):
            return []
        union = node.child
        if all(_effectively_limited(child, node.count) for child in union.inputs):
            return []
        limited = tuple(
            child
            if _effectively_limited(child, node.count)
            else Limit(node.count, child)
            for child in union.inputs
        )
        return [Limit(node.count, Union(limited))]


class PushLimitIntoSubmit:
    """``limit(n, submit(r, e))`` -> ``submit(r, limit(n, e))``.

    The fetch-size pushdown: the limit crosses the wrapper boundary only when
    the wrapper's grammar accepts the limited expression (the ``limit``
    capability terminal), in which case the source stops producing after
    ``n`` rows instead of shipping its full extent.
    """

    name = "push-limit-into-submit"

    def apply(self, node: LogicalOp, capabilities: CapabilityResolver) -> list[LogicalOp]:
        if not isinstance(node, Limit) or not isinstance(node.child, Submit):
            return []
        submit = node.child
        if _effectively_limited(submit.expression, node.count):
            return []
        pushed = Limit(node.count, submit.expression)
        if not capabilities(submit).accepts(pushed):
            return []
        return [Submit(submit.source, pushed, extent_name=submit.extent_name)]


def _groupby_expressions_pushable(node: GroupBy) -> bool:
    """Key and aggregate expressions may only mention the group variable.

    Same restriction as pushed predicates: no outer variables, no nested
    subqueries -- those cannot cross the wrapper interface.
    """
    expressions: list[Expr] = [expr for _, expr in node.keys]
    expressions += [arg for _, _, arg in node.aggregates]
    for expression in expressions:
        if expression.free_variables() - {node.variable}:
            return False
        if contains_subquery(expression):
            return False
    return True


class PushGroupByIntoSubmit:
    """``groupby(k; a, submit(r, e))`` -> ``submit(r, groupby(k; a, e))``.

    The summarization pushdown: grouping crosses the wrapper boundary only
    when the wrapper's grammar accepts the grouped expression (the
    ``groupby`` capability terminal), in which case one row per group crosses
    the wire instead of the whole extent.
    """

    name = "push-groupby-into-submit"

    def apply(self, node: LogicalOp, capabilities: CapabilityResolver) -> list[LogicalOp]:
        if not isinstance(node, GroupBy) or not isinstance(node.child, Submit):
            return []
        if not _groupby_expressions_pushable(node):
            return []
        submit = node.child
        pushed = GroupBy(node.variable, node.keys, node.aggregates, submit.expression)
        if not capabilities(submit).accepts(pushed):
            return []
        return [Submit(submit.source, pushed, extent_name=submit.extent_name)]


def _already_grouped(node: LogicalOp) -> bool:
    """True when ``node`` is a grouping branch (possibly pushed into a submit).

    The look-through mirrors ``_effectively_limited``: once
    PushGroupByThroughUnion has decomposed an aggregation into per-branch
    partials, later passes must recognize a partial that
    PushGroupByIntoSubmit subsequently moved across the wrapper boundary --
    otherwise the combine-over-union-of-submits shape would be decomposed
    again, forever.
    """
    if isinstance(node, GroupBy):
        return True
    if isinstance(node, Submit):
        return _already_grouped(node.expression)
    return False


class PushGroupByThroughUnion:
    """Two-phase aggregation: per-branch partials plus a mediator combine.

    ``groupby(k; a, union(e1, ..., en))`` becomes a *combine* groupby over
    the union of per-branch *partial* groupbys.  Each branch aggregates its
    own rows (and may then push its partial into its submit); the combine
    merges partials per key: partial counts and sums are summed, mins and
    maxes re-minimized/re-maximized, and ``avg`` is decomposed into
    ``name__sum``/``name__count`` partial columns recombined with the
    nil-safe ``ratio`` builtin in an ``apply`` above -- every node plain
    algebra, so a partial answer containing the combine still unparses to
    OQL and resubmits.
    """

    name = "push-groupby-through-union"

    def apply(self, node: LogicalOp, capabilities: CapabilityResolver) -> list[LogicalOp]:
        if not isinstance(node, GroupBy) or not isinstance(node.child, Union):
            return []
        if any(_already_grouped(child) for child in node.child.inputs):
            return []
        variable = node.variable
        element = Var(variable)

        partial_aggregates: list[tuple[str, str, Expr]] = []
        combine_aggregates: list[tuple[str, str, Expr]] = []
        has_avg = False
        for name, func, arg in node.aggregates:
            if func == "avg":
                has_avg = True
                partial_aggregates.append((f"{name}__sum", "sum", arg))
                partial_aggregates.append((f"{name}__count", "count", arg))
                combine_aggregates.append(
                    (f"{name}__sum", "sum", Path(element, f"{name}__sum"))
                )
                combine_aggregates.append(
                    (f"{name}__count", "sum", Path(element, f"{name}__count"))
                )
            elif func in ("count", "sum"):
                partial_aggregates.append((name, func, arg))
                combine_aggregates.append((name, "sum", Path(element, name)))
            elif func in ("min", "max"):
                partial_aggregates.append((name, func, arg))
                combine_aggregates.append((name, func, Path(element, name)))
            else:
                return []

        branches = tuple(
            GroupBy(variable, node.keys, tuple(partial_aggregates), child)
            for child in node.child.inputs
        )
        combine_keys = tuple(
            (name, Path(element, name)) for name, _ in node.keys
        )
        combined: LogicalOp = GroupBy(
            variable, combine_keys, tuple(combine_aggregates), Union(branches)
        )
        if has_avg:
            fields: list[tuple[str, Expr]] = [
                (name, Path(element, name)) for name, _ in node.keys
            ]
            for name, func, _arg in node.aggregates:
                if func == "avg":
                    fields.append(
                        (
                            name,
                            FunctionCall(
                                "ratio",
                                (
                                    Path(element, f"{name}__sum"),
                                    Path(element, f"{name}__count"),
                                ),
                            ),
                        )
                    )
                else:
                    fields.append((name, Path(element, name)))
            combined = Apply(variable, StructExpr(tuple(fields)), combined)
        return [combined]


class CollapseNestedLimits:
    """``limit(a, limit(b, e))`` -> ``limit(min(a, b), e)``."""

    name = "collapse-nested-limits"

    def apply(self, node: LogicalOp, capabilities: CapabilityResolver) -> list[LogicalOp]:
        if not isinstance(node, Limit) or not isinstance(node.child, Limit):
            return []
        inner = node.child
        return [Limit(min(node.count, inner.count), inner.child)]


DEFAULT_RULES: tuple[TransformationRule, ...] = (
    PushConditionIntoBindJoin(),
    PushSelectThroughUnion(),
    PushProjectThroughUnion(),
    PushSelectIntoSubmit(),
    PushProjectIntoSubmit(),
    PushJoinIntoSubmit(),
    CommuteSelectProject(),
    CollapseNestedLimits(),
    PushLimitIntoSubmit(),
    PushLimitThroughProject(),
    PushLimitThroughApply(),
    PushLimitThroughUnion(),
    PushGroupByThroughUnion(),
    PushGroupByIntoSubmit(),
)

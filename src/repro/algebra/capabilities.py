"""Wrapper capability descriptions (paper Section 3.2).

A wrapper tells the mediator which logical operators it supports through the
``submit-functionality`` call.  The paper gives two representations:

* a flat set such as ``{get, project, compose}`` -- modelled by
  :class:`CapabilitySet`;
* a grammar whose terminals are the operators, which can additionally express
  whether operators *compose* -- modelled by :class:`CapabilityGrammar`.

Transformation rules consult these before pushing an operation into a
``submit``; the run-time system re-checks before calling a wrapper so an
illegal plan fails loudly rather than silently changing query semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.algebra.logical import (
    BagLiteral,
    Get,
    GroupBy,
    Join,
    Limit,
    LogicalOp,
    Project,
    Rename,
    Select,
    Union,
)

#: operator names a wrapper may support; ``apply`` is always mediator-side.
#: ``limit`` is the fetch-size terminal: a wrapper declaring it accepts a row
#: cap inside the submitted expression and stops producing server-side.
#: ``rename`` is the aliasing terminal (a project-with-aliases): the namespace
#: planner relies on it to keep colliding source attribute names apart when a
#: multi-extent expression is pushed to one source; wrappers that do not
#: declare it never receive aliased pushdowns (the executor splits the call
#: into per-leaf gets instead).
#: ``in`` is a *predicate vocabulary* terminal rather than a tree operator: a
#: wrapper declaring it accepts ``select`` predicates containing set-valued
#: membership tests (:class:`~repro.algebra.expressions.InList`), which is
#: what lets the mediator batch bind-join probe keys into one ``IN``-list
#: submit instead of one submit per key.
#: ``groupby`` is the summarization terminal: a wrapper declaring it accepts
#: grouped aggregation inside the submitted expression, so only group rows
#: (not raw extent rows) cross the wire; wrappers without it receive the
#: stripped expression and the mediator re-aggregates the shipped rows.
PUSHABLE_OPERATORS = (
    "get",
    "project",
    "select",
    "join",
    "union",
    "flatten",
    "limit",
    "rename",
    "in",
    "groupby",
)


@dataclass(frozen=True)
class CapabilitySet:
    """Flat description: which operators are supported, and whether they compose.

    ``compose=False`` reproduces the paper's restricted wrapper that
    "understands get and project of sources, but not the composition of these
    operations": each supported operator may only be applied directly to a
    source, never to the result of another operator.
    """

    operators: frozenset[str]
    compose: bool = True

    @classmethod
    def of(cls, *operators: str, compose: bool = True) -> "CapabilitySet":
        """Build a capability set from operator names."""
        unknown = [op for op in operators if op not in PUSHABLE_OPERATORS]
        if unknown:
            raise ValueError(f"unknown pushable operator(s) {unknown!r}")
        return cls(frozenset(operators), compose=compose)

    @classmethod
    def get_only(cls) -> "CapabilitySet":
        """The minimal wrapper: only ``get(source)``."""
        return cls.of("get")

    @classmethod
    def full(cls) -> "CapabilitySet":
        """A wrapper supporting every pushable operator with composition."""
        return cls(frozenset(PUSHABLE_OPERATORS), compose=True)

    def supports(self, operator: str) -> bool:
        """Return True when ``operator`` is in the supported set."""
        return operator in self.operators

    def to_grammar(self) -> "CapabilityGrammar":
        """Derive the equivalent grammar (the paper's second representation)."""
        return grammar_for(self.operators, compose=self.compose)


@dataclass(frozen=True)
class Production:
    """``head :- operator(child_symbols...)`` or an alias ``head :- symbol``.

    ``operator`` is None for alias productions.  ``child_symbols`` are either
    nonterminal names or the terminal ``"SOURCE"`` which matches a bare
    ``get(source)`` node (the paper's SOURCE terminal).
    """

    head: str
    operator: str | None
    child_symbols: tuple[str, ...] = ()

    def render(self) -> str:
        """Render in the paper's ``a :- project OPEN ... CLOSE`` style."""
        if self.operator is None:
            return f"{self.head} :- {self.child_symbols[0]}"
        parts: list[str] = []
        if self.operator == "project":
            parts = ["ATTRIBUTE", "COMMA", self.child_symbols[0]]
        elif self.operator == "select":
            parts = ["PREDICATE", "COMMA", self.child_symbols[0]]
        elif self.operator == "limit":
            parts = ["COUNT", "COMMA", self.child_symbols[0]]
        elif self.operator == "rename":
            parts = ["ALIASES", "COMMA", self.child_symbols[0]]
        elif self.operator == "groupby":
            parts = ["KEYS", "COMMA", "AGGREGATES", "COMMA", self.child_symbols[0]]
        elif self.operator == "in":
            parts = ["PATH", "COMMA", "VALUES"]
        elif self.operator == "join":
            parts = [self.child_symbols[0], "COMMA", self.child_symbols[1], "COMMA", "ATTRIBUTE"]
        elif self.operator in ("union", "flatten", "get"):
            parts = list(self.child_symbols)
        return f"{self.head} :- {self.operator} OPEN " + " ".join(parts) + " CLOSE"


@dataclass
class CapabilityGrammar:
    """A grammar over logical operator trees.

    ``accepts(expr)`` decides whether the wrapper can evaluate ``expr`` --
    exactly the legality check the mediator performs before pushing an
    expression through ``submit``.
    """

    start: str = "a"
    productions: tuple[Production, ...] = ()

    def _productions_for(self, head: str) -> list[Production]:
        return [production for production in self.productions if production.head == head]

    def accepts(self, expr: LogicalOp, symbol: str | None = None) -> bool:
        """Return True when ``expr`` is derivable from ``symbol`` (default: start)."""
        symbol = symbol or self.start
        if symbol == "SOURCE":
            return isinstance(expr, Get)
        for production in self._productions_for(symbol):
            if production.operator is None:
                if self.accepts(expr, production.child_symbols[0]):
                    return True
                continue
            if self._matches(expr, production):
                return True
        return False

    def _matches(self, expr: LogicalOp, production: Production) -> bool:
        operator = production.operator
        if operator == "get":
            return isinstance(expr, Get)
        if operator == "project":
            return isinstance(expr, Project) and self.accepts(
                expr.child, production.child_symbols[0]
            )
        if operator == "select":
            if not isinstance(expr, Select):
                return False
            if not self._predicate_vocabulary_ok(expr.predicate):
                return False
            return self.accepts(expr.child, production.child_symbols[0])
        if operator == "join":
            return (
                isinstance(expr, Join)
                and self.accepts(expr.left, production.child_symbols[0])
                and self.accepts(expr.right, production.child_symbols[1])
            )
        if operator == "union":
            return isinstance(expr, Union) and all(
                self.accepts(child, production.child_symbols[0]) for child in expr.inputs
            )
        if operator == "flatten":
            from repro.algebra.logical import Flatten

            return isinstance(expr, Flatten) and self.accepts(
                expr.child, production.child_symbols[0]
            )
        if operator == "limit":
            return isinstance(expr, Limit) and self.accepts(
                expr.child, production.child_symbols[0]
            )
        if operator == "rename":
            return isinstance(expr, Rename) and self.accepts(
                expr.child, production.child_symbols[0]
            )
        if operator == "groupby":
            return isinstance(expr, GroupBy) and self.accepts(
                expr.child, production.child_symbols[0]
            )
        if operator == "bag":
            return isinstance(expr, BagLiteral)
        return False

    def _predicate_vocabulary_ok(self, predicate) -> bool:
        """A pushed predicate may use ``in`` only when the grammar declares it."""
        from repro.algebra.expressions import InList, walk_expr

        if self.supports("in"):
            return True
        return not any(isinstance(node, InList) for node in walk_expr(predicate))

    def supported_operators(self) -> set[str]:
        """Operator names appearing in any production (the flat view)."""
        return {p.operator for p in self.productions if p.operator is not None}

    def supports(self, operator: str) -> bool:
        """Return True when some production mentions ``operator``."""
        return operator in self.supported_operators()

    def render(self) -> str:
        """Render every production, one per line, in the paper's notation."""
        return "\n".join(production.render() for production in self.productions)


def grammar_for(operators: Iterable[str], compose: bool = True) -> CapabilityGrammar:
    """Build the grammar for a set of supported operators.

    With ``compose=True`` the child symbol of every operator is the
    nonterminal ``s`` which can expand to any supported operator or SOURCE
    (the paper's composing grammar); with ``compose=False`` the child symbol
    is SOURCE itself (operators apply only directly to sources).
    """
    operators = set(operators)
    if "get" not in operators:
        # Every wrapper can at least retrieve a collection; the paper's
        # minimal example is {get}.
        operators.add("get")
    child = "s" if compose else "SOURCE"
    productions: list[Production] = []
    nonterminals: list[str] = []

    def add(head: str, operator: str, children: tuple[str, ...]) -> None:
        productions.append(Production(head=head, operator=operator, child_symbols=children))
        nonterminals.append(head)

    if "get" in operators:
        add("b", "get", ("SOURCE",))
    if "project" in operators:
        add("c", "project", (child,))
    if "select" in operators:
        add("d", "select", (child,))
    if "join" in operators:
        add("e", "join", (child, child))
    if "union" in operators:
        add("f", "union", (child,))
    if "flatten" in operators:
        add("g", "flatten", (child,))
    if "limit" in operators:
        add("h", "limit", (child,))
    if "rename" in operators:
        add("i", "rename", (child,))
    if "groupby" in operators:
        add("k", "groupby", (child,))

    in_productions: list[Production] = []
    if "in" in operators:
        # ``in`` is predicate vocabulary, not a tree shape: the production
        # exists so ``supports("in")`` and the rendered grammar advertise it,
        # but its head is deliberately left out of the alias/composition
        # nonterminals -- ``accepts`` never derives a tree from it.
        in_productions.append(Production(head="j", operator="in", child_symbols=()))

    alias_productions = [
        Production(head="a", operator=None, child_symbols=(head,)) for head in nonterminals
    ]
    composition_productions: list[Production] = []
    if compose:
        for head in nonterminals:
            composition_productions.append(
                Production(head="s", operator=None, child_symbols=(head,))
            )
        composition_productions.append(
            Production(head="s", operator=None, child_symbols=("SOURCE",))
        )
    return CapabilityGrammar(
        start="a",
        productions=tuple(
            alias_productions + productions + in_productions + composition_productions
        ),
    )

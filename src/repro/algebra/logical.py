"""Logical operators of the mediator's algebraic machine (paper Sections 3.1-3.2).

The operator set is the one the paper names -- ``get``, ``project``,
``select`` (filter), ``join``, ``union``, ``flatten`` -- plus two DISCO-specific
nodes:

* :class:`Submit` -- ``submit(source, expression)``: "the meaning of
  expression is located at source".  Its argument lives in the *mediator's*
  name space; the exec physical algorithm translates it into the source's
  name space using the extent's local transformation map.
* :class:`BagLiteral` -- data embedded inside a plan, which is how partial
  answers carry the rows already obtained from the available sources.

``Apply`` is the general per-element computation operator (struct
construction, arithmetic, aggregates over nested subqueries); it is never
pushed to a wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.algebra.expressions import Expr
from repro.datamodel.values import Bag


class LogicalOp:
    """Base class for logical operator nodes."""

    #: operator name used by capability grammars and transformation rules
    op_name: str = "logical"

    def children(self) -> tuple["LogicalOp", ...]:
        """Child operators, left to right."""
        return ()

    def with_children(self, children: Sequence["LogicalOp"]) -> "LogicalOp":
        """Return a copy of this node with ``children`` substituted."""
        if children:
            raise ValueError(f"{self.op_name} takes no children")
        return self

    def to_text(self) -> str:
        """Compact textual form, e.g. ``project(name, submit(r0, get(person0)))``."""
        raise NotImplementedError

    def operators_used(self) -> set[str]:
        """The set of operator names appearing in this subtree."""
        used = {self.op_name}
        for child in self.children():
            used |= child.operators_used()
        return used

    def contains_submit(self) -> bool:
        """Return True when a ``submit`` appears anywhere in the subtree."""
        return "submit" in self.operators_used()

    def __repr__(self) -> str:
        return self.to_text()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LogicalOp) and self.to_text() == other.to_text()

    def __hash__(self) -> int:
        return hash(self.to_text())


@dataclass(eq=False)
class Get(LogicalOp):
    """``get(collection)``: retrieve every object of a named collection."""

    collection: str
    op_name = "get"

    def to_text(self) -> str:
        return f"get({self.collection})"


@dataclass(eq=False)
class Submit(LogicalOp):
    """``submit(source, expression)``: evaluate ``expression`` at ``source``.

    ``extent_name`` identifies the MetaExtent whose wrapper/repository/map the
    exec algorithm will use; ``source`` keeps the repository name so the plan
    prints exactly like the paper's examples.
    """

    source: str
    expression: LogicalOp
    extent_name: str | None = None
    op_name = "submit"

    def children(self) -> tuple[LogicalOp, ...]:
        return (self.expression,)

    def with_children(self, children: Sequence[LogicalOp]) -> "Submit":
        (expression,) = children
        return Submit(self.source, expression, extent_name=self.extent_name)

    def to_text(self) -> str:
        return f"submit({self.source}, {self.expression.to_text()})"


@dataclass(eq=False)
class Project(LogicalOp):
    """``project(attributes, child)``: keep only the named attributes."""

    attributes: tuple[str, ...]
    child: LogicalOp
    op_name = "project"

    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOp]) -> "Project":
        (child,) = children
        return Project(self.attributes, child)

    def to_text(self) -> str:
        attrs = ",".join(self.attributes)
        return f"project({attrs}, {self.child.to_text()})"


@dataclass(eq=False)
class Select(LogicalOp):
    """``select(predicate, child)``: keep elements satisfying the predicate.

    ``variable`` names the element inside ``predicate`` (the paper's queries
    always range a variable over a collection).
    """

    variable: str
    predicate: Expr
    child: LogicalOp
    op_name = "select"

    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOp]) -> "Select":
        (child,) = children
        return Select(self.variable, self.predicate, child)

    def to_text(self) -> str:
        return f"select({self.variable}: {self.predicate.to_oql()}, {self.child.to_text()})"


@dataclass(eq=False)
class Apply(LogicalOp):
    """``apply(expr, child)``: compute ``expr`` for each element (mediator only)."""

    variable: str
    expression: Expr
    child: LogicalOp
    op_name = "apply"

    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOp]) -> "Apply":
        (child,) = children
        return Apply(self.variable, self.expression, child)

    def to_text(self) -> str:
        return f"apply({self.variable}: {self.expression.to_oql()}, {self.child.to_text()})"


@dataclass(eq=False)
class Rename(LogicalOp):
    """``rename(old as new, ..., child)``: project the input to aliased attributes.

    Each ``(old, new)`` pair reads attribute ``old`` of the input element and
    emits it as ``new``; the output element carries *exactly* the listed
    attributes (a project-with-aliases).  The mediator's namespace planner
    injects ``rename`` around the branches of a multi-extent pushdown when two
    extents of one source collide on a source attribute name, so that rows
    cross the submit boundary already uniquely named and the reverse
    (source-to-mediator) map is collision-free by construction.  Wrappers
    advertise the ``rename`` capability terminal when they can evaluate it
    (the SQL dialect renders it as ``AS``).
    """

    pairs: tuple[tuple[str, str], ...]
    child: LogicalOp
    op_name = "rename"

    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOp]) -> "Rename":
        (child,) = children
        return Rename(self.pairs, child)

    def output_attributes(self) -> tuple[str, ...]:
        """The attribute names this operator emits."""
        return tuple(new for _, new in self.pairs)

    def to_text(self) -> str:
        aliased = ",".join(
            old if old == new else f"{old} as {new}" for old, new in self.pairs
        )
        return f"rename({aliased}, {self.child.to_text()})"


@dataclass(eq=False)
class Join(LogicalOp):
    """``join(left, right, attribute)``: equi-join on a shared attribute.

    ``on`` is either one attribute name present on both sides (the paper's
    ``join(..., dept)``) or a ``(left_attribute, right_attribute)`` pair.
    """

    left: LogicalOp
    right: LogicalOp
    on: str | tuple[str, str]
    left_variable: str = "l"
    right_variable: str = "r"
    op_name = "join"

    def children(self) -> tuple[LogicalOp, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[LogicalOp]) -> "Join":
        left, right = children
        return Join(
            left,
            right,
            self.on,
            left_variable=self.left_variable,
            right_variable=self.right_variable,
        )

    def join_attributes(self) -> tuple[str, str]:
        """Return the ``(left_attribute, right_attribute)`` pair."""
        if isinstance(self.on, tuple):
            return self.on
        return (self.on, self.on)

    def to_text(self) -> str:
        on = self.on if isinstance(self.on, str) else f"{self.on[0]}={self.on[1]}"
        return f"join({self.left.to_text()}, {self.right.to_text()}, {on})"


@dataclass(eq=False)
class BindJoin(LogicalOp):
    """Mediator-side join over *variable bindings* (multi-variable ``from`` clauses).

    ``from x in person0 and y in person1`` binds two variables; the element
    produced by this operator is an environment mapping each variable name to
    its row, so that select items such as ``x.salary + y.salary`` (the paper's
    ``double`` reconciliation view) remain unambiguous.  ``condition`` is an
    optional predicate over both variables; the run-time system turns an
    equi-join conjunct into a hash join and falls back to nested loops.

    BindJoin never crosses the wrapper boundary -- it is not part of the
    pushable operator vocabulary.
    """

    left: LogicalOp
    right: LogicalOp
    left_variable: str
    right_variable: str
    condition: Expr | None = None
    op_name = "bindjoin"

    def children(self) -> tuple[LogicalOp, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[LogicalOp]) -> "BindJoin":
        left, right = children
        return BindJoin(
            left,
            right,
            self.left_variable,
            self.right_variable,
            condition=self.condition,
        )

    def to_text(self) -> str:
        condition = self.condition.to_oql() if self.condition is not None else "true"
        return (
            f"bindjoin({self.left_variable}: {self.left.to_text()}, "
            f"{self.right_variable}: {self.right.to_text()}, {condition})"
        )


@dataclass(eq=False)
class Union(LogicalOp):
    """``union(e1, ..., en)``: n-ary additive bag union."""

    inputs: tuple[LogicalOp, ...]
    op_name = "union"

    def children(self) -> tuple[LogicalOp, ...]:
        return self.inputs

    def with_children(self, children: Sequence[LogicalOp]) -> "Union":
        return Union(tuple(children))

    def to_text(self) -> str:
        return "union(" + ", ".join(child.to_text() for child in self.inputs) + ")"


@dataclass(eq=False)
class Flatten(LogicalOp):
    """``flatten(child)``: flatten a bag of bags one level."""

    child: LogicalOp
    op_name = "flatten"

    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOp]) -> "Flatten":
        (child,) = children
        return Flatten(child)

    def to_text(self) -> str:
        return f"flatten({self.child.to_text()})"


@dataclass(eq=False)
class Distinct(LogicalOp):
    """``distinct(child)``: drop duplicate elements (the OQL ``select distinct``)."""

    child: LogicalOp
    op_name = "distinct"

    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOp]) -> "Distinct":
        (child,) = children
        return Distinct(child)

    def to_text(self) -> str:
        return f"distinct({self.child.to_text()})"


@dataclass(eq=False)
class Limit(LogicalOp):
    """``limit(n, child)``: keep at most the first ``n`` elements.

    Bags are unordered, so "first" means "first produced by the child" --
    any ``n`` elements are a correct answer.  Limit is a mediator-side
    operator (it is not part of the pushable wrapper vocabulary), but the
    rewrite rules push it through projections and unions so that, under the
    streaming engine, early termination cancels upstream work.
    """

    count: int
    child: LogicalOp
    op_name = "limit"

    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOp]) -> "Limit":
        (child,) = children
        return Limit(self.count, child)

    def to_text(self) -> str:
        return f"limit({self.count}, {self.child.to_text()})"


@dataclass(eq=False)
class GroupBy(LogicalOp):
    """``groupby(keys; aggregates, child)``: grouped aggregation.

    ``variable`` names the input element inside the key and aggregate
    expressions.  ``keys`` is a tuple of ``(name, expression)`` pairs -- the
    grouping attributes of the output rows; ``aggregates`` is a tuple of
    ``(name, function, argument)`` triples with ``function`` one of
    ``count``/``sum``/``min``/``max``/``avg``.  Each output row is a struct
    carrying exactly the key names plus the aggregate names, one row per
    distinct key combination (in first-seen order).  With *no* keys the
    operator always emits exactly one row, even over an empty input
    (``count`` 0, the other aggregates ``nil``) -- the scalar-aggregate
    convention SQL shares.

    Aggregate NULL semantics (shared with the mini-SQL engine so pushed and
    compensated plans agree): ``count`` counts rows whose argument is not
    ``nil`` (a bare variable argument counts every row -- ``COUNT(*)``);
    ``sum``/``min``/``max``/``avg`` skip ``nil`` values and yield ``nil``
    when no value survives.
    """

    variable: str
    keys: tuple[tuple[str, Expr], ...]
    aggregates: tuple[tuple[str, str, Expr], ...]
    child: LogicalOp
    op_name = "groupby"

    def children(self) -> tuple[LogicalOp, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOp]) -> "GroupBy":
        (child,) = children
        return GroupBy(self.variable, self.keys, self.aggregates, child)

    def output_attributes(self) -> tuple[str, ...]:
        """The attribute names this operator emits (keys first)."""
        return tuple(name for name, _ in self.keys) + tuple(
            name for name, _func, _arg in self.aggregates
        )

    def to_text(self) -> str:
        keys = ",".join(f"{name}: {expr.to_oql()}" for name, expr in self.keys)
        aggs = ",".join(
            f"{name}: {func}({arg.to_oql()})" for name, func, arg in self.aggregates
        )
        return f"groupby({self.variable}: [{keys}] [{aggs}], {self.child.to_text()})"


@dataclass(eq=False)
class BagLiteral(LogicalOp):
    """Literal data inside a plan (the second argument of a partial answer)."""

    values: tuple[Any, ...] = ()
    op_name = "bag"

    @classmethod
    def from_bag(cls, bag: Bag | Iterable[Any]) -> "BagLiteral":
        """Build a literal from an existing bag or iterable."""
        return cls(tuple(bag))

    def to_bag(self) -> Bag:
        """Return the literal's contents as a bag."""
        return Bag(self.values)

    def to_text(self) -> str:
        return "Bag(" + ", ".join(repr(value) for value in self.values) + ")"


# -- tree utilities ------------------------------------------------------------------
def walk(node: LogicalOp) -> Iterable[LogicalOp]:
    """Yield every node of the tree, parents before children."""
    yield node
    for child in node.children():
        yield from walk(child)


def transform_bottom_up(node: LogicalOp, visit) -> LogicalOp:
    """Rebuild the tree bottom-up, replacing each node with ``visit(node)``."""
    children = node.children()
    if children:
        node = node.with_children([transform_bottom_up(child, visit) for child in children])
    return visit(node)


def submits_in(node: LogicalOp) -> list[Submit]:
    """Return every ``submit`` node in the tree, in pre-order."""
    return [candidate for candidate in walk(node) if isinstance(candidate, Submit)]


def sources_referenced(node: LogicalOp) -> set[str]:
    """Names of every repository referenced by ``submit`` nodes in the tree."""
    return {submit.source for submit in submits_in(node)}

"""Exception hierarchy shared by every DISCO subsystem.

The paper distinguishes several failure classes that surface to different
users: parse errors (DBI/DBA mistakes in ODL or OQL text), type conflicts
between a mediator type and a data-source type (resolved by maps, Section
2.2.2), capability violations (a logical expression pushed to a wrapper that
the wrapper's grammar does not accept, Section 3.2), and unavailable data
sources (Section 4).  Each gets its own exception so callers can react
differently: unavailability, in particular, is *not* an error for the
mediator -- it triggers partial evaluation.
"""

from __future__ import annotations


class DiscoError(Exception):
    """Base class for every error raised by the repro package."""


class ParseError(DiscoError):
    """Raised when ODL or OQL text cannot be parsed.

    Carries the offending line/column so tooling can point at the source.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class NameResolutionError(DiscoError):
    """An identifier in a query does not name any extent, view, type or attribute."""


class TypeConflictError(DiscoError):
    """The mediator type and the data-source type disagree.

    The paper (Section 2.2.2) specifies that this is detected at run time by
    the wrapper, and that the DBA resolves it with a local transformation map.
    """


class SchemaError(DiscoError):
    """Invalid schema definition: duplicate interface, unknown supertype, cyclic view, ..."""


class CapabilityError(DiscoError):
    """A logical expression was submitted to a wrapper whose grammar rejects it.

    Transformation rules are supposed to prevent this (Section 3.2); raising it
    therefore indicates an optimizer bug or a hand-built plan that violates the
    wrapper's declared functionality.
    """


class UnavailableSourceError(DiscoError):
    """A data source did not respond within the designated time period.

    The run-time system converts this into a partial answer rather than
    propagating it to the user (Section 4).
    """

    def __init__(self, source_name: str, message: str | None = None):
        super().__init__(message or f"data source {source_name!r} is unavailable")
        self.source_name = source_name


class WrapperError(DiscoError):
    """A wrapper failed while translating or executing a submitted expression."""


class AdmissionError(DiscoError):
    """A query was refused by admission control instead of being executed.

    Raised by the serving layer (and by an :class:`~repro.runtime.admission.
    AdmissionController`-equipped executor) when the in-flight budget and the
    wait queue are both full, or when a query's deadline expires while it is
    still queued.  ``verdict`` is the machine-readable reason -- one of
    ``"rejected"`` (queue full) or ``"queue timeout"`` (deadline passed
    before a slot freed up).
    """

    def __init__(self, message: str, verdict: str = "rejected"):
        super().__init__(message)
        self.verdict = verdict


class QueryExecutionError(DiscoError):
    """The run-time system could not evaluate a physical plan."""


class OptimizationError(DiscoError):
    """The optimizer could not produce any legal physical plan for a query."""


class ViewDefinitionError(SchemaError):
    """A view (``define ... as``) is malformed or introduces a cyclic reference."""


class RepositoryError(DiscoError):
    """A repository address is malformed or the repository rejected a connection."""

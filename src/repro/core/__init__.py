"""The DISCO mediator itself (the paper's primary contribution).

* :class:`~repro.core.registry.Registry` -- the mediator's internal database:
  types, extents (MetaExtent objects), views, repositories and wrappers, plus
  the name resolution the binder needs;
* :class:`~repro.core.planner.QueryPlanner` -- the parse / bind / translate /
  optimize pipeline of Prototype 0 (Figure 2);
* :class:`~repro.core.mediator.Mediator` -- the façade applications talk to:
  ODL loading, extent management, OQL queries, partial answers, explain;
* :class:`~repro.core.result.QueryResult` -- answers, which may be partial
  (i.e. queries);
* :class:`~repro.core.catalog.Catalog` -- the special mediator that keeps
  track of databases, wrappers and mediators in the system;
* :class:`~repro.core.session.Session` -- a light application-side handle.
"""

from repro.core.registry import Registry
from repro.core.planner import QueryPlanner, PlannedQuery
from repro.core.result import QueryResult
from repro.core.mediator import Mediator
from repro.core.catalog import Catalog
from repro.core.session import Session

__all__ = [
    "Registry",
    "QueryPlanner",
    "PlannedQuery",
    "QueryResult",
    "Mediator",
    "Catalog",
    "Session",
]

"""Query results, including partial answers.

"The answer to a query may be another query" (Section 1.3).  A
:class:`QueryResult` therefore carries either data (a bag, or a scalar for
aggregate queries) or a partial answer: the OQL text and the logical plan of
the query that remains to be evaluated, with the data already obtained
embedded in it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.algebra.logical import LogicalOp
from repro.datamodel.values import Bag
from repro.runtime.executor import ExecReport, collect_errors


@dataclass
class QueryResult:
    """The answer returned by :meth:`Mediator.query`."""

    query_text: str
    data: Any = field(default_factory=Bag)
    is_partial: bool = False
    partial_query: str | None = None
    partial_plan: LogicalOp | None = None
    unavailable_sources: tuple[str, ...] = ()
    reports: tuple[ExecReport, ...] = ()
    estimated_cost: float | None = None
    logical_plan: str | None = None
    physical_plan: str | None = None
    from_plan_cache: bool = False

    def answer(self) -> Any:
        """The user-facing answer: data when complete, the partial query otherwise."""
        return self.partial_query if self.is_partial else self.data

    def complete(self) -> bool:
        """True when every referenced data source answered."""
        return not self.is_partial

    def errors(self) -> dict[str, str]:
        """Why each unavailable source failed, keyed by extent name.

        Timeouts read "timed out after ...s"; wrapper crashes carry the
        exception type and message.  Empty for complete answers.
        """
        return collect_errors(self.reports)

    def rows(self) -> list[Any]:
        """The data as a list (empty for partial answers)."""
        if isinstance(self.data, Bag):
            return self.data.to_list()
        return [self.data]

    def sources_contacted(self) -> int:
        """Number of exec calls issued for this query."""
        return len(self.reports)

    def __repr__(self) -> str:
        if self.is_partial:
            return f"QueryResult(partial, unavailable={list(self.unavailable_sources)})"
        return f"QueryResult(data={self.data!r})"

"""Query results, including partial answers and incremental (streaming) results.

"The answer to a query may be another query" (Section 1.3).  A
:class:`QueryResult` therefore carries either data (a bag, or a scalar for
aggregate queries) or a partial answer: the OQL text and the logical plan of
the query that remains to be evaluated, with the data already obtained
embedded in it.

A result produced by ``Mediator.query_stream`` additionally carries a live
:class:`~repro.runtime.streaming.StreamingExecution`.  ``iter_rows()`` then
yields rows *incrementally*, as sources answer, while the materialized
surface (``rows()``, ``answer()``, ``data``) keeps its contract by draining
the stream on first use.  Iteration is replayable -- the stream buffers what
it has yielded -- so calling ``iter_rows()`` and later ``rows()`` never
consumes a pipeline generator twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.algebra.logical import LogicalOp
from repro.datamodel.values import Bag
from repro.runtime.executor import ExecReport, collect_errors


@dataclass
class QueryResult:
    """The answer returned by :meth:`Mediator.query` / :meth:`Mediator.query_stream`."""

    query_text: str
    data: Any = field(default_factory=Bag)
    is_partial: bool = False
    partial_query: str | None = None
    partial_plan: LogicalOp | None = None
    unavailable_sources: tuple[str, ...] = ()
    reports: tuple[ExecReport, ...] = ()
    estimated_cost: float | None = None
    logical_plan: str | None = None
    physical_plan: str | None = None
    from_plan_cache: bool = False
    #: True when the rows were served by the mediator's answer cache (an
    #: exact hit, a subsumption replay, or a patched partial answer) rather
    #: than by a fresh execution.
    from_answer_cache: bool = False
    #: live streaming execution for results of ``query_stream`` (None for
    #: materialized results); excluded from equality -- two results are the
    #: same answer regardless of how the rows were delivered.
    stream: Any | None = field(default=None, repr=False, compare=False)

    # -- the incremental surface ---------------------------------------------------------
    def iter_rows(self) -> Iterator[Any]:
        """Yield the answer's rows one at a time.

        For a streaming result the rows appear as sources answer -- the
        first row of a fast source arrives while slow sources are still in
        flight.  Pausing the iteration leaves the stream open and resumable
        (``rows()`` later still sees everything); a satisfied ``limit`` or an
        explicit :meth:`close` cancels the remaining work.  For a
        materialized result this simply iterates the data.  Repeatable: a
        second call replays the same rows.
        """
        if self.stream is not None:
            for row in self.stream:
                yield row
            self._sync_from_stream()
            return
        yield from self.rows()

    def _sync_from_stream(self) -> None:
        """Fold the finished stream's outcome into the materialized fields.

        Detaches the stream afterwards, so every later call takes the plain
        materialized path instead of re-draining the buffer.  An *aborted*
        stream (mediator-side error) is never folded in -- it stays attached
        so re-consumption re-raises instead of presenting the delivered
        prefix as a complete answer.
        """
        stream = self.stream
        if stream is None or not stream.finished or stream.failure is not None:
            return
        self.data = Bag(stream.to_list())
        self.reports = stream.reports
        self.unavailable_sources = stream.unavailable_sources
        self.is_partial = stream.is_partial
        self.stream = None

    # -- the materialized surface --------------------------------------------------------
    def answer(self) -> Any:
        """The user-facing answer: data when complete, the partial query otherwise.

        A streaming result is drained first; its answer is always the data
        (rows already delivered cannot be folded back into a partial query).
        """
        if self.stream is not None:
            self.rows()
            return self.data
        return self.partial_query if self.is_partial else self.data

    def complete(self) -> bool:
        """True when every referenced data source answered (drains a stream)."""
        if self.stream is not None:
            self.rows()
        return not self.is_partial

    def errors(self) -> dict[str, str]:
        """Why each unavailable source failed, keyed by extent name.

        Timeouts read "timed out after ...s"; wrapper crashes carry the
        exception type and message.  Empty for complete answers.  On a
        streaming result this reflects the failures observed *so far*; after
        the stream ends it is final -- a source that died mid-stream is
        reported here even though earlier rows were delivered.
        """
        if self.stream is not None:
            return self.stream.errors()
        return collect_errors(self.reports)

    def rows(self) -> list[Any]:
        """The data as a list (empty for partial answers; drains a stream)."""
        if self.stream is not None:
            rows = self.stream.to_list()
            self._sync_from_stream()
            return rows
        if isinstance(self.data, Bag):
            return self.data.to_list()
        return [self.data]

    def sources_contacted(self) -> int:
        """Number of exec calls issued for this query."""
        if self.stream is not None:
            return self.stream.calls_issued
        return len(self.reports)

    def close(self) -> None:
        """Stop a streaming result early, cancelling in-flight source calls.

        No-op for materialized results and finished streams.
        """
        if self.stream is not None:
            self.stream.close()
            self._sync_from_stream()

    def __repr__(self) -> str:
        if self.stream is not None and not self.stream.finished:
            return f"QueryResult(streaming, {self.query_text!r})"
        if self.is_partial:
            return f"QueryResult(partial, unavailable={list(self.unavailable_sources)})"
        return f"QueryResult(data={self.data!r})"

"""The catalog: a special mediator tracking the components of the system.

Paper Section 1.1: "special mediators, catalogs, keep track of collections of
databases, wrappers, and mediators in the system.  Catalogs do not have total
knowledge of all elements of the system; however, they provide an overview of
the entire system."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.mediator import Mediator
from repro.datamodel.repository import Repository


@dataclass
class CatalogEntry:
    """One registered component and its self-description."""

    kind: str  # "mediator", "wrapper", "repository"
    name: str
    description: dict[str, Any] = field(default_factory=dict)


class Catalog:
    """Registry of mediators, wrappers and repositories in one deployment."""

    def __init__(self, name: str = "catalog"):
        self.name = name
        self._entries: dict[tuple[str, str], CatalogEntry] = {}

    # -- registration -------------------------------------------------------------------
    def register_mediator(self, mediator: Mediator) -> CatalogEntry:
        """Record a mediator and a snapshot of its schema."""
        entry = CatalogEntry(kind="mediator", name=mediator.name, description=mediator.describe())
        self._entries[("mediator", mediator.name)] = entry
        return entry

    def register_wrapper(self, name: str, wrapper: Any) -> CatalogEntry:
        """Record a wrapper type available to DBAs."""
        describe = getattr(wrapper, "describe", None)
        description = describe() if callable(describe) else {"name": name}
        entry = CatalogEntry(kind="wrapper", name=name, description=description)
        self._entries[("wrapper", name)] = entry
        return entry

    def register_repository(self, repository: Repository) -> CatalogEntry:
        """Record a repository reachable in the deployment."""
        entry = CatalogEntry(
            kind="repository", name=repository.name, description=repository.describe()
        )
        self._entries[("repository", repository.name)] = entry
        return entry

    # -- lookup -----------------------------------------------------------------------------
    def mediators(self) -> list[CatalogEntry]:
        """Every registered mediator."""
        return [entry for entry in self._entries.values() if entry.kind == "mediator"]

    def wrappers(self) -> list[CatalogEntry]:
        """Every registered wrapper."""
        return [entry for entry in self._entries.values() if entry.kind == "wrapper"]

    def repositories(self) -> list[CatalogEntry]:
        """Every registered repository."""
        return [entry for entry in self._entries.values() if entry.kind == "repository"]

    def find(self, kind: str, name: str) -> CatalogEntry | None:
        """Return the entry of ``kind`` called ``name``, or None."""
        return self._entries.get((kind, name))

    def mediators_serving_interface(self, interface_name: str) -> list[str]:
        """Names of mediators whose schema defines ``interface_name``.

        This is the overview function a DBA uses to find where a type of data
        lives before combining mediators.
        """
        matches = []
        for entry in self.mediators():
            if interface_name in entry.description.get("interfaces", []):
                matches.append(entry.name)
        return matches

    def overview(self) -> dict[str, list[str]]:
        """A compact overview of the whole deployment."""
        return {
            "mediators": [entry.name for entry in self.mediators()],
            "wrappers": [entry.name for entry in self.wrappers()],
            "repositories": [entry.name for entry in self.repositories()],
        }

"""Application-side sessions.

A thin convenience layer for the "application (A)" boxes of Figure 1: it keeps
a history of issued queries and offers a retry helper that re-submits partial
answers until they are complete or the retry budget runs out (the paper notes
"the user may always simply issue the original query again").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.mediator import Mediator
from repro.core.result import QueryResult


@dataclass
class Session:
    """One application's connection to a mediator."""

    mediator: Mediator
    history: list[QueryResult] = field(default_factory=list)

    def query(self, text: str, timeout: float | None = None) -> QueryResult:
        """Run a query and remember its result."""
        result = self.mediator.query(text, timeout=timeout)
        self.history.append(result)
        return result

    def query_with_retry(
        self, text: str, retries: int = 3, timeout: float | None = None
    ) -> QueryResult:
        """Run a query; if the answer is partial, re-submit it up to ``retries`` times."""
        result = self.query(text, timeout=timeout)
        attempts = 0
        while result.is_partial and attempts < retries:
            result = self.mediator.resubmit(result, timeout=timeout)
            self.history.append(result)
            attempts += 1
        return result

    def last(self) -> QueryResult | None:
        """The most recent result, if any."""
        return self.history[-1] if self.history else None

    def partial_answers(self) -> list[QueryResult]:
        """Every partial answer seen in this session."""
        return [result for result in self.history if result.is_partial]

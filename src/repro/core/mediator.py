"""The DISCO mediator façade.

One :class:`Mediator` bundles the components of Prototype 0 (Figure 2): the
ODL and OQL parsers, the internal database (registry), the query optimizer and
the run-time system that calls wrappers.  Applications and other mediators
only ever talk to this class.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.core.planner import PlannedQuery, QueryPlanner
from repro.core.registry import Registry
from repro.core.result import QueryResult
from repro.datamodel.mapping import LocalTransformationMap
from repro.datamodel.repository import Repository
from repro.datamodel.types import AttributeSpec, InterfaceType, PrimitiveType
from repro.datamodel.values import Bag
from repro.errors import QueryExecutionError
from repro.odl.loader import OdlLoader
from repro.oql.ast import DefineStatement, ExprQuery
from repro.oql.parser import parse_statement
from repro.optimizer.history import ExecCallHistory
from repro.optimizer.implementation import implement
from repro.runtime.answercache import AnswerCache, CacheEntry, replay_deltas
from repro.runtime.executor import Executor, ExecutorConfig


class Mediator:
    """A DISCO mediator: uniform OQL access to heterogeneous data sources."""

    def __init__(
        self,
        name: str = "disco",
        timeout: float | None = 5.0,
        type_check: bool = True,
        use_plan_cache: bool = True,
        max_parallel_calls: int = 16,
        max_retries: int = 0,
        max_resumes: int | None = None,
        max_concurrent_queries: int | None = None,
        admission_queue_depth: int | None = None,
        bind_batch_size: int = 256,
        replan_blowup_factor: float | None = 8.0,
        answer_cache: "AnswerCache | bool | None" = None,
    ):
        self.name = name
        # answer_cache=True builds one with defaults; an AnswerCache instance
        # is used as-is (and may be shared); None/False turns caching off.
        if answer_cache is True:
            answer_cache = AnswerCache()
        elif answer_cache is False:
            answer_cache = None
        self.answer_cache: AnswerCache | None = answer_cache
        self.registry = Registry()
        self.history = ExecCallHistory()
        self.planner = QueryPlanner(
            self.registry, history=self.history, use_plan_cache=use_plan_cache
        )
        self.executor = Executor(
            self.registry,
            history=self.history,
            config=ExecutorConfig(
                timeout=timeout,
                type_check=type_check,
                max_parallel_calls=max_parallel_calls,
                max_retries=max_retries,
                max_resumes=max_resumes,
                max_concurrent_queries=max_concurrent_queries,
                admission_queue_depth=admission_queue_depth,
                bind_batch_size=bind_batch_size,
                replan_blowup_factor=replan_blowup_factor,
            ),
            subquery_planner=self.planner.logical_for_bound,
        )
        self.odl_loader = OdlLoader(self.registry)

    # -- lifecycle ----------------------------------------------------------------------------
    def close(self, drain: bool = False, timeout: float | None = None) -> None:
        """Release the executor's shared thread pool.

        By default in-flight queries are *cancelled*: their source calls are
        written off cooperatively (each degrades into a partial answer or a
        finished stream -- no exception is raised into another thread's
        query) and the pool's workers are joined, so no threads leak.
        ``drain=True`` instead waits up to ``timeout`` seconds (``None`` =
        forever) for in-flight queries and streams to complete first.

        A mediator remains usable after ``close()`` -- the next query simply
        recreates the pool -- so this is safe to call from ``finally`` blocks
        and context-manager exits.
        """
        self.executor.close(drain=drain, timeout=timeout)

    def serve(self, **config: Any):
        """Start a :class:`~repro.serving.MediatorServer` over this mediator.

        Keyword arguments populate :class:`~repro.serving.ServerConfig`
        (worker count, queue depth, stream buffering, ...).  The server owns
        admission and fairness for concurrent clients; close it before (or
        instead of) closing the mediator.
        """
        from repro.serving import MediatorServer, ServerConfig  # local: avoid cycle

        return MediatorServer(self, config=ServerConfig(**config))

    def __enter__(self) -> "Mediator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- DBA interface: definitions -----------------------------------------------------------
    def load_odl(self, text: str) -> list[object]:
        """Load ODL declarations (interfaces, extents, views, repositories)."""
        return self.odl_loader.load(text)

    def define_interface(
        self,
        name: str,
        attributes: Iterable[tuple[str, str]] = (),
        supertype: str | None = None,
        extent_name: str | None = None,
    ) -> InterfaceType:
        """Programmatic equivalent of an ODL ``interface`` declaration."""
        specs = tuple(
            AttributeSpec(attr_name, PrimitiveType.from_name(attr_type))
            for attr_name, attr_type in attributes
        )
        return self.registry.define_interface(
            InterfaceType(
                name=name, attributes=specs, supertype=supertype, extent_name=extent_name
            )
        )

    def create_repository(self, name: str, host: str = "localhost", address: str = "", **properties) -> Repository:
        """Create and register a Repository object (``r0 := Repository(...)``)."""
        repository = Repository(
            name=name, host=host, address=address, properties=dict(properties)
        )
        return self.registry.add_repository(repository)

    def register_repository(self, repository: Repository) -> Repository:
        """Register an existing Repository object."""
        return self.registry.add_repository(repository)

    def register_wrapper(self, name: str, wrapper: Any) -> Any:
        """Register a wrapper object (``w0 := WrapperPostgres()``)."""
        return self.registry.add_wrapper(name, wrapper)

    def add_extent(
        self,
        name: str,
        interface: str,
        wrapper: str,
        repository: str,
        map: LocalTransformationMap | None = None,
        source_collection: str | None = None,
    ):
        """``extent <name> of <interface> wrapper <w> repository <r> [map ...];``"""
        meta = self.registry.add_extent(
            name,
            interface,
            wrapper,
            repository,
            map=map,
            source_collection=source_collection,
        )
        self.executor.invalidate_type_checks()
        if self.answer_cache is not None:
            # Eager per-extent eviction on *re*-registration; the version
            # bump already makes every entry unreachable lazily.
            self.answer_cache.invalidate_extent(name)
        return meta

    def drop_extent(self, name: str) -> None:
        """Remove an extent declaration."""
        self.registry.drop_extent(name)
        self.executor.invalidate_type_checks()
        if self.answer_cache is not None:
            self.answer_cache.invalidate_extent(name)

    def define_view(self, name: str, query_text: str):
        """``define <name> as <query>;``"""
        return self.registry.define_view_text(name, query_text)

    def execute_statement(self, text: str) -> Any:
        """Execute one OQL statement: a ``define`` updates the schema, a query runs."""
        statement = parse_statement(text)
        if isinstance(statement, DefineStatement):
            return self.define_view(statement.name, statement.query.to_oql())
        return self.query(text)

    # -- application interface: queries ------------------------------------------------------------
    def query(
        self, text: str, timeout: float | None = None, priority: float = 1.0
    ) -> QueryResult:
        """Evaluate an OQL query and return its (possibly partial) answer.

        ``priority`` matters only under admission control
        (``max_concurrent_queries``): queued queries are scheduled
        weighted-fair by priority class, and higher priorities get
        proportionally more slots under contention.

        With an answer cache configured (``answer_cache=``), the query is
        first served from cached answers: an exact hit or a subsumption
        replay returns without any wrapper call, and a cached *partial*
        answer is patched by re-contacting only its missing extents (see
        :mod:`repro.runtime.answercache`).
        """
        cache = self.answer_cache
        if cache is None:
            planned = self.planner.plan(text)
            return self._run(planned, timeout=timeout, priority=priority)
        version = self.registry.schema_version
        entry = cache.get_exact(text, version)
        if entry is not None:
            if entry.complete:
                return QueryResult(
                    query_text=text, data=Bag(entry.rows), from_answer_cache=True
                )
            patched = self._patch_partial(
                text, entry, timeout=timeout, priority=priority
            )
            if patched is not None:
                return patched
            version = self.registry.schema_version
        planned = self.planner.plan(text)
        if planned.is_scalar or planned.logical is None:
            # Scalars have no row answer to cache; run them directly.
            return self._run(planned, timeout=timeout, priority=priority)
        subsumed = cache.find_subsumer(planned.logical, version)
        if subsumed is not None:
            superset, deltas = subsumed
            rows = replay_deltas(deltas, superset.rows or ())
            # Promote the replayed answer to its own entry: the next
            # identical query is then an O(1) exact hit.
            cache.store_complete(text, planned.logical, superset.schema_version, rows)
            return QueryResult(
                query_text=text,
                data=Bag(rows),
                logical_plan=planned.logical.to_text(),
                from_answer_cache=True,
            )
        cache.note_miss()
        result = self._run(planned, timeout=timeout, priority=priority)
        # Store under the version snapshotted *before* planning, and only if
        # it still holds (the planner's own discipline): a schema change
        # mid-flight means the answer may mix old and new resolutions.
        if self.registry.schema_version == version:
            if not result.is_partial:
                cache.store_complete(
                    text, planned.logical, version, tuple(result.rows())
                )
            elif result.partial_plan is not None:
                cache.store_partial(
                    text,
                    planned.logical,
                    version,
                    partial_plan=result.partial_plan,
                    partial_query=result.partial_query,
                    unavailable_sources=result.unavailable_sources,
                )
        return result

    def _patch_partial(
        self,
        text: str,
        entry: CacheEntry,
        timeout: float | None = None,
        priority: float = 1.0,
    ) -> QueryResult | None:
        """Repair a cached partial answer by re-running only its missing extents.

        The resubmission is *pinned* to the entry's ``schema_version``: if
        the registry moved between the miss and the patch -- or while the
        patch was executing -- the embedded rows may describe extents that no
        longer exist (or resolve differently), so the entry is dropped and
        the caller falls back to a full run (returns None).
        """
        if entry.partial_plan is None:
            return None
        if self.registry.schema_version != entry.schema_version:
            self.answer_cache.drop(text)
            return None
        physical = implement(entry.partial_plan)
        execution = self.executor.execute(physical, timeout=timeout, priority=priority)
        if self.registry.schema_version != entry.schema_version:
            # Mutated mid-patch: the rows just computed straddle two schemas.
            self.answer_cache.drop(text)
            return None
        self.answer_cache.note_patch()
        planned_logical = entry.partial_plan
        if not execution.is_partial:
            self.answer_cache.store_complete(
                text,
                None,
                entry.schema_version,
                tuple(execution.data.to_list()),
                extents=entry.extents,
            )
        else:
            if execution.partial_plan is not None:
                self.answer_cache.store_partial(
                    text,
                    None,
                    entry.schema_version,
                    partial_plan=execution.partial_plan,
                    partial_query=execution.partial_query,
                    unavailable_sources=execution.unavailable_sources,
                    extents=entry.extents,
                )
        return QueryResult(
            query_text=text,
            data=execution.data,
            is_partial=execution.is_partial,
            partial_query=execution.partial_query,
            partial_plan=execution.partial_plan,
            unavailable_sources=execution.unavailable_sources,
            reports=execution.reports,
            logical_plan=planned_logical.to_text(),
            physical_plan=physical.to_text(),
            from_answer_cache=True,
        )

    def query_stream(
        self, text: str, timeout: float | None = None, priority: float = 1.0
    ) -> QueryResult:
        """Evaluate an OQL query with the streaming engine.

        Returns immediately; the result's :meth:`~QueryResult.iter_rows`
        yields rows incrementally as sources answer (union branches stream
        in completion order, so the first row tracks the fastest source).
        A satisfied ``limit`` -- or an explicit ``result.close()`` -- cancels
        the in-flight source calls cooperatively; merely pausing the
        iteration leaves the stream open and resumable.  The materialized
        surface (``rows()``, ``answer()``) still works: it drains the stream
        first.

        Failures degrade per source, as always: a source that times out or
        dies mid-stream contributes no further rows and is reported through
        ``errors()`` / ``unavailable_sources`` once the stream ends.  Unlike
        :meth:`query`, no resubmittable partial query is built -- rows
        already delivered cannot be embedded back into one.

        Scalar queries have no row pipeline and are returned materialized.

        An exact answer-cache hit is served materialized too (the rows are
        already local, there is nothing to stream); subsumption and partial
        patching are barrier-only, and streamed answers are never stored
        (rows already delivered cannot be re-materialized faithfully).
        """
        cache = self.answer_cache
        if cache is not None:
            entry = cache.get_exact(text, self.registry.schema_version)
            if entry is not None and entry.complete:
                return QueryResult(
                    query_text=text, data=Bag(entry.rows), from_answer_cache=True
                )
        planned = self.planner.plan(text)
        if planned.is_scalar:
            return self._run_scalar(planned, timeout=timeout)
        if planned.optimized is None or planned.logical is None:
            raise QueryExecutionError(f"query {planned.text!r} produced no plan")
        stream = self.executor.execute_stream(
            planned.optimized.physical, timeout=timeout, priority=priority
        )
        return QueryResult(
            query_text=planned.text,
            stream=stream,
            estimated_cost=planned.optimized.cost.total(),
            logical_plan=planned.optimized.logical.to_text(),
            physical_plan=planned.optimized.physical.to_text(),
            from_plan_cache=planned.from_cache,
        )

    def explain(self, text: str) -> PlannedQuery:
        """Return the planner's output without executing anything."""
        return self.planner.plan(text, use_cache=False)

    def resubmit(self, result: QueryResult, timeout: float | None = None) -> QueryResult:
        """Re-evaluate a partial answer (e.g. after sources came back up).

        The partial answer is itself a query, so this simply plans and runs
        its logical plan again; with every source available the original
        query's full answer comes back.
        """
        if not result.is_partial or result.partial_plan is None:
            return result
        physical = implement(result.partial_plan)
        execution = self.executor.execute(physical, timeout=timeout)
        return QueryResult(
            query_text=result.partial_query or result.query_text,
            data=execution.data,
            is_partial=execution.is_partial,
            partial_query=execution.partial_query,
            partial_plan=execution.partial_plan,
            unavailable_sources=execution.unavailable_sources,
            reports=execution.reports,
            logical_plan=result.partial_plan.to_text(),
            physical_plan=physical.to_text(),
        )

    # -- internals -----------------------------------------------------------------------------------
    def _run(
        self,
        planned: PlannedQuery,
        timeout: float | None = None,
        priority: float = 1.0,
    ) -> QueryResult:
        if planned.is_scalar:
            return self._run_scalar(planned, timeout=timeout)
        if planned.optimized is None or planned.logical is None:
            raise QueryExecutionError(f"query {planned.text!r} produced no plan")
        execution = self.executor.execute(
            planned.optimized.physical, timeout=timeout, priority=priority
        )
        return QueryResult(
            query_text=planned.text,
            data=execution.data,
            is_partial=execution.is_partial,
            partial_query=execution.partial_query,
            partial_plan=execution.partial_plan,
            unavailable_sources=execution.unavailable_sources,
            reports=execution.reports,
            estimated_cost=planned.optimized.cost.total(),
            logical_plan=planned.optimized.logical.to_text(),
            physical_plan=planned.optimized.physical.to_text(),
            from_plan_cache=planned.from_cache,
        )

    def _run_scalar(self, planned: PlannedQuery, timeout: float | None = None) -> QueryResult:
        bound = planned.bound
        if not isinstance(bound, ExprQuery):
            raise QueryExecutionError(f"scalar query {planned.text!r} did not bind to an expression")
        value = bound.expression.evaluate({}, self.executor.evaluate_subquery)
        return QueryResult(query_text=planned.text, data=value)

    # -- catalog support --------------------------------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        """Describe this mediator (used by catalogs)."""
        description = self.registry.describe()
        description["mediator"] = self.name
        return description

    def statistics(self) -> dict[str, Any]:
        """Operational statistics: recorded exec signatures, plan-cache state."""
        cache = self.planner.plan_cache
        cache_stats = cache.stats() if cache is not None else {}
        stats = {
            "exec_signatures": self.history.recorded_calls(),
            "plan_cache_entries": cache_stats.get("entries", 0),
            "plan_cache_hits": cache_stats.get("hits", 0),
            "plan_cache_misses": cache_stats.get("misses", 0),
            "plan_cache_invalidations": cache_stats.get("invalidations", 0),
            "plan_cache_evictions": cache_stats.get("evictions", 0),
            "schema_version": self.registry.schema_version,
            # Probe-join cache effectiveness (batched bind joins): a hit is a
            # join key served from the per-query cache without re-hitting the
            # source; a miss went into a batched (or degraded) probe call.
            "probe_cache_hits": self.executor.probe_cache_hits,
            "probe_cache_misses": self.executor.probe_cache_misses,
        }
        if self.answer_cache is not None:
            for key, value in self.answer_cache.stats().items():
                stats[f"answer_cache_{key}"] = value
        admission = self.executor.admission
        if admission is not None:
            stats["admission"] = {
                "admitted": admission.stats.admitted,
                "rejected": admission.stats.rejected,
                "timed_out": admission.stats.timed_out,
                "inflight": admission.inflight,
                "queued": admission.queued,
                "max_inflight_seen": admission.stats.max_inflight_seen,
                "max_queue_depth": admission.stats.max_queue_depth,
            }
        return stats

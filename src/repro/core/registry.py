"""The mediator's internal database.

"The DISCO mediator contains an internal database.  The internal database
records information on data sources, types, interfaces, and views, etc."
(Section 3).  The registry wraps the declarative :class:`Schema` and adds what
query processing needs: collection-name resolution for the binder (including
implicit type extents, ``type*`` and ``metaextent``), wrapper-object lookup
for the run-time system, a schema version for plan-cache invalidation and the
MetaExtent rows exposed to queries.

Lock discipline: one registry-wide :class:`threading.RLock` guards every
schema mutation *and* every lookup -- concurrent queries resolve names and
fetch wrappers while a DBA thread may be adding or dropping extents, and the
underlying :class:`Schema` dicts must never be resized under an iterating
reader.  The version bump happens inside the same critical section as the
mutation it describes, so a reader can never observe a new schema under the
old version (the invariant the plan cache and the executor's type-check
verdict cache both key on).  RLock, not Lock, because resolution recurses
(view expansion re-enters :meth:`resolve_collection`).
"""

from __future__ import annotations

import threading
from typing import Any

from repro.datamodel.mapping import LocalTransformationMap
from repro.datamodel.repository import Repository
from repro.datamodel.schema import Schema, ViewDefinition
from repro.datamodel.types import InterfaceType
from repro.datamodel.values import Struct
from repro.errors import NameResolutionError, SchemaError
from repro.oql.binder import ResolvedCollection
from repro.oql.parser import parse_query

METAEXTENT_NAME = "metaextent"


class Registry:
    """Internal database of one mediator."""

    def __init__(self, schema: Schema | None = None):
        self.schema = schema or Schema()
        self._schema_version = 0
        # Guards the schema and the version together; see the module
        # docstring for the discipline.
        self._lock = threading.RLock()

    @property
    def schema_version(self) -> int:
        """Monotonic version, bumped inside the mutation's critical section."""
        with self._lock:
            return self._schema_version

    # -- definitions (delegate to the schema, bump the version where needed) ----------------
    def define_interface(self, interface: InterfaceType) -> InterfaceType:
        """Register an interface type."""
        with self._lock:
            result = self.schema.define_interface(interface)
            self._bump()
            return result

    def add_repository(self, repository: Repository) -> Repository:
        """Register a repository object."""
        with self._lock:
            return self.schema.add_repository(repository)

    def add_wrapper(self, name: str, wrapper: Any) -> Any:
        """Register a wrapper object under ``name``."""
        with self._lock:
            return self.schema.add_wrapper(name, wrapper)

    def add_extent(
        self,
        name: str,
        interface_name: str,
        wrapper_name: str,
        repository_name: str,
        map: LocalTransformationMap | None = None,
        source_collection: str | None = None,
    ):
        """Declare an extent; this is the DBA action that adds a data source."""
        with self._lock:
            meta = self.schema.add_extent(
                name,
                interface_name,
                wrapper_name,
                repository_name,
                map=map,
                source_collection=source_collection,
            )
            self._bump()
            return meta

    def drop_extent(self, name: str) -> None:
        """Remove an extent (deleting its MetaExtent object)."""
        with self._lock:
            self.schema.drop_extent(name)
            self._bump()

    def define_view_text(self, name: str, query_text: str) -> ViewDefinition:
        """Register a ``define <name> as <query>`` view from raw OQL text."""
        with self._lock:
            view = ViewDefinition(name=name, query_text=query_text)
            self.schema.define_view(view)
            self._bump()
            return view

    def _bump(self) -> None:
        """Advance the schema version; the caller holds ``_lock``."""
        self._schema_version += 1

    # -- lookups used by the planner and the run-time system -----------------------------------
    def wrapper_object(self, name: str) -> Any:
        """Return the wrapper object registered under ``name``."""
        with self._lock:
            return self.schema.wrapper(name)

    def extent(self, name: str):
        """Return the MetaExtent for extent ``name``."""
        with self._lock:
            return self.schema.extent(name)

    def interface_attributes(self, interface_name: str) -> list[str]:
        """Attribute names of an interface (used by the run-time type check)."""
        with self._lock:
            return self.schema.interface(interface_name).attribute_names()

    def metaextent_rows(self) -> list[Struct]:
        """The ``metaextent`` collection: one struct per declared extent."""
        rows = []
        with self._lock:
            extents = list(self.schema.extents())
        for meta in extents:
            rows.append(
                Struct(
                    {
                        "name": meta.name,
                        "e": meta.name,
                        "interface": meta.interface,
                        "wrapper": meta.wrapper,
                        "repository": meta.repository.name,
                        "map": " ".join(meta.map.describe()),
                    }
                )
            )
        return rows

    # -- collection-name resolution (the binder's resolver) ---------------------------------------
    def resolve_collection(self, name: str, recursive: bool = False) -> ResolvedCollection:
        """Resolve a collection name appearing in a query."""
        with self._lock:
            if name == METAEXTENT_NAME:
                return ResolvedCollection(kind="metaextent")
            if not recursive and self.schema.has_extent(name):
                return ResolvedCollection(
                    kind="extents", extents=(self.schema.extent(name),)
                )
            if not recursive and self.schema.has_view(name):
                view = self.schema.view(name)
                if view.ast is None:
                    view.ast = parse_query(view.query_text)
                return ResolvedCollection(kind="view", view_query=view.ast, view_name=name)
            interface = self._interface_for_implicit_extent(name)
            if interface is not None:
                extents = self.schema.extents_of_interface(
                    interface.name, recursive=recursive
                )
                return ResolvedCollection(kind="extents", extents=tuple(extents))
        raise NameResolutionError(
            f"{name!r} does not name an extent, a view, an implicit type extent or "
            f"{METAEXTENT_NAME!r}"
        )

    def _interface_for_implicit_extent(self, name: str) -> InterfaceType | None:
        for interface in self.schema.types.interfaces():
            if interface.extent_name == name:
                return interface
        # Fall back to the interface name itself (``from x in Person``), which
        # some of the paper's prose uses interchangeably with the extent.
        if name in self.schema.types:
            return self.schema.types.get(name)
        return None

    # -- catalog support ----------------------------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        """Catalog-friendly description of everything this mediator knows."""
        with self._lock:
            description = self.schema.describe()
            description["schema_version"] = self._schema_version
            return description

    def statement_count(self) -> int:
        """Number of DBA-level definitions (integration-effort experiments)."""
        with self._lock:
            return self.schema.statement_count()

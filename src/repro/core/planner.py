"""The parse / bind / translate / optimize pipeline of Prototype 0 (Figure 2)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.capabilities import CapabilityGrammar, grammar_for
from repro.algebra.logical import LogicalOp, Submit
from repro.algebra.rewriter import Rewriter
from repro.core.registry import Registry
from repro.errors import SchemaError
from repro.oql.ast import ExprQuery, QueryNode
from repro.oql.binder import Binder
from repro.oql.parser import parse_query
from repro.oql.translator import Translator
from repro.optimizer.cost import CostModel
from repro.optimizer.history import ExecCallHistory
from repro.optimizer.optimizer import OptimizedPlan, Optimizer
from repro.optimizer.plancache import PlanCache


@dataclass
class PlannedQuery:
    """Everything the planner produced for one query."""

    text: str
    ast: QueryNode
    bound: QueryNode
    logical: LogicalOp | None
    optimized: OptimizedPlan | None
    is_scalar: bool
    from_cache: bool = False


class QueryPlanner:
    """Turns OQL text into an optimized physical plan against one registry.

    Thread-safety: the planner itself holds no per-query mutable state -- the
    binder, translator, rewriter and optimizer are configured once and then
    only read; shared mutable state lives in the registry, the plan cache and
    the exec-call history, each of which carries its own lock (see their
    module docstrings for the discipline).  Concurrent ``plan`` calls are
    therefore safe, including against a DBA thread mutating the schema:
    :meth:`plan` snapshots the schema version *once*, keys the cache lookup
    on it, and refuses to store a plan when the version moved mid-planning
    (the plan may have resolved names against a half-new schema, and storing
    it under either version could serve a stale plan forever).
    """

    def __init__(
        self,
        registry: Registry,
        history: ExecCallHistory | None = None,
        cost_model: CostModel | None = None,
        use_plan_cache: bool = True,
    ):
        self.registry = registry
        self.history = history or ExecCallHistory()
        self.cost_model = cost_model or CostModel(history=self.history)
        self.binder = Binder(registry)
        self.translator = Translator(metaextent_rows=registry.metaextent_rows)
        self.rewriter = Rewriter(self._capabilities_for_submit)
        self.optimizer = Optimizer(self.rewriter, self.cost_model)
        self.plan_cache = PlanCache() if use_plan_cache else None

    # -- capability resolution ------------------------------------------------------------
    def _capabilities_for_submit(self, submit: Submit) -> CapabilityGrammar:
        """The ``submit-functionality`` call: ask the extent's wrapper for its grammar."""
        extent_name = submit.extent_name or submit.source
        try:
            meta = self.registry.extent(extent_name)
            wrapper = self.registry.wrapper_object(meta.wrapper)
        except SchemaError:
            # Unknown extent (hand-built plan): assume the minimal wrapper.
            return grammar_for({"get"})
        return wrapper.submit_functionality()

    # -- the pipeline -----------------------------------------------------------------------
    def plan(self, text: str, use_cache: bool = True) -> PlannedQuery:
        """Parse, bind, translate and optimize ``text``."""
        version = self.registry.schema_version
        if self.plan_cache is not None and use_cache:
            cached = self.plan_cache.get(text, version)
            if cached is not None:
                return PlannedQuery(
                    text=text,
                    ast=cached.ast,
                    bound=cached.bound,
                    logical=cached.logical,
                    optimized=cached.optimized,
                    is_scalar=cached.is_scalar,
                    from_cache=True,
                )
        ast = parse_query(text)
        planned = self.plan_ast(ast, text=text)
        if self.plan_cache is not None and use_cache:
            # Store under the version snapshotted *before* planning, and only
            # if it still holds: a schema change mid-planning means this plan
            # may mix old and new resolutions -- don't cache it at all.
            if self.registry.schema_version == version:
                self.plan_cache.put(text, version, planned)
        return planned

    def plan_ast(self, ast: QueryNode, text: str | None = None) -> PlannedQuery:
        """Bind, translate and optimize an already-parsed query."""
        bound = self.binder.bind(ast)
        if isinstance(bound, ExprQuery):
            return PlannedQuery(
                text=text or ast.to_oql(),
                ast=ast,
                bound=bound,
                logical=None,
                optimized=None,
                is_scalar=True,
            )
        logical = self.translator.translate(bound)
        optimized = self.optimizer.optimize(logical)
        return PlannedQuery(
            text=text or ast.to_oql(),
            ast=ast,
            bound=bound,
            logical=logical,
            optimized=optimized,
            is_scalar=False,
        )

    def logical_for_bound(self, bound: QueryNode) -> LogicalOp:
        """Translate a bound (sub)query without optimizing (used for subqueries)."""
        return self.translator.translate(bound)

"""Recursive-descent parser for ODL with the DISCO extensions."""

from __future__ import annotations

from repro.errors import ParseError
from repro.odl.ast import (
    AttributeDecl,
    DefineDecl,
    ExtentDecl,
    InterfaceDecl,
    RepositoryDecl,
)
from repro.odl.lexer import OdlLexer, OdlToken


class OdlParser:
    """Parse a sequence of ODL declarations."""

    def __init__(self, text: str):
        self.text = text
        self._tokens = OdlLexer(text).tokens()
        self._index = 0

    # -- token helpers --------------------------------------------------------------
    def _peek(self, offset: int = 0) -> OdlToken:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> OdlToken:
        token = self._tokens[self._index]
        if token.kind != "EOF":
            self._index += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> OdlToken:
        token = self._advance()
        if token.kind != kind or (text is not None and token.text != text):
            raise ParseError(
                f"expected {text or kind}, got {token.text!r}",
                line=token.line,
                column=token.column,
            )
        return token

    def _expect_keyword(self, word: str) -> OdlToken:
        token = self._advance()
        if not token.is_keyword(word):
            raise ParseError(
                f"expected {word!r}, got {token.text!r}", line=token.line, column=token.column
            )
        return token

    def _expect_op(self, text: str) -> OdlToken:
        token = self._advance()
        if not token.is_op(text):
            raise ParseError(
                f"expected {text!r}, got {token.text!r}", line=token.line, column=token.column
            )
        return token

    def _match_op(self, text: str) -> bool:
        if self._peek().is_op(text):
            self._advance()
            return True
        return False

    # -- declarations ------------------------------------------------------------------
    def parse(self) -> list[object]:
        """Parse every declaration in the input."""
        declarations: list[object] = []
        while self._peek().kind != "EOF":
            declarations.append(self._declaration())
        return declarations

    def _declaration(self) -> object:
        token = self._peek()
        if token.is_keyword("interface"):
            return self._interface()
        if token.is_keyword("extent"):
            return self._extent()
        if token.is_keyword("define"):
            return self._define()
        if token.is_keyword("repository"):
            return self._repository()
        raise ParseError(
            f"expected a declaration, got {token.text!r}", line=token.line, column=token.column
        )

    def _interface(self) -> InterfaceDecl:
        self._expect_keyword("interface")
        name = self._expect("IDENT").text
        supertype = None
        extent_name = None
        if self._match_op(":"):
            supertype = self._expect("IDENT").text
        if self._match_op("("):
            self._expect_keyword("extent")
            extent_name = self._expect("IDENT").text
            self._expect_op(")")
        self._expect_op("{")
        attributes: list[AttributeDecl] = []
        while not self._peek().is_op("}"):
            self._expect_keyword("attribute")
            type_name = self._expect("IDENT").text
            attribute_name = self._expect("IDENT").text
            self._expect_op(";")
            attributes.append(AttributeDecl(type_name=type_name, name=attribute_name))
        self._expect_op("}")
        self._match_op(";")
        return InterfaceDecl(
            name=name,
            attributes=tuple(attributes),
            supertype=supertype,
            extent_name=extent_name,
        )

    def _extent(self) -> ExtentDecl:
        self._expect_keyword("extent")
        name = self._expect("IDENT").text
        self._expect_keyword("of")
        interface = self._expect("IDENT").text
        self._expect_keyword("wrapper")
        wrapper = self._expect("IDENT").text
        self._expect_keyword("repository")
        repository = self._expect("IDENT").text
        map_pairs: list[tuple[str, str]] = []
        if self._peek().is_keyword("map"):
            self._advance()
            map_pairs = self._map_pairs()
        self._expect_op(";")
        return ExtentDecl(
            name=name,
            interface=interface,
            wrapper=wrapper,
            repository=repository,
            map_pairs=tuple(map_pairs),
        )

    def _map_pairs(self) -> list[tuple[str, str]]:
        """Parse ``((a=b), (c=d), ...)`` -- the paper's list-of-strings map."""
        self._expect_op("(")
        pairs: list[tuple[str, str]] = []
        while True:
            self._expect_op("(")
            left = self._expect("IDENT").text
            self._expect_op("=")
            right = self._expect("IDENT").text
            self._expect_op(")")
            pairs.append((left, right))
            if not self._match_op(","):
                break
        self._expect_op(")")
        return pairs

    def _define(self) -> DefineDecl:
        self._expect_keyword("define")
        name = self._expect("IDENT").text
        as_token = self._expect_keyword("as")
        # The view body is raw OQL: slice the source text from just after
        # "as" to the terminating semicolon at nesting depth zero.
        start = as_token.offset + len("as")
        depth = 0
        while True:
            token = self._peek()
            if token.kind == "EOF":
                raise ParseError(f"unterminated define {name!r}", line=token.line)
            if token.is_op("("):
                depth += 1
            elif token.is_op(")"):
                depth -= 1
            elif token.is_op(";") and depth == 0:
                end = token.offset
                self._advance()
                return DefineDecl(name=name, query_text=self.text[start:end].strip())
            self._advance()

    def _repository(self) -> RepositoryDecl:
        self._expect_keyword("repository")
        name = self._expect("IDENT").text
        properties: list[tuple[str, str]] = []
        if self._match_op("("):
            while not self._peek().is_op(")"):
                key = self._expect("IDENT").text
                self._expect_op("=")
                token = self._advance()
                if token.kind not in ("STRING", "IDENT", "NUMBER"):
                    raise ParseError(
                        f"expected a value for repository property {key!r}, got {token.text!r}",
                        line=token.line,
                        column=token.column,
                    )
                properties.append((key, token.text))
                self._match_op(",")
            self._expect_op(")")
        self._expect_op(";")
        return RepositoryDecl(name=name, properties=tuple(properties))


def parse_odl(text: str) -> list[object]:
    """Parse ``text`` as a sequence of ODL declarations."""
    return OdlParser(text).parse()

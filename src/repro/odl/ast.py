"""AST nodes for ODL declarations."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class AttributeDecl:
    """``attribute <Type> <name>;`` inside an interface body."""

    type_name: str
    name: str


@dataclass(frozen=True)
class InterfaceDecl:
    """``interface <Name> [: <Super>] [(extent <name>)] { ... }``."""

    name: str
    attributes: tuple[AttributeDecl, ...] = ()
    supertype: str | None = None
    extent_name: str | None = None


@dataclass(frozen=True)
class ExtentDecl:
    """``extent <name> of <Interface> wrapper <w> repository <r> [map (...)];``."""

    name: str
    interface: str
    wrapper: str
    repository: str
    map_pairs: tuple[tuple[str, str], ...] = ()


@dataclass(frozen=True)
class DefineDecl:
    """``define <name> as <OQL query>;`` -- the body is kept as raw OQL text."""

    name: str
    query_text: str


@dataclass(frozen=True)
class RepositoryDecl:
    """``repository <name> (key="value", ...);`` -- reproduction convenience."""

    name: str
    properties: tuple[tuple[str, str], ...] = ()

    def property_dict(self) -> dict[str, str]:
        """Return the properties as a dict."""
        return dict(self.properties)

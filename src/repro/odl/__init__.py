"""ODL: the object definition language plus the DISCO extensions (Section 2).

Supported statements:

* ``interface <Name> [: <Super>] [(extent <name>)] { attribute <Type> <name>; ... }``
* ``extent <name> of <Interface> wrapper <w> repository <r>``
  ``[map ((src=ext), (field=field), ...)];`` -- the DISCO extent extension;
* ``define <name> as <OQL query>;`` -- view definitions (the body is handed to
  the OQL parser);
* ``repository <name> (host="...", address="...", ...);`` -- a convenience
  extension of this reproduction so whole schemas can live in one ODL file
  (the paper creates Repository objects programmatically).

The :class:`~repro.odl.loader.OdlLoader` applies parsed declarations to a
mediator registry, producing exactly the MetaExtent side effects the paper
describes.
"""

from repro.odl.ast import (
    AttributeDecl,
    DefineDecl,
    ExtentDecl,
    InterfaceDecl,
    RepositoryDecl,
)
from repro.odl.parser import OdlParser, parse_odl
from repro.odl.loader import OdlLoader

__all__ = [
    "AttributeDecl",
    "DefineDecl",
    "ExtentDecl",
    "InterfaceDecl",
    "RepositoryDecl",
    "OdlParser",
    "parse_odl",
    "OdlLoader",
]

"""Tokenizer for ODL text.

Tokens carry their byte offset into the source so the parser can slice the
raw text of a ``define ... as <query>;`` body and hand it to the OQL parser
untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = {
    "interface",
    "attribute",
    "extent",
    "of",
    "wrapper",
    "repository",
    "map",
    "define",
    "as",
}

OPERATORS = ("{", "}", "(", ")", ":", ";", ",", "=", "*")


@dataclass(frozen=True)
class OdlToken:
    """One lexical token with its offset, line and column."""

    kind: str  # KEYWORD, IDENT, STRING, NUMBER, OP, EOF
    text: str
    offset: int
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        """True when this token is the keyword ``word``."""
        return self.kind == "KEYWORD" and self.text == word

    def is_op(self, text: str) -> bool:
        """True when this token is the operator ``text``."""
        return self.kind == "OP" and self.text == text


class OdlLexer:
    """Hand-written scanner for ODL."""

    def __init__(self, text: str):
        self.text = text
        self.position = 0
        self.line = 1
        self.column = 1

    def tokens(self) -> list[OdlToken]:
        """Tokenize the whole input, ending with an EOF token."""
        result: list[OdlToken] = []
        while True:
            token = self._next_token()
            result.append(token)
            if token.kind == "EOF":
                return result

    # -- internals ------------------------------------------------------------------
    def _advance_char(self) -> str:
        char = self.text[self.position]
        self.position += 1
        if char == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return char

    def _skip_whitespace_and_comments(self) -> None:
        while self.position < len(self.text):
            char = self.text[self.position]
            if char.isspace():
                self._advance_char()
                continue
            if self.text.startswith("//", self.position):
                while self.position < len(self.text) and self.text[self.position] != "\n":
                    self._advance_char()
                continue
            return

    def _next_token(self) -> OdlToken:
        self._skip_whitespace_and_comments()
        if self.position >= len(self.text):
            return OdlToken("EOF", "", self.position, self.line, self.column)
        offset, line, column = self.position, self.line, self.column
        char = self.text[self.position]
        if char == '"':
            return self._string(offset, line, column)
        if char.isdigit():
            return self._number(offset, line, column)
        if char.isalpha() or char == "_":
            return self._word(offset, line, column)
        if char in "".join(OPERATORS):
            self._advance_char()
            return OdlToken("OP", char, offset, line, column)
        if char.isprintable():
            # Characters outside the ODL grammar (".", "+", ">", ...) appear
            # inside `define ... as <OQL>` bodies, which the ODL parser skips
            # over and hands verbatim to the OQL parser.  Tokenise them as
            # opaque operators; the declaration grammar rejects them anywhere
            # else.
            self._advance_char()
            return OdlToken("OP", char, offset, line, column)
        raise ParseError(f"unexpected character {char!r} in ODL", line=line, column=column)

    def _string(self, offset: int, line: int, column: int) -> OdlToken:
        self._advance_char()
        chars: list[str] = []
        while self.position < len(self.text):
            char = self._advance_char()
            if char == '"':
                return OdlToken("STRING", "".join(chars), offset, line, column)
            chars.append(char)
        raise ParseError("unterminated ODL string literal", line=line, column=column)

    def _number(self, offset: int, line: int, column: int) -> OdlToken:
        chars: list[str] = []
        while self.position < len(self.text) and (
            self.text[self.position].isdigit() or self.text[self.position] == "."
        ):
            chars.append(self._advance_char())
        return OdlToken("NUMBER", "".join(chars), offset, line, column)

    def _word(self, offset: int, line: int, column: int) -> OdlToken:
        chars: list[str] = []
        while self.position < len(self.text) and (
            self.text[self.position].isalnum() or self.text[self.position] == "_"
        ):
            chars.append(self._advance_char())
        text = "".join(chars)
        if text.lower() in KEYWORDS:
            return OdlToken("KEYWORD", text.lower(), offset, line, column)
        return OdlToken("IDENT", text, offset, line, column)

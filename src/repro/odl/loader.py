"""Applying parsed ODL declarations to a mediator registry.

The loader is the ODL half of the Prototype-0 pipeline (paper Figure 2): ODL
text goes through the parser, and each declaration updates the mediator's
internal database -- interfaces go to the type system, extent declarations
create MetaExtent objects, ``define`` statements register views, repository
declarations create Repository objects.
"""

from __future__ import annotations

from typing import Protocol

from repro.datamodel.mapping import LocalTransformationMap
from repro.datamodel.repository import Repository
from repro.datamodel.types import AttributeSpec, InterfaceType, PrimitiveType
from repro.errors import SchemaError
from repro.odl.ast import (
    DefineDecl,
    ExtentDecl,
    InterfaceDecl,
    RepositoryDecl,
)
from repro.odl.parser import parse_odl


class SchemaTarget(Protocol):
    """What the loader needs from the mediator's internal database."""

    def define_interface(self, interface: InterfaceType) -> InterfaceType: ...

    def add_repository(self, repository: Repository) -> Repository: ...

    def add_extent(
        self,
        name: str,
        interface_name: str,
        wrapper_name: str,
        repository_name: str,
        map: LocalTransformationMap | None = None,
        source_collection: str | None = None,
    ): ...

    def define_view_text(self, name: str, query_text: str): ...


class OdlLoader:
    """Load ODL text into a schema target (usually the mediator registry)."""

    def __init__(self, target: SchemaTarget):
        self.target = target

    def load(self, text: str) -> list[object]:
        """Parse ``text`` and apply every declaration; return the declarations."""
        declarations = parse_odl(text)
        for declaration in declarations:
            self.apply(declaration)
        return declarations

    def apply(self, declaration: object) -> None:
        """Apply one parsed declaration to the target."""
        if isinstance(declaration, InterfaceDecl):
            self._apply_interface(declaration)
        elif isinstance(declaration, ExtentDecl):
            self._apply_extent(declaration)
        elif isinstance(declaration, DefineDecl):
            self.target.define_view_text(declaration.name, declaration.query_text)
        elif isinstance(declaration, RepositoryDecl):
            self._apply_repository(declaration)
        else:
            raise SchemaError(f"unknown ODL declaration {declaration!r}")

    # -- helpers -------------------------------------------------------------------
    def _apply_interface(self, declaration: InterfaceDecl) -> None:
        attributes = tuple(
            AttributeSpec(attr.name, self._primitive(attr.type_name))
            for attr in declaration.attributes
        )
        self.target.define_interface(
            InterfaceType(
                name=declaration.name,
                attributes=attributes,
                supertype=declaration.supertype,
                extent_name=declaration.extent_name,
            )
        )

    def _primitive(self, type_name: str) -> PrimitiveType:
        try:
            return PrimitiveType.from_name(type_name)
        except SchemaError:
            # Unknown ODL types (object references, user-defined types) are
            # accepted as untyped attributes: the paper assumes value-based
            # references and leaves richer typing to the wrapper check.
            return PrimitiveType.ANY

    def _apply_extent(self, declaration: ExtentDecl) -> None:
        transformation_map = (
            LocalTransformationMap.from_pairs(declaration.map_pairs)
            if declaration.map_pairs
            else LocalTransformationMap.identity()
        )
        self.target.add_extent(
            name=declaration.name,
            interface_name=declaration.interface,
            wrapper_name=declaration.wrapper,
            repository_name=declaration.repository,
            map=transformation_map,
        )

    def _apply_repository(self, declaration: RepositoryDecl) -> None:
        properties = declaration.property_dict()
        self.target.add_repository(
            Repository(
                name=declaration.name,
                host=properties.pop("host", "localhost"),
                address=properties.pop("address", ""),
                maintainer=properties.pop("maintainer", None),
                properties=properties,
            )
        )

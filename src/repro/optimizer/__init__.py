"""The mediator query optimizer (paper Sections 3.1-3.3).

The optimizer manipulates the five abstractions the paper lists:

* logical operators (:mod:`repro.algebra.logical`);
* transformation rules (:mod:`repro.algebra.rules`), applied by the
  :class:`~repro.algebra.rewriter.Rewriter`;
* physical algorithms (:mod:`repro.algebra.physical`);
* implementation rules (:mod:`repro.optimizer.implementation`);
* cost functions (:mod:`repro.optimizer.cost`), fed by the exec-call history
  of :mod:`repro.optimizer.history`.

:class:`~repro.optimizer.optimizer.Optimizer` searches the space of logical
and physical trees and returns the cheapest physical plan;
:class:`~repro.optimizer.plancache.PlanCache` caches optimized plans and is
invalidated when extents change.
"""

from repro.optimizer.cost import Cost, CostModel
from repro.optimizer.history import ExecCallHistory, CostEstimate
from repro.optimizer.implementation import implement, implementation_alternatives
from repro.optimizer.optimizer import Optimizer, OptimizedPlan
from repro.optimizer.plancache import PlanCache

__all__ = [
    "Cost",
    "CostModel",
    "ExecCallHistory",
    "CostEstimate",
    "implement",
    "implementation_alternatives",
    "Optimizer",
    "OptimizedPlan",
    "PlanCache",
]

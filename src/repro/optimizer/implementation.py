"""Implementation rules: logical operators -> physical algorithms.

"Logical operations are transformed into physical expressions using
implementation rules. DISCO has the usual transformation rules that implement
join with merge-join."  Here ``join`` can be implemented by a hash join or a
nested-loop join (two alternatives the optimizer costs); every other logical
operator has exactly one physical algorithm.
"""

from __future__ import annotations

from itertools import product

from repro.algebra import logical as log
from repro.algebra import physical as phys
from repro.algebra.expressions import find_equi_conjunct
from repro.errors import OptimizationError


def _probe_join_for(
    node: log.BindJoin, left: phys.PhysicalOp
) -> phys.ProbeJoin | None:
    """Build a batched-probe join for ``node`` when it is eligible.

    Eligibility: the right side is a single ``submit`` (one probeable source)
    and the condition carries an equi-join conjunct to extract probe keys
    from.  Wrapper ``in`` support is *not* checked here -- a wrapper without
    the terminal degrades to per-binding probes at run time, which still
    beats shipping the extent when the key set is small.
    """
    if node.condition is None or not isinstance(node.right, log.Submit):
        return None
    if find_equi_conjunct(node.condition, node.left_variable, node.right_variable) is None:
        return None
    submit = node.right
    probe = phys.Exec(
        source=phys.Field(submit.source),
        expression=submit.expression,
        extent_name=submit.extent_name or submit.source,
    )
    return phys.ProbeJoin(
        left,
        probe,
        node.left_variable,
        node.right_variable,
        node.condition,
    )


def implement(node: log.LogicalOp) -> phys.PhysicalOp:
    """Return the default physical plan for ``node`` (hash joins everywhere)."""
    if isinstance(node, log.Submit):
        return phys.Exec(
            source=phys.Field(node.source),
            expression=node.expression,
            extent_name=node.extent_name or node.source,
        )
    if isinstance(node, log.BagLiteral):
        return phys.MkBag(node.values)
    if isinstance(node, log.Project):
        return phys.MkProj(node.attributes, implement(node.child))
    if isinstance(node, log.Select):
        return phys.Filter(node.variable, node.predicate, implement(node.child))
    if isinstance(node, log.Rename):
        return phys.MkRename(node.pairs, implement(node.child))
    if isinstance(node, log.Apply):
        return phys.MkApply(node.variable, node.expression, implement(node.child))
    if isinstance(node, log.Join):
        return phys.HashJoin(implement(node.left), implement(node.right), node.on)
    if isinstance(node, log.BindJoin):
        return phys.MkBindJoin(
            implement(node.left),
            implement(node.right),
            node.left_variable,
            node.right_variable,
            condition=node.condition,
        )
    if isinstance(node, log.Union):
        return phys.MkUnion(tuple(implement(child) for child in node.inputs))
    if isinstance(node, log.Flatten):
        return phys.MkFlatten(implement(node.child))
    if isinstance(node, log.Distinct):
        return phys.MkDistinct(implement(node.child))
    if isinstance(node, log.Limit):
        return phys.MkLimit(node.count, implement(node.child))
    if isinstance(node, log.GroupBy):
        return phys.MkGroupBy(
            node.variable, node.keys, node.aggregates, implement(node.child)
        )
    if isinstance(node, log.Get):
        raise OptimizationError(
            f"get({node.collection}) reached physical planning outside a submit; "
            "extents must be accessed through submit/exec"
        )
    raise OptimizationError(f"no implementation rule for {node.to_text()}")


def implementation_alternatives(node: log.LogicalOp) -> list[phys.PhysicalOp]:
    """Return every physical plan for ``node`` (join algorithm choices multiply)."""
    if isinstance(node, (log.Submit, log.BagLiteral)):
        # Submit keeps its argument as a logical expression (the wrapper
        # interface accepts logical expressions), so it is a physical leaf.
        return [implement(node)]
    if isinstance(node, log.Join):
        lefts = implementation_alternatives(node.left)
        rights = implementation_alternatives(node.right)
        plans: list[phys.PhysicalOp] = []
        for left, right in product(lefts, rights):
            plans.append(phys.HashJoin(left, right, node.on))
            plans.append(phys.NestedLoopJoin(left, right, node.on))
        return plans
    if isinstance(node, log.BindJoin):
        lefts = implementation_alternatives(node.left)
        rights = implementation_alternatives(node.right)
        plans = []
        for left, right in product(lefts, rights):
            plans.append(
                phys.MkBindJoin(
                    left,
                    right,
                    node.left_variable,
                    node.right_variable,
                    condition=node.condition,
                )
            )
        for left in lefts:
            probe_join = _probe_join_for(node, left)
            if probe_join is not None:
                plans.append(probe_join)
        return plans
    children = node.children()
    if not children:
        return [implement(node)]
    children_alternatives = [implementation_alternatives(child) for child in children]
    plans = []
    for combination in product(*children_alternatives):
        plans.append(_rebuild(node, list(combination)))
    return plans


def _rebuild(node: log.LogicalOp, children: list[phys.PhysicalOp]) -> phys.PhysicalOp:
    """Build the physical node for ``node`` given already-implemented children."""
    if isinstance(node, log.Project):
        return phys.MkProj(node.attributes, children[0])
    if isinstance(node, log.Select):
        return phys.Filter(node.variable, node.predicate, children[0])
    if isinstance(node, log.Rename):
        return phys.MkRename(node.pairs, children[0])
    if isinstance(node, log.Apply):
        return phys.MkApply(node.variable, node.expression, children[0])
    if isinstance(node, log.BindJoin):
        return phys.MkBindJoin(
            children[0],
            children[1],
            node.left_variable,
            node.right_variable,
            condition=node.condition,
        )
    if isinstance(node, log.Union):
        return phys.MkUnion(tuple(children))
    if isinstance(node, log.Flatten):
        return phys.MkFlatten(children[0])
    if isinstance(node, log.Distinct):
        return phys.MkDistinct(children[0])
    if isinstance(node, log.Limit):
        return phys.MkLimit(node.count, children[0])
    if isinstance(node, log.GroupBy):
        return phys.MkGroupBy(node.variable, node.keys, node.aggregates, children[0])
    if isinstance(node, log.Submit):
        # A submit has a logical child but the physical Exec keeps it as a
        # logical argument (the wrapper interface accepts logical expressions).
        return implement(node)
    raise OptimizationError(f"no implementation rule for {node.to_text()}")

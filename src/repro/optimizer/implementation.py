"""Implementation rules: logical operators -> physical algorithms.

"Logical operations are transformed into physical expressions using
implementation rules. DISCO has the usual transformation rules that implement
join with merge-join."  Here ``join`` can be implemented by a hash join or a
nested-loop join (two alternatives the optimizer costs); every other logical
operator has exactly one physical algorithm.
"""

from __future__ import annotations

from itertools import product

from repro.algebra import logical as log
from repro.algebra import physical as phys
from repro.errors import OptimizationError


def implement(node: log.LogicalOp) -> phys.PhysicalOp:
    """Return the default physical plan for ``node`` (hash joins everywhere)."""
    if isinstance(node, log.Submit):
        return phys.Exec(
            source=phys.Field(node.source),
            expression=node.expression,
            extent_name=node.extent_name or node.source,
        )
    if isinstance(node, log.BagLiteral):
        return phys.MkBag(node.values)
    if isinstance(node, log.Project):
        return phys.MkProj(node.attributes, implement(node.child))
    if isinstance(node, log.Select):
        return phys.Filter(node.variable, node.predicate, implement(node.child))
    if isinstance(node, log.Rename):
        return phys.MkRename(node.pairs, implement(node.child))
    if isinstance(node, log.Apply):
        return phys.MkApply(node.variable, node.expression, implement(node.child))
    if isinstance(node, log.Join):
        return phys.HashJoin(implement(node.left), implement(node.right), node.on)
    if isinstance(node, log.BindJoin):
        return phys.MkBindJoin(
            implement(node.left),
            implement(node.right),
            node.left_variable,
            node.right_variable,
            condition=node.condition,
        )
    if isinstance(node, log.Union):
        return phys.MkUnion(tuple(implement(child) for child in node.inputs))
    if isinstance(node, log.Flatten):
        return phys.MkFlatten(implement(node.child))
    if isinstance(node, log.Distinct):
        return phys.MkDistinct(implement(node.child))
    if isinstance(node, log.Limit):
        return phys.MkLimit(node.count, implement(node.child))
    if isinstance(node, log.Get):
        raise OptimizationError(
            f"get({node.collection}) reached physical planning outside a submit; "
            "extents must be accessed through submit/exec"
        )
    raise OptimizationError(f"no implementation rule for {node.to_text()}")


def implementation_alternatives(node: log.LogicalOp) -> list[phys.PhysicalOp]:
    """Return every physical plan for ``node`` (join algorithm choices multiply)."""
    if isinstance(node, (log.Submit, log.BagLiteral)):
        # Submit keeps its argument as a logical expression (the wrapper
        # interface accepts logical expressions), so it is a physical leaf.
        return [implement(node)]
    if isinstance(node, log.Join):
        lefts = implementation_alternatives(node.left)
        rights = implementation_alternatives(node.right)
        plans: list[phys.PhysicalOp] = []
        for left, right in product(lefts, rights):
            plans.append(phys.HashJoin(left, right, node.on))
            plans.append(phys.NestedLoopJoin(left, right, node.on))
        return plans
    children = node.children()
    if not children:
        return [implement(node)]
    children_alternatives = [implementation_alternatives(child) for child in children]
    plans = []
    for combination in product(*children_alternatives):
        plans.append(_rebuild(node, list(combination)))
    return plans


def _rebuild(node: log.LogicalOp, children: list[phys.PhysicalOp]) -> phys.PhysicalOp:
    """Build the physical node for ``node`` given already-implemented children."""
    if isinstance(node, log.Project):
        return phys.MkProj(node.attributes, children[0])
    if isinstance(node, log.Select):
        return phys.Filter(node.variable, node.predicate, children[0])
    if isinstance(node, log.Rename):
        return phys.MkRename(node.pairs, children[0])
    if isinstance(node, log.Apply):
        return phys.MkApply(node.variable, node.expression, children[0])
    if isinstance(node, log.BindJoin):
        return phys.MkBindJoin(
            children[0],
            children[1],
            node.left_variable,
            node.right_variable,
            condition=node.condition,
        )
    if isinstance(node, log.Union):
        return phys.MkUnion(tuple(children))
    if isinstance(node, log.Flatten):
        return phys.MkFlatten(children[0])
    if isinstance(node, log.Distinct):
        return phys.MkDistinct(children[0])
    if isinstance(node, log.Limit):
        return phys.MkLimit(node.count, children[0])
    if isinstance(node, log.Submit):
        # A submit has a logical child but the physical Exec keeps it as a
        # logical argument (the wrapper interface accepts logical expressions).
        return implement(node)
    raise OptimizationError(f"no implementation rule for {node.to_text()}")

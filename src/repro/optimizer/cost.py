"""Cost functions for physical plans (paper Section 3.3).

Every physical algorithm has a cost function estimating its run time and
output cardinality.  Calls to data sources (``exec``) are estimated from the
:class:`~repro.optimizer.history.ExecCallHistory`; with no history, the
paper's default (time 0, data 1) applies, which biases the optimizer towards
plans that push the maximum amount of computation to the sources and then
minimise mediator-side work -- exactly the behaviour Section 3.3 derives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra import logical as log
from repro.algebra import physical as phys
from repro.errors import OptimizationError
from repro.optimizer.history import ExecCallHistory


def pushed_limit(expression: log.LogicalOp) -> int | None:
    """The row cap in force at the top of a pushed expression, if any.

    Looks through the one-to-one operators a limit commutes with
    (project/apply), matching the shapes the rewrite rules produce; a limit
    buried under a select or inside one join operand does not bound the
    expression's output and is ignored.
    """
    node = expression
    while isinstance(node, (log.Project, log.Apply, log.Rename)):
        node = node.child
    if isinstance(node, log.Limit):
        return node.count
    return None


def pushed_groupby(expression: log.LogicalOp) -> "log.GroupBy | None":
    """The grouping in force at the top of a pushed expression, if any.

    Like :func:`pushed_limit`, looks through the one-to-one operators (and a
    limit -- a capped group list is still grouped) to find a ``groupby`` that
    bounds what the source ships: group rows, not extent rows.
    """
    node = expression
    while isinstance(node, (log.Project, log.Apply, log.Rename, log.Limit)):
        node = node.child
    if isinstance(node, log.GroupBy):
        return node
    return None


@dataclass(frozen=True)
class Cost:
    """Estimated execution time (seconds) and output cardinality (rows)."""

    time: float
    rows: float

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(self.time + other.time, self.rows + other.rows)

    def total(self) -> float:
        """The scalar the optimizer minimises."""
        return self.time


@dataclass
class CostModel:
    """Cost estimation over physical plans.

    ``mediator_row_cost`` is the time charged per row processed by a
    mediator-side operator; ``transfer_row_cost`` the time charged per row
    shipped from a source (on top of whatever the history says);
    ``default_selectivity`` is used for filters when nothing better is known.
    """

    history: ExecCallHistory
    mediator_row_cost: float = 1e-6
    transfer_row_cost: float = 5e-6
    exec_call_overhead: float = 1e-4
    mediator_operator_overhead: float = 1e-5
    default_selectivity: float = 0.33
    #: how hard a flaky source is penalized: the exec time estimate is
    #: multiplied by ``1 + penalty * (1 - availability)``, so a source whose
    #: availability EWMA has dropped to 0.5 looks ~2x as expensive (with the
    #: default 2.0) and the optimizer prefers plans that avoid it.
    unavailability_penalty: float = 2.0
    #: assumed probe-key batch size for :class:`~repro.algebra.physical.ProbeJoin`
    #: costing.  Mirrors ``ExecutorConfig.bind_batch_size``; the run-time value
    #: may differ, which only shifts the estimated number of probe calls.
    probe_batch_size: float = 256.0
    #: assumed ratio of distinct group rows to input rows for ``groupby``
    #: estimation.  This is what makes the summarization pushdown pay off in
    #: the cost model: a grouped exec ships an estimated 5% of the extent's
    #: rows (a keyless -- scalar -- aggregate ships exactly one).
    groupby_output_ratio: float = 0.05

    def estimate(self, plan: phys.PhysicalOp) -> Cost:
        """Estimate the cost of executing ``plan``."""
        if isinstance(plan, phys.Exec):
            return self._estimate_exec(plan)
        if isinstance(plan, phys.MkBag):
            return Cost(time=0.0, rows=float(len(plan.values)))
        if isinstance(plan, (phys.MkProj, phys.MkRename)):
            child = self.estimate(plan.child)
            time = child.time + self.mediator_operator_overhead + child.rows * self.mediator_row_cost
            return Cost(time, child.rows)
        if isinstance(plan, phys.MkApply):
            child = self.estimate(plan.child)
            time = child.time + self.mediator_operator_overhead + child.rows * 2 * self.mediator_row_cost
            return Cost(time, child.rows)
        if isinstance(plan, phys.Filter):
            child = self.estimate(plan.child)
            rows = child.rows * self.default_selectivity
            time = child.time + self.mediator_operator_overhead + child.rows * self.mediator_row_cost
            return Cost(time, rows)
        if isinstance(plan, phys.MkDistinct):
            child = self.estimate(plan.child)
            time = child.time + self.mediator_operator_overhead + child.rows * self.mediator_row_cost
            return Cost(time, child.rows)
        if isinstance(plan, phys.MkLimit):
            child = self.estimate(plan.child)
            rows = min(child.rows, float(plan.count))
            # The cap on output rows is what makes pushed-down limits pay off:
            # every operator above a limit is costed on at most `count` rows.
            time = child.time + self.mediator_operator_overhead + rows * self.mediator_row_cost
            return Cost(time, rows)
        if isinstance(plan, phys.MkGroupBy):
            child = self.estimate(plan.child)
            rows = self._grouped_rows(child.rows, bool(plan.keys))
            # Two expression evaluations per input row (keys and aggregates),
            # like MkApply; the output is the (much smaller) group list.
            time = child.time + self.mediator_operator_overhead + child.rows * 2 * self.mediator_row_cost
            return Cost(time, rows)
        if isinstance(plan, phys.MkFlatten):
            child = self.estimate(plan.child)
            time = child.time + self.mediator_operator_overhead + child.rows * self.mediator_row_cost
            return Cost(time, child.rows)
        if isinstance(plan, phys.MkUnion):
            children = [self.estimate(child) for child in plan.inputs]
            time = sum(child.time for child in children)
            rows = sum(child.rows for child in children)
            return Cost(time, rows)
        if isinstance(plan, phys.HashJoin):
            left = self.estimate(plan.left)
            right = self.estimate(plan.right)
            time = (
                left.time
                + right.time
                + self.mediator_operator_overhead
                + (left.rows + right.rows) * self.mediator_row_cost
            )
            rows = max(left.rows, right.rows)
            return Cost(time, rows)
        if isinstance(plan, phys.NestedLoopJoin):
            left = self.estimate(plan.left)
            right = self.estimate(plan.right)
            # Quadratic: the right side is materialized once and re-scanned
            # per left row (see ``nested_loop_join_rows``, which shares that
            # one materialization however many times the plan is iterated).
            # This is also the cost floor for the *equi-join fallback* inside
            # ``bind_join_rows``: a bindjoin whose condition carries no
            # extractable equi conjunct degenerates to exactly this
            # left x right pairing, which is why the condition-sinking rule
            # (and the probe join it enables) matter.
            time = (
                left.time
                + right.time
                + self.mediator_operator_overhead
                + left.rows * right.rows * self.mediator_row_cost
            )
            rows = max(left.rows, right.rows)
            return Cost(time, rows)
        if isinstance(plan, phys.MkBindJoin):
            left = self.estimate(plan.left)
            right = self.estimate(plan.right)
            # The run-time system hash-joins when the condition allows it;
            # charge the hash-join cost plus a small setup factor.
            time = left.time + right.time + (left.rows + right.rows) * 2 * self.mediator_row_cost
            rows = max(left.rows, right.rows)
            return Cost(time, rows)
        if isinstance(plan, phys.ProbeJoin):
            left = self.estimate(plan.left)
            probe = self.history.estimate(plan.probe.extent_name, plan.probe.expression)
            right_rows = max(probe.rows, 0.0)
            # One set-valued submit per batch of distinct left keys; only the
            # matching right rows cross the wire (bounded by the smaller of
            # the two sides -- the per-query probe cache deduplicates keys).
            batches = max(1.0, -(-left.rows // self.probe_batch_size))
            shipped = min(right_rows, max(left.rows, 1.0))
            time = (
                left.time
                + batches * (self.exec_call_overhead + probe.time)
                + shipped * self.transfer_row_cost
                + (left.rows + shipped) * self.mediator_row_cost
            )
            availability = self.history.availability(plan.probe.extent_name)
            if availability < 1.0:
                time *= 1.0 + self.unavailability_penalty * (1.0 - availability)
            rows = max(left.rows, shipped)
            return Cost(time, rows)
        raise OptimizationError(f"no cost function for physical operator {plan.to_text()}")

    def _estimate_exec(self, plan: phys.Exec) -> Cost:
        """Estimate one exec call from its recorded history.

        Mid-stream deaths feed this estimate from both sides: a recovered
        call records the death as a failure observation (lowering the
        extent's availability EWMA, which inflates ``time`` below) *and* a
        token-resumed reopen charges only the remaining rows at the simulated
        server, so the learned latency of a flaky-but-resumable source stays
        close to what one clean transfer of the extent costs -- rather than
        the cost of shipping it twice, which is what reopen-and-skip replays
        (and what keeps token capability worth declaring).
        """
        estimate = self.history.estimate(plan.extent_name, plan.expression)
        rows = max(estimate.rows, 0.0)
        grouped = pushed_groupby(plan.expression)
        if grouped is not None:
            # A groupby pushed across the wrapper boundary means only group
            # rows cross the wire, however many rows the source scans --
            # the rows-transferred accounting that makes the optimizer prefer
            # server-side grouping.
            rows = self._grouped_rows(rows, bool(grouped.keys))
        cap = pushed_limit(plan.expression)
        if cap is not None:
            # A limit pushed across the wrapper boundary bounds what the
            # source *ships*, whatever its history says it used to return:
            # charge transferred rows, not scanned rows.
            rows = min(rows, float(cap))
        time = self.exec_call_overhead + estimate.time + rows * self.transfer_row_cost
        availability = self.history.availability(plan.extent_name)
        if availability < 1.0:
            # Expected retries/timeouts on a flaky source make its calls more
            # expensive than the happy-path history alone suggests.
            time *= 1.0 + self.unavailability_penalty * (1.0 - availability)
        return Cost(time=time, rows=rows)

    def _grouped_rows(self, input_rows: float, has_keys: bool) -> float:
        """Estimated group count for ``input_rows`` input rows."""
        if not has_keys:
            return 1.0  # a scalar aggregate always yields exactly one row
        if input_rows <= 0.0:
            return 0.0
        return max(1.0, input_rows * self.groupby_output_ratio)

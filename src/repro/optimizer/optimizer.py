"""The plan search: logical alternatives x physical alternatives, lowest cost wins.

"The optimizer searches the space of logical and physical trees for the
physical tree with the lowest cost.  The run-time system executes the physical
expression with the lowest cost."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.logical import LogicalOp
from repro.algebra.physical import PhysicalOp
from repro.algebra.rewriter import Rewriter
from repro.errors import OptimizationError
from repro.optimizer.cost import Cost, CostModel
from repro.optimizer.implementation import implementation_alternatives


@dataclass(frozen=True)
class OptimizedPlan:
    """The optimizer's output: the chosen trees and the estimated cost."""

    logical: LogicalOp
    physical: PhysicalOp
    cost: Cost
    logical_alternatives: int
    physical_alternatives: int


class Optimizer:
    """Cost-based search over rewriter alternatives and implementation choices."""

    def __init__(
        self,
        rewriter: Rewriter,
        cost_model: CostModel,
        max_physical_alternatives: int = 256,
    ):
        self.rewriter = rewriter
        self.cost_model = cost_model
        self.max_physical_alternatives = max_physical_alternatives

    def optimize(self, logical: LogicalOp) -> OptimizedPlan:
        """Return the cheapest physical plan for ``logical``."""
        logical_alternatives = self.rewriter.alternatives(logical)
        # Always consider the maximal push-down plan, even when the bounded
        # closure above stopped before reaching it on a wide query.
        greedy = self.rewriter.rewrite_greedy(logical)
        if greedy not in logical_alternatives:
            logical_alternatives.append(greedy)
        best: tuple[Cost, LogicalOp, PhysicalOp] | None = None
        physical_count = 0
        for candidate in logical_alternatives:
            for physical in implementation_alternatives(candidate):
                physical_count += 1
                if physical_count > self.max_physical_alternatives:
                    break
                cost = self.cost_model.estimate(physical)
                if best is None or cost.total() < best[0].total():
                    best = (cost, candidate, physical)
            if physical_count > self.max_physical_alternatives:
                break
        if best is None:
            raise OptimizationError("the optimizer produced no physical plan")
        cost, chosen_logical, chosen_physical = best
        return OptimizedPlan(
            logical=chosen_logical,
            physical=chosen_physical,
            cost=cost,
            logical_alternatives=len(logical_alternatives),
            physical_alternatives=physical_count,
        )

    def optimize_greedy(self, logical: LogicalOp) -> OptimizedPlan:
        """Skip the search: maximal push-down, default implementations.

        This is the plan shape the paper's 0/1 default cost model converges to;
        it is also what the no-cost-information baseline of experiment E5 uses.
        """
        rewritten = self.rewriter.rewrite_greedy(logical)
        candidates = implementation_alternatives(rewritten)
        if not candidates:
            raise OptimizationError("the optimizer produced no physical plan")
        costed = [(self.cost_model.estimate(plan), plan) for plan in candidates]
        cost, physical = min(costed, key=lambda pair: pair[0].total())
        return OptimizedPlan(
            logical=rewritten,
            physical=physical,
            cost=cost,
            logical_alternatives=1,
            physical_alternatives=len(candidates),
        )

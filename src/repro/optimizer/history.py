"""Learning data-source costs from previous ``exec`` calls (paper Section 3.3).

"DISCO solves this problem by recording previous exec calls to a data source
and the actual cost of the call. [...] In the case that an exec call exactly
matches a sequence of previous exec calls to a data source, a smoothing
function is used to combine the associated data to generate a new estimate.
Only a fixed number of exactly matching calls are recorded.  In the case that
the exec call does not exactly match, DISCO searches for close matches [...]
In the case that there are no close matches to the exec call, a default time
cost of 0 and a data cost of 1 is used."

A *close match* here is the paper's example: the same expression shape whose
comparison operators match but whose constants differ -- implemented by
stripping constants from the expression signature.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque

from repro.algebra.expressions import (
    Arithmetic,
    BagExpr,
    BooleanExpr,
    Comparison,
    Const,
    Expr,
    FunctionCall,
    InList,
    Path,
    StructExpr,
)
from repro.algebra.logical import (
    Apply,
    LogicalOp,
    Select,
    transform_bottom_up,
)

DEFAULT_TIME_COST = 0.0
DEFAULT_DATA_COST = 1.0


@dataclass(frozen=True)
class CostEstimate:
    """An estimated (time, rows) pair plus how it was obtained."""

    time: float
    rows: float
    kind: str  # "exact", "close" or "default"
    samples: int = 0


@dataclass(frozen=True)
class _Observation:
    elapsed: float
    rows: int


def _strip_constants_expr(expression: Expr) -> Expr:
    """Replace every constant in ``expression`` by a placeholder."""
    if isinstance(expression, Const):
        return Const("?")
    if isinstance(expression, Path):
        return Path(_strip_constants_expr(expression.base), expression.attribute)
    if isinstance(expression, Comparison):
        return Comparison(
            expression.op,
            _strip_constants_expr(expression.left),
            _strip_constants_expr(expression.right),
        )
    if isinstance(expression, Arithmetic):
        return Arithmetic(
            expression.op,
            _strip_constants_expr(expression.left),
            _strip_constants_expr(expression.right),
        )
    if isinstance(expression, BooleanExpr):
        return BooleanExpr(
            expression.op,
            tuple(_strip_constants_expr(operand) for operand in expression.operands),
        )
    if isinstance(expression, InList):
        # Collapse the item list to one placeholder so every probe batch of
        # the same shape -- regardless of batch size or key values -- shares a
        # single close signature.
        return InList(_strip_constants_expr(expression.operand), (Const("?"),))
    if isinstance(expression, StructExpr):
        return StructExpr(
            tuple((name, _strip_constants_expr(value)) for name, value in expression.fields)
        )
    if isinstance(expression, BagExpr):
        return BagExpr(tuple(_strip_constants_expr(item) for item in expression.items))
    if isinstance(expression, FunctionCall):
        return FunctionCall(
            expression.name, tuple(_strip_constants_expr(arg) for arg in expression.args)
        )
    return expression


def exact_signature(extent_name: str, expression: LogicalOp) -> str:
    """Signature for exact matching: extent plus the full expression text."""
    return f"{extent_name}|{expression.to_text()}"


def close_signature(extent_name: str, expression: LogicalOp) -> str:
    """Signature for close matching: constants are replaced by placeholders."""

    def visit(node: LogicalOp) -> LogicalOp:
        if isinstance(node, Select):
            return Select(node.variable, _strip_constants_expr(node.predicate), node.child)
        if isinstance(node, Apply):
            return Apply(node.variable, _strip_constants_expr(node.expression), node.child)
        return node

    stripped = transform_bottom_up(expression, visit)
    return f"{extent_name}|{stripped.to_text()}"


class ExecCallHistory:
    """Fixed-size history of exec calls, per exact and per close signature.

    Besides the per-signature (time, rows) observations, the history keeps a
    per-*extent* availability estimate: an exponentially weighted moving
    average of call success (1.0) and failure (0.0).  The cost model uses it
    to penalize plans that depend on flaky sources -- a failure is not just
    lost time, it turns the whole answer partial.

    Lock discipline: one history-wide lock guards every signature deque and
    the availability map, on the *read* paths too -- ``estimate`` smooths a
    deque that concurrent exec workers are appending to, and a deque mutated
    mid-iteration raises.  Calls never block inside the lock (no I/O, no
    user code), so planners and workers of concurrent queries serialize only
    for the microseconds of an append or a smoothing pass.
    """

    def __init__(
        self, window: int = 16, smoothing: float = 0.5, availability_smoothing: float = 0.3
    ):
        if window <= 0:
            raise ValueError("window must be positive")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if not 0.0 < availability_smoothing <= 1.0:
            raise ValueError("availability_smoothing must be in (0, 1]")
        self.window = window
        self.smoothing = smoothing
        self.availability_smoothing = availability_smoothing
        self._exact: dict[str, Deque[_Observation]] = {}
        self._close: dict[str, Deque[_Observation]] = {}
        #: EWMA of call success per extent; absent means "never observed".
        self._availability: dict[str, float] = {}
        #: total number of failed or timed-out calls recorded
        self.failures = 0
        # Exec calls are recorded from concurrent worker threads.
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------------------------
    def record(
        self, extent_name: str, expression: LogicalOp, elapsed: float, rows: int
    ) -> None:
        """Record the outcome of one successful exec call."""
        observation = _Observation(elapsed=max(elapsed, 0.0), rows=max(rows, 0))
        with self._lock:
            self._append(self._exact, exact_signature(extent_name, expression), observation)
            self._append(self._close, close_signature(extent_name, expression), observation)
            self._observe_availability(extent_name, succeeded=True)

    def record_failure(
        self, extent_name: str, expression: LogicalOp, elapsed: float
    ) -> None:
        """Record a failed or timed-out exec call with its true elapsed time.

        The call still cost ``elapsed`` seconds of wall clock before it
        failed, so it enters the same observation stream (with zero rows):
        the cost model learns that this source is slow or flaky instead of
        seeing the attempt as free.  The extent's availability estimate moves
        towards 0.
        """
        observation = _Observation(elapsed=max(elapsed, 0.0), rows=0)
        with self._lock:
            self.failures += 1
            self._append(self._exact, exact_signature(extent_name, expression), observation)
            self._append(self._close, close_signature(extent_name, expression), observation)
            self._observe_availability(extent_name, succeeded=False)

    def _observe_availability(self, extent_name: str, succeeded: bool) -> None:
        # The caller holds ``_lock``.
        previous = self._availability.get(extent_name, 1.0)
        alpha = self.availability_smoothing
        self._availability[extent_name] = (
            alpha * (1.0 if succeeded else 0.0) + (1.0 - alpha) * previous
        )

    def availability(self, extent_name: str) -> float:
        """Estimated probability (EWMA) that a call to ``extent_name`` succeeds.

        1.0 for extents never observed -- the paper's optimistic default.
        """
        with self._lock:
            return self._availability.get(extent_name, 1.0)

    def _append(self, store: dict[str, Deque[_Observation]], key: str, observation: _Observation) -> None:
        queue = store.setdefault(key, deque(maxlen=self.window))
        queue.append(observation)

    # -- estimation ----------------------------------------------------------------------
    def estimate(self, extent_name: str, expression: LogicalOp) -> CostEstimate:
        """Estimate the cost of an exec call from history (exact, close or default).

        The signatures are computed outside the lock (they walk the
        expression tree); the smoothing pass runs under it, so a concurrent
        worker appending an observation can never mutate the deque
        mid-iteration.
        """
        exact_key = exact_signature(extent_name, expression)
        close_key = close_signature(extent_name, expression)
        with self._lock:
            exact = self._exact.get(exact_key)
            if exact:
                time, rows = self._smooth(exact)
                return CostEstimate(time=time, rows=rows, kind="exact", samples=len(exact))
            close = self._close.get(close_key)
            if close:
                time, rows = self._smooth(close)
                return CostEstimate(time=time, rows=rows, kind="close", samples=len(close))
        return CostEstimate(
            time=DEFAULT_TIME_COST, rows=DEFAULT_DATA_COST, kind="default", samples=0
        )

    def _smooth(self, observations: Deque[_Observation]) -> tuple[float, float]:
        """Exponential smoothing over the recorded observations (oldest first)."""
        time_estimate = observations[0].elapsed
        rows_estimate = float(observations[0].rows)
        for observation in list(observations)[1:]:
            time_estimate = (
                self.smoothing * observation.elapsed + (1 - self.smoothing) * time_estimate
            )
            rows_estimate = (
                self.smoothing * observation.rows + (1 - self.smoothing) * rows_estimate
            )
        return time_estimate, rows_estimate

    # -- inspection ----------------------------------------------------------------------
    def recorded_calls(self) -> int:
        """Total number of exact signatures currently tracked."""
        with self._lock:
            return len(self._exact)

    def clear(self) -> None:
        """Forget everything (used between experiment runs)."""
        with self._lock:
            self._exact.clear()
            self._close.clear()
            self._availability.clear()
            self.failures = 0

"""Caching of optimized plans, invalidated by schema changes.

The paper: "if query optimization plans are cached, the mediator must monitor
updates to extents, and modify or recompute plans that are affected by updates
to the extents understood by the mediator."  The registry bumps a schema
version every time an extent is added or dropped; cached plans remember the
version they were built under and are discarded when it moves.

Eviction is least-recently-*used*: ``get`` refreshes an entry's recency, so a
hot query is never pushed out by a stream of one-off queries.  Keys are the
query's *parsed* canonical form (``parse_query(text).to_oql()``), so comment,
case-of-keyword and formatting variants all hit the same entry; text that
does not parse falls back to whitespace collapsing, so a malformed query
still produces a stable key (and its ParseError is raised by the planner,
not here).  Normalization results are memoized per text, so a cache hit
costs one dict lookup, not a parse.

Lock discipline: one cache-wide :class:`threading.RLock` guards the entry
map, the key memo and every counter -- the cache is shared by all the
concurrent queries of one mediator (see :mod:`repro.serving`), and an
``OrderedDict`` being reordered by ``move_to_end`` while another thread
iterates or resizes it corrupts the recency list.  The lock is never held
while parsing: key normalization happens outside it, so a cache hit under
contention costs one short critical section.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ParseError


@dataclass
class _CachedPlan:
    plan: Any
    schema_version: int


def normalize_query_text(query_text: str) -> str:
    """Canonical cache key for ``query_text``: the parsed AST printed back.

    Parsing strips comments, collapses formatting and lowercases keywords
    while preserving the semantics (string literals, identifier case), so
    ``SELECT x FROM x IN person // hot path`` and ``select x from x in
    person`` key the same slot.  Unparseable text falls back to whitespace
    normalization.  Shared by the plan cache and the answer cache
    (:mod:`repro.runtime.answercache`), so both key the same canonical form
    and their hit/miss counters are directly comparable.
    """
    from repro.oql.parser import parse_query  # local: oql must not depend on optimizer

    try:
        return parse_query(query_text).to_oql()
    except ParseError:
        return _normalize_whitespace(query_text)


def _normalize_whitespace(query_text: str) -> str:
    """Collapse whitespace runs so reformatted query text keys the same slot.

    Quoted string literals are kept verbatim -- whitespace inside them is
    semantically significant, so ``x = "Mary  Smith"`` and ``x = "Mary Smith"``
    must key *different* cache slots.
    """
    out: list[str] = []
    i, n = 0, len(query_text)
    while i < n:
        ch = query_text[i]
        if ch in "\"'":
            end = i + 1
            while end < n:
                if query_text[end] == "\\":
                    end += 2
                    continue
                if query_text[end] == ch:
                    end += 1
                    break
                end += 1
            out.append(query_text[i:end])
            i = end
        elif ch.isspace():
            while i < n and query_text[i].isspace():
                i += 1
            out.append(" ")
        else:
            out.append(ch)
            i += 1
    return "".join(out).strip()


@dataclass
class PlanCache:
    """A small query-text -> optimized-plan LRU cache (thread-safe)."""

    capacity: int = 128
    _entries: OrderedDict[str, _CachedPlan] = field(default_factory=OrderedDict)
    #: memo of text -> canonical key, so repeated queries skip the parse
    _keys: dict[str, str] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    #: entries pushed out by the LRU policy (capacity pressure, not staleness).
    evictions: int = 0

    def __post_init__(self) -> None:
        # RLock, not Lock: get()/put() are called from every serving thread.
        self._lock = threading.RLock()

    def _key_for(self, query_text: str) -> str:
        with self._lock:
            key = self._keys.get(query_text)
        if key is not None:
            return key
        # Parse outside the lock: normalization is the expensive part, and
        # two threads racing the same text derive the same key anyway.
        key = normalize_query_text(query_text)
        with self._lock:
            if len(self._keys) >= 4 * self.capacity:
                self._keys.clear()
            self._keys[query_text] = key
        return key

    def get(self, query_text: str, schema_version: int) -> Any | None:
        """Return the cached plan, or None when absent or stale."""
        key = self._key_for(query_text)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            if entry.schema_version != schema_version:
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.plan

    def put(self, query_text: str, schema_version: int, plan: Any) -> None:
        """Store a plan built under ``schema_version``."""
        key = self._key_for(query_text)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            elif len(self._entries) >= self.capacity:
                # Evict the least recently used entry to stay within capacity.
                self._entries.popitem(last=False)
                self.evictions += 1
            self._entries[key] = _CachedPlan(plan=plan, schema_version=schema_version)

    def clear(self) -> None:
        """Drop every cached plan."""
        with self._lock:
            self._entries.clear()
            self._keys.clear()

    def stats(self) -> dict[str, int]:
        """One consistent snapshot of the cache counters."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

"""Caching of optimized plans, invalidated by schema changes.

The paper: "if query optimization plans are cached, the mediator must monitor
updates to extents, and modify or recompute plans that are affected by updates
to the extents understood by the mediator."  The registry bumps a schema
version every time an extent is added or dropped; cached plans remember the
version they were built under and are discarded when it moves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class _CachedPlan:
    plan: Any
    schema_version: int


@dataclass
class PlanCache:
    """A small query-text -> optimized-plan cache."""

    capacity: int = 128
    _entries: dict[str, _CachedPlan] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    def get(self, query_text: str, schema_version: int) -> Any | None:
        """Return the cached plan, or None when absent or stale."""
        entry = self._entries.get(query_text)
        if entry is None:
            self.misses += 1
            return None
        if entry.schema_version != schema_version:
            del self._entries[query_text]
            self.invalidations += 1
            self.misses += 1
            return None
        self.hits += 1
        return entry.plan

    def put(self, query_text: str, schema_version: int, plan: Any) -> None:
        """Store a plan built under ``schema_version``."""
        if len(self._entries) >= self.capacity and query_text not in self._entries:
            # Drop the oldest entry (insertion order) to stay within capacity.
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[query_text] = _CachedPlan(plan=plan, schema_version=schema_version)

    def clear(self) -> None:
        """Drop every cached plan."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

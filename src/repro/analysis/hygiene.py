"""Cancellation / generator hygiene checker.

The runtime cancels cooperatively: `CancelledError` unwinds barrier worker
threads, `StreamClosed` unwinds streaming producers, and waits go through
`repro.runtime.cancellation` so `Mediator.close()` can interrupt them.  Two
things silently break that machinery:

* **broad-except** -- an ``except Exception`` / ``except BaseException`` /
  bare ``except`` in runtime scope can swallow ``StreamClosed`` (and, for
  ``BaseException``, ``CancelledError``) and keep a cancelled worker
  running.  Two shapes are fine: a handler whose body immediately
  re-raises, and a ``try`` whose *earlier* handlers name a cancellation
  exception explicitly (``except StreamClosed: ...`` before the broad
  catch) -- the idiomatic fault-isolation boundary.  Everything else is a
  finding: fixed, or baselined with the reason the broad catch is
  load-bearing.
* **raw-sleep** -- ``time.sleep`` in runtime scope ignores the cancellation
  event; use ``cancellation.sleep`` (or an event wait) so a close() does
  not have to out-wait a backoff.

Scope is ``Spec.hygiene_scan`` path prefixes.  (The third hygiene rule from
the issue -- generators holding a lock across ``yield`` -- is enforced by
the lock checker's ``lock-across-yield`` rule, which has the lock-tracking
machinery.)
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, SourceModule, Spec, dotted_name, iter_functions

#: exception names that make an ``except`` clause "broad"
BROAD = frozenset({"Exception", "BaseException"})

#: cancellation signals; a try that handles one of these *before* its broad
#: handler has already routed cancellation explicitly
CANCELLATION = frozenset({"StreamClosed", "CancelledError", "QueueClosed"})


def _is_broad(handler: ast.ExceptHandler) -> str | None:
    """The broad name caught by this handler, or None."""
    if handler.type is None:
        return "bare except"
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for t in types:
        name = t.attr if isinstance(t, ast.Attribute) else (
            t.id if isinstance(t, ast.Name) else None
        )
        if name in BROAD:
            return name
    return None


def _handler_names(handler: ast.ExceptHandler) -> set[str]:
    if handler.type is None:
        return set()
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    names = set()
    for t in types:
        name = t.attr if isinstance(t, ast.Attribute) else (
            t.id if isinstance(t, ast.Name) else None
        )
        if name:
            names.add(name)
    return names


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True when the handler's body re-raises the caught exception at top
    level (``raise`` / ``raise exc``) -- possibly after bookkeeping."""
    caught = handler.name
    for stmt in handler.body:
        if isinstance(stmt, ast.Raise):
            if stmt.exc is None:
                return True
            if (
                caught
                and isinstance(stmt.exc, ast.Name)
                and stmt.exc.id == caught
            ):
                return True
    return False


def check_hygiene(spec: Spec, modules: list[SourceModule]) -> list[Finding]:
    findings: list[Finding] = []
    for module in modules:
        if not any(module.path.startswith(p) for p in spec.hygiene_scan):
            continue
        # map every node to its enclosing function qualname for scopes
        scope_of: dict[ast.AST, str] = {}
        for cls, qual, func in iter_functions(module.tree):
            name = f"{cls}.{qual}" if cls else qual
            for sub in ast.walk(func):
                scope_of.setdefault(sub, name)
        counters: dict[tuple[str, str], int] = {}

        def scope(node: ast.AST) -> str:
            return scope_of.get(node, "<module>")

        def ordinal(rule: str, where: str) -> int:
            counters[(rule, where)] = counters.get((rule, where), 0) + 1
            return counters[(rule, where)]

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Try):
                earlier: set[str] = set()
                for handler in node.handlers:
                    broad = _is_broad(handler)
                    if (
                        broad is not None
                        and not _reraises(handler)
                        and not (earlier & CANCELLATION)
                    ):
                        where = scope(handler)
                        findings.append(
                            Finding(
                                checker="hygiene",
                                rule="broad-except",
                                path=module.path,
                                line=handler.lineno,
                                scope=where,
                                message=f"`except {broad}` without re-raise can "
                                "swallow StreamClosed"
                                + (
                                    " and CancelledError"
                                    if broad != "Exception"
                                    else " (CancelledError escapes, StreamClosed does not)"
                                ),
                                detail=f"{broad}#{ordinal('broad-except', where)}",
                            )
                        )
                    earlier |= _handler_names(handler)
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name == "time.sleep":
                    where = scope(node)
                    findings.append(
                        Finding(
                            checker="hygiene",
                            rule="raw-sleep",
                            path=module.path,
                            line=node.lineno,
                            scope=where,
                            message="raw time.sleep ignores the cancellation "
                            "event; use cancellation.sleep or an event wait",
                            detail=f"time.sleep#{ordinal('raw-sleep', where)}",
                        )
                    )
    return findings

"""Shared plumbing for the static-analysis checkers.

Everything here is plain-stdlib: findings, parsed source modules, the spec
container the checkers consume, and the handful of AST helpers (dotted-name
resolution, qualname tracking) every checker needs.
"""

from __future__ import annotations

import ast
import importlib.util
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.analysis.dispatch import DispatchSite, Hierarchy
    from repro.analysis.drift import DriftSpec
    from repro.analysis.lockspec import LockComponent


# --------------------------------------------------------------------------- findings
@dataclass(frozen=True)
class Finding:
    """One violation reported by a checker.

    ``key()`` is the stable identity used by the baseline file: it contains
    the checker, rule, path, enclosing scope and a discriminator ``detail``
    -- but **not** the line number, so unrelated edits above a baselined
    finding don't invalidate the baseline.
    """

    checker: str  #: "locks" | "dispatch" | "hygiene" | "drift"
    rule: str  #: short rule id, e.g. "unguarded-write"
    path: str  #: repo-relative posix path
    line: int  #: 1-based line of the offending node
    scope: str  #: enclosing qualname ("Class.method") or "<module>"
    message: str  #: human-readable description
    detail: str = ""  #: stable discriminator for the baseline key

    def key(self) -> str:
        return "|".join((self.checker, self.rule, self.path, self.scope, self.detail))

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.checker}:{self.rule}] {self.scope}: {self.message}"


# --------------------------------------------------------------------------- sources
@dataclass(frozen=True)
class SourceModule:
    """A parsed source file: path (repo-relative posix), text and AST."""

    path: str
    text: str
    tree: ast.Module

    @property
    def lines(self) -> list[str]:
        return self.text.splitlines()


def load_modules(root: Path, scan: Iterable[str]) -> list[SourceModule]:
    """Parse every ``.py`` file under the given scan roots (files or dirs)."""
    modules: list[SourceModule] = []
    seen: set[str] = set()
    for entry in scan:
        base = root / entry
        files: Iterable[Path]
        if base.is_dir():
            files = sorted(base.rglob("*.py"))
        elif base.is_file():
            files = [base]
        else:
            continue
        for file in files:
            rel = file.relative_to(root).as_posix()
            if rel in seen:
                continue
            seen.add(rel)
            text = file.read_text(encoding="utf-8")
            modules.append(SourceModule(path=rel, text=text, tree=ast.parse(text, filename=rel)))
    return modules


# --------------------------------------------------------------------------- spec
@dataclass(frozen=True)
class Spec:
    """Everything the checkers need to know about one codebase.

    The repo's own spec is built by :func:`repro.analysis.spec.repo_spec`;
    fixture directories ship an ``analysis_spec.py`` defining ``SPEC``.
    """

    scan: tuple[str, ...]  #: dirs/files (relative to root) to parse
    lock_components: tuple["LockComponent", ...] = ()
    hierarchies: tuple["Hierarchy", ...] = ()
    dispatch_sites: tuple["DispatchSite", ...] = ()
    #: path prefixes (relative posix) where the hygiene rules apply
    hygiene_scan: tuple[str, ...] = ()
    drift: "DriftSpec | None" = None
    #: default baseline file, relative to root ("" = no baseline)
    baseline: str = ""


def load_spec_file(path: Path) -> Spec:
    """Load ``SPEC`` from a fixture's ``analysis_spec.py``."""
    module_spec = importlib.util.spec_from_file_location(f"_analysis_spec_{path.stem}", path)
    if module_spec is None or module_spec.loader is None:  # pragma: no cover
        raise RuntimeError(f"cannot load spec file {path}")
    module = importlib.util.module_from_spec(module_spec)
    module_spec.loader.exec_module(module)
    spec = getattr(module, "SPEC", None)
    if not isinstance(spec, Spec):
        raise RuntimeError(f"{path} does not define SPEC = Spec(...)")
    return spec


# --------------------------------------------------------------------------- AST helpers
def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def tail_name(node: ast.expr) -> str | None:
    """The final identifier of a Name/Attribute chain (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def self_attr(node: ast.expr) -> str | None:
    """``attr`` when node is exactly ``self.attr``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def self_attr_root(node: ast.expr) -> str | None:
    """The first attribute of any ``self.a.b.c...`` chain (-> ``a``)."""
    while isinstance(node, ast.Attribute):
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            return node.attr
        node = node.value
    return None


@dataclass
class ScopedNode:
    """An AST statement/expression with its enclosing context attached."""

    node: ast.AST
    cls: str | None  #: enclosing class name (innermost)
    func: str | None  #: enclosing function qualname within the class/module

    @property
    def qualname(self) -> str:
        if self.cls and self.func:
            return f"{self.cls}.{self.func}"
        return self.func or self.cls or "<module>"


def iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[str | None, str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield ``(class_name, func_qualname, node)`` for every function.

    ``func_qualname`` chains nested functions (``outer.inner``) but not the
    class; ``class_name`` is the innermost enclosing class (or None).
    """

    def walk(node: ast.AST, cls: str | None, prefix: str) -> Iterator[
        tuple[str | None, str, ast.FunctionDef | ast.AsyncFunctionDef]
    ]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield cls, qual, child
                yield from walk(child, cls, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, child.name, "")

    yield from walk(tree, None, "")


def find_class(tree: ast.Module, name: str) -> ast.ClassDef | None:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def class_fields(cls: ast.ClassDef) -> list[str]:
    """Dataclass-style annotated field names declared in a class body."""
    fields: list[str] = []
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            fields.append(stmt.target.id)
    return fields


def function_params(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    """Positional/keyword parameter names, excluding ``self``."""
    args = func.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    return [n for n in names if n != "self"]


def isinstance_classes(node: ast.Call) -> list[str]:
    """Class simple names named by an ``isinstance(x, ...)`` call."""
    names: list[str] = []
    if len(node.args) == 2:
        target = node.args[1]
        candidates = target.elts if isinstance(target, ast.Tuple) else [target]
        for cand in candidates:
            name = tail_name(cand)
            if name:
                names.append(name)
    return names

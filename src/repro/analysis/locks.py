"""Lock-discipline checker.

Enforces the machine-readable lock spec (:mod:`repro.analysis.lockspec`)
against the code:

* **unguarded-write** -- an assignment/augmented assignment/mutating method
  call on a guarded ``self`` attribute outside a ``with self.<lock>`` block
  for the lock the spec says guards it (constructors are exempt, as are
  methods the spec marks as running with the lock already held);
* **lock-order** -- acquiring a spec lock while holding one of equal or
  greater rank (the acquisition hierarchy is part of the spec);
* **lock-across-yield** -- a generator yielding while holding a lock (spec
  locks inside component classes, plus a name-based heuristic --
  ``*lock*``, ``_condition``, ``_state``, ``_active`` -- in hygiene scope);
* **blocking-under-lock** -- ``time.sleep``, thread/future ``join()``,
  ``result()``, wrapper ``submit``/``submit_stream``, timed queue
  ``get``/``pop`` and foreign-condition ``wait`` calls made while holding a
  lock.  ``wait``/``wait_for`` on the held condition itself is the correct
  pattern and exempt, as are ``get``/``pop`` with ``timeout=0``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import (
    Finding,
    SourceModule,
    Spec,
    dotted_name,
    find_class,
    self_attr,
    tail_name,
)
from repro.analysis.lockspec import LockComponent, LockDecl

#: method names that mutate their receiver in place
MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "setdefault",
        "sort",
        "update",
    }
)

#: lock-ish attribute names for the heuristic (spec-less) rules
HEURISTIC_LOCK_NAMES = frozenset({"_condition", "_state", "_active"})

CONSTRUCTORS = frozenset({"__init__", "__post_init__", "__new__"})


def _looks_like_lock(name: str | None) -> bool:
    return name is not None and ("lock" in name.lower() or name in HEURISTIC_LOCK_NAMES)


def _with_lock_attr(item: ast.withitem) -> str | None:
    """The ``attr`` of a ``with self.attr:`` item, else None."""
    return self_attr(item.context_expr)


def _assign_roots(node: ast.stmt) -> list[ast.expr]:
    """Targets whose mutation a lock rule should inspect."""
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    if isinstance(node, ast.Delete):
        return list(node.targets)
    return []


def _self_root(node: ast.expr) -> str | None:
    """First attribute of a ``self.a...`` chain, seen through subscripts."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        node = node.value
    return None


class _FunctionChecker(ast.NodeVisitor):
    """Walks one function body tracking the stack of held locks."""

    def __init__(
        self,
        module: SourceModule,
        qualname: str,
        component: LockComponent | None,
        heuristic: bool,
        findings: list[Finding],
        seen: set[tuple[str, str, int, str]],
    ):
        self.module = module
        self.qualname = qualname
        self.component = component
        self.heuristic = heuristic
        self.findings = findings
        self.seen = seen
        #: stack of (lock_name, LockDecl | None) currently held
        self.held: list[tuple[str, LockDecl | None]] = []
        self.in_constructor = qualname.rpartition(".")[2] in CONSTRUCTORS

    # -- helpers ---------------------------------------------------------------------
    def _emit(self, rule: str, node: ast.AST, message: str, detail: str) -> None:
        line = getattr(node, "lineno", 0)
        dedup = (rule, self.module.path, line, detail)
        if dedup in self.seen:
            return
        self.seen.add(dedup)
        self.findings.append(
            Finding(
                checker="locks",
                rule=rule,
                path=self.module.path,
                line=line,
                scope=self.qualname,
                message=message,
                detail=detail,
            )
        )

    def _held_decl_attrs(self) -> set[str]:
        return {name for name, _ in self.held}

    def _spec_lock(self, attr: str | None) -> LockDecl | None:
        if attr is None or self.component is None:
            return None
        return self.component.lock_for(attr)

    def _held_rank(self) -> tuple[int, str] | None:
        """Highest rank currently held among spec locks (rank, name)."""
        best: tuple[int, str] | None = None
        for name, decl in self.held:
            if decl is not None and (best is None or decl.rank > best[0]):
                best = (decl.rank, name)
        return best

    def _unguarded_ok(self, attr: str) -> bool:
        if self.component is None:
            return False
        method = self.qualname.rpartition(".")[2]
        return any(
            m == method and a == attr for m, a, _ in self.component.unguarded_ok
        )

    # -- with / locks ----------------------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:  # pragma: no cover
        self._visit_with(node)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        pushed = 0
        for item in node.items:
            attr = _with_lock_attr(item)
            decl = self._spec_lock(attr)
            is_lock = decl is not None or (
                self.heuristic and _looks_like_lock(tail_name(item.context_expr))
            )
            if attr is None and self.heuristic and _looks_like_lock(tail_name(item.context_expr)):
                attr = tail_name(item.context_expr)
            if not is_lock or attr is None:
                self.visit(item.context_expr)
                continue
            held = self._held_rank()
            if decl is not None and held is not None and decl.rank <= held[0] and not (
                decl.kind == "RLock" and held[1] == attr
            ):
                self._emit(
                    "lock-order",
                    node,
                    f"acquires `{attr}` (rank {decl.rank}) while holding "
                    f"`{held[1]}` (rank {held[0]}); locks must be acquired in "
                    "increasing rank order",
                    f"{held[1]}->{attr}@{self.qualname}",
                )
            self.held.append((attr, decl))
            pushed += 1
        for stmt in node.body:
            self.visit(stmt)
        for _ in range(pushed):
            self.held.pop()

    # -- yields ----------------------------------------------------------------------
    def visit_Yield(self, node: ast.Yield) -> None:
        self._check_yield(node)
        self.generic_visit(node)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self._check_yield(node)
        self.generic_visit(node)

    def _check_yield(self, node: ast.AST) -> None:
        if self.held:
            lock = self.held[-1][0]
            self._emit(
                "lock-across-yield",
                node,
                f"generator yields while holding `{lock}`; a stalled consumer "
                "would hold the lock indefinitely",
                f"{lock}@{self.qualname}",
            )

    # -- nested defs get a fresh stack (they run later, not under this lock) ----------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    # -- writes ----------------------------------------------------------------------
    def _check_write(self, stmt: ast.stmt) -> None:
        if self.component is None or self.in_constructor:
            return
        for target in _assign_roots(stmt):
            attr = _self_root(target)
            if attr is None:
                continue
            decl = self.component.guard_of(attr)
            if decl is None:
                continue
            if decl.attr in self._held_decl_attrs():
                continue
            if self._unguarded_ok(attr):
                continue
            self._emit(
                "unguarded-write",
                stmt,
                f"writes `self.{attr}` (guarded by `{decl.attr}`) without "
                f"holding `{decl.attr}`",
                f"{attr}@{self.qualname}",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_write(node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_write(node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_write(node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        self._check_write(node)
        self.generic_visit(node)

    # -- calls: mutators on guarded state, blocking calls under a lock ---------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            method = func.attr
            # mutating call on guarded state outside the lock
            if (
                self.component is not None
                and not self.in_constructor
                and method in MUTATORS
            ):
                attr = _self_root(func.value)
                if attr is not None:
                    decl = self.component.guard_of(attr)
                    if (
                        decl is not None
                        and decl.attr not in self._held_decl_attrs()
                        and not self._unguarded_ok(attr)
                    ):
                        self._emit(
                            "unguarded-write",
                            node,
                            f"calls `self.{attr}.{method}(...)` (guarded by "
                            f"`{decl.attr}`) without holding `{decl.attr}`",
                            f"{attr}.{method}@{self.qualname}",
                        )
            if self.held:
                self._check_blocking_attr_call(node, func)
        elif isinstance(func, ast.Name) and self.held and func.id == "sleep":
            self._blocking(node, "sleep(...)", "sleep")
        dn = dotted_name(func)
        if self.held and dn in {"time.sleep", "cancellation.sleep"}:
            self._blocking(node, f"{dn}(...)", dn or "sleep")
        self.generic_visit(node)

    def _blocking(self, node: ast.AST, call: str, detail_call: str) -> None:
        lock = self.held[-1][0]
        self._emit(
            "blocking-under-lock",
            node,
            f"blocking call {call} while holding `{lock}`",
            f"{detail_call}@{self.qualname}",
        )

    def _check_blocking_attr_call(self, node: ast.Call, func: ast.Attribute) -> None:
        method = func.attr
        base_attr = self_attr(func.value)
        held_attrs = self._held_decl_attrs()
        if method in {"wait", "wait_for"}:
            # waiting on the condition you hold is the correct pattern
            if base_attr is not None and base_attr in held_attrs:
                return
            if _looks_like_lock(tail_name(func.value)) or base_attr is not None:
                self._blocking(node, f".{method}(...) on `{tail_name(func.value)}`", f".{method}")
            return
        if method == "join":
            # str.join takes exactly one positional (the iterable); thread/pool
            # joins take none, or a timeout keyword
            if len(node.args) == 1 and not node.keywords:
                return
            self._blocking(node, ".join(...)", ".join")
            return
        if method in {"result", "submit", "submit_stream"}:
            self._blocking(node, f".{method}(...)", f".{method}")
            return
        if method in {"get", "pop"}:
            timeout = next((k.value for k in node.keywords if k.arg == "timeout"), None)
            if timeout is None:
                return  # plain dict/list get/pop: not blocking
            if isinstance(timeout, ast.Constant) and timeout.value == 0:
                return  # explicit non-blocking poll
            self._blocking(node, f".{method}(timeout=...)", f".{method}")


def _component_for(spec: Spec, path: str, cls: str | None) -> LockComponent | None:
    if cls is None:
        return None
    for comp in spec.lock_components:
        if comp.module == path and comp.cls == cls:
            return comp
    return None


def _iter_class_functions(
    cls: ast.ClassDef,
) -> Iterable[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    def walk(node: ast.AST, prefix: str):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield qual, child
                yield from walk(child, f"{qual}.")

    yield from walk(cls, "")


def check_locks(spec: Spec, modules: list[SourceModule]) -> list[Finding]:
    findings: list[Finding] = []
    seen: set[tuple[str, str, int, str]] = set()
    by_path = {m.path: m for m in modules}

    # spec-driven pass: component classes
    for comp in spec.lock_components:
        module = by_path.get(comp.module)
        if module is None:
            findings.append(
                Finding(
                    checker="locks",
                    rule="spec-error",
                    path=comp.module,
                    line=1,
                    scope=comp.cls,
                    message="lock spec names a module that was not scanned",
                    detail=f"missing-module@{comp.cls}",
                )
            )
            continue
        cls_node = find_class(module.tree, comp.cls)
        if cls_node is None:
            findings.append(
                Finding(
                    checker="locks",
                    rule="spec-error",
                    path=comp.module,
                    line=1,
                    scope=comp.cls,
                    message=f"lock spec names class `{comp.cls}` not found in module",
                    detail=f"missing-class@{comp.cls}",
                )
            )
            continue
        heuristic = any(comp.module.startswith(p) for p in spec.hygiene_scan)
        for qual, func in _iter_class_functions(cls_node):
            checker = _FunctionChecker(
                module, f"{comp.cls}.{qual}", comp, heuristic, findings, seen
            )
            held = dict(comp.held_in).get(qual.rpartition(".")[2])
            if held is not None:
                checker.held.append((held, comp.lock_for(held)))
            for stmt in func.body:
                checker.visit(stmt)

    # heuristic pass: every function in hygiene scope (fixture code and
    # non-component runtime helpers still get yield/blocking checks)
    spec_classes = {(c.module, c.cls) for c in spec.lock_components}
    for module in modules:
        if not any(module.path.startswith(p) for p in spec.hygiene_scan):
            continue
        from repro.analysis.core import iter_functions

        for cls, qual, func in iter_functions(module.tree):
            if (module.path, cls) in spec_classes:
                continue  # already covered by the spec pass
            name = f"{cls}.{qual}" if cls else qual
            checker = _FunctionChecker(module, name, None, True, findings, seen)
            for stmt in func.body:
                checker.visit(stmt)
    return findings

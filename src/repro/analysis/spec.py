"""The repo's own analysis spec: locks, hierarchies, dispatch sites, drift.

This file is the single machine-readable statement of the invariants the
rest of the codebase documents in prose:

* the **lock spec** mirrors (and generates) the lock-discipline map in
  ``docs/ARCHITECTURE.md``: every component lock, the attributes it guards,
  and its rank in the acquisition hierarchy (hold rank *r*, acquire only
  strictly greater ranks);
* the **dispatch sites** are every ``isinstance`` ladder that must stay
  complete over the logical/physical/expression hierarchies -- with the
  deliberate gaps spelled out per-site, each with its justification;
* the **drift spec** names the documented knob/report surfaces.

A new operator class added to ``repro.algebra`` makes every ladder that
ignores it fail the suite until it is handled or exempted here -- the
static half of the coverage contract whose dynamic half is the
differential harness (``tests/test_engine_equivalence.py``).
"""

from __future__ import annotations

from repro.analysis.core import Spec
from repro.analysis.dispatch import DispatchSite, Hierarchy
from repro.analysis.drift import DriftSpec
from repro.analysis.lockspec import LockComponent, LockDecl

# --------------------------------------------------------------------------- locks
#
# Rank convention: 10-19 engine/serving front doors, 20-29 admission, 30-39
# scheduling queues, 40-49 catalog/optimizer state and row transport, 50+
# source simulation leaves.  No call path should acquire downward.
LOCK_COMPONENTS: tuple[LockComponent, ...] = (
    LockComponent(
        module="src/repro/serving/server.py",
        cls="MediatorServer",
        locks=(
            LockDecl(
                attr="_state",
                kind="Condition",
                guards=(
                    "_closed",
                    "_inflight",
                    "_submitted",
                    "_rejected",
                    "_timed_out",
                    "_completed",
                    "_queue_wait_total",
                ),
                rank=10,
                guards_doc="closed flag, in-flight count, server counters",
            ),
        ),
        notes="never held while executing a query or blocking on a client; "
        "futures and row queues carry their own locks.",
    ),
    LockComponent(
        module="src/repro/runtime/executor.py",
        cls="Executor",
        locks=(
            LockDecl(
                attr="_pool_lock",
                kind="Lock",
                guards=("_pool",),
                rank=14,
                guards_doc="pool lifecycle",
            ),
            LockDecl(
                attr="_types_lock",
                kind="Lock",
                guards=("_type_checked_extents", "_type_checked_version"),
                rank=15,
                guards_doc="the type-check verdict cache",
                notes="wrapper type checks run *outside* `_types_lock`; "
                "re-insertion is version-guarded.",
            ),
            LockDecl(
                attr="_active",
                kind="Condition",
                guards=("_dispatch_cancels", "_active_streams"),
                rank=16,
                guards_doc="dispatch/stream registries for `close()`",
            ),
            LockDecl(
                attr="_probe_lock",
                kind="Lock",
                guards=("probe_cache_hits", "probe_cache_misses"),
                rank=17,
                guards_doc="probe-cache statistics folded in by probe runners",
            ),
        ),
        notes="all four are leaf-level within the executor: none is held "
        "while parsing, planning, or calling wrapper code.",
    ),
    LockComponent(
        module="src/repro/runtime/admission.py",
        cls="AdmissionController",
        locks=(
            LockDecl(
                attr="_lock",
                kind="Lock",
                guards=("_inflight", "_closed", "stats"),
                rank=20,
                guards_doc="in-flight count, closed flag, admission counters",
            ),
        ),
        notes="promotion polls its FairQueue non-blockingly (`timeout=0`) "
        "under the lock; waiters block on their own events, never on it.",
    ),
    LockComponent(
        module="src/repro/runtime/admission.py",
        cls="FairQueue",
        locks=(
            LockDecl(
                attr="_condition",
                kind="Condition",
                guards=("_classes", "_size", "_closed", "max_depth"),
                rank=30,
                guards_doc="priority classes, depth, closed flag, high-water mark",
            ),
        ),
        notes="`pop` blocks only on its own condition; waiters are promoted "
        "in weighted-fair order.",
    ),
    LockComponent(
        module="src/repro/core/registry.py",
        cls="Registry",
        locks=(
            LockDecl(
                attr="_lock",
                kind="RLock",
                guards=("schema", "_schema_version"),
                rank=40,
                guards_doc="interfaces, extents, repositories, views, "
                "`schema_version`",
                notes="re-entrant because view expansion re-enters the "
                "registry; every mutation bumps `schema_version` under the "
                "lock.",
            ),
        ),
        held_in=(("_bump", "_lock"),),
    ),
    LockComponent(
        module="src/repro/optimizer/plancache.py",
        cls="PlanCache",
        locks=(
            LockDecl(
                attr="_lock",
                kind="RLock",
                guards=(
                    "_entries",
                    "_keys",
                    "hits",
                    "misses",
                    "invalidations",
                    "evictions",
                ),
                rank=41,
                guards_doc="the LRU map and hit/miss/eviction/invalidation "
                "counters",
                notes="entries are keyed `(canonical text, schema_version)`, "
                "so a stale plan is unreachable rather than invalidated in "
                "place.",
            ),
        ),
    ),
    LockComponent(
        module="src/repro/optimizer/history.py",
        cls="ExecCallHistory",
        locks=(
            LockDecl(
                attr="_lock",
                kind="Lock",
                guards=("_exact", "_close", "_availability", "failures"),
                rank=42,
                guards_doc="the per-`(source, shape)` deques and availability "
                "EWMAs",
                notes="`record()` appends and `estimate()` aggregates under "
                "the lock; the cost model reads through this interface only.",
            ),
        ),
        held_in=(("_observe_availability", "_lock"),),
    ),
    LockComponent(
        module="src/repro/runtime/answercache.py",
        cls="AnswerCache",
        locks=(
            LockDecl(
                attr="_lock",
                kind="RLock",
                guards=(
                    "_entries",
                    "_by_plan",
                    "_keys",
                    "_total_rows",
                    "hits",
                    "subsumption_hits",
                    "misses",
                    "patches",
                    "stores",
                    "invalidations",
                    "evictions",
                ),
                rank=43,
                guards_doc="the answer LRU, the plan-text subsumption index, "
                "the row budget and the hit/subsumption/patch/miss counters",
                notes="never held while planning, executing, replaying "
                "deltas or reading the registry; entries pin a "
                "`schema_version` so a stale answer is unreachable, and "
                "partial patches re-validate the pin after executing.",
            ),
        ),
        held_in=(("_remove_entry", "_lock"),),
    ),
    LockComponent(
        module="src/repro/runtime/backpressure.py",
        cls="BoundedRowQueue",
        locks=(
            LockDecl(
                attr="_condition",
                kind="Condition",
                guards=(
                    "_rows",
                    "_closed",
                    "_finished",
                    "_error",
                    "delivered",
                    "stalls",
                ),
                rank=45,
                guards_doc="the row deque, delivered/stall counters, closed "
                "flag",
                notes="producer blocks at capacity; consumer close wakes and "
                "cancels the producer with `StreamClosed`.",
            ),
        ),
    ),
    LockComponent(
        module="src/repro/sources/network.py",
        cls="NetworkProfile",
        locks=(
            LockDecl(
                attr="_lock",
                kind="Lock",
                guards=("_rng",),
                rank=50,
                guards_doc="the seeded RNG",
            ),
        ),
        notes="under concurrency the *multiset* of injected faults is "
        "reproducible; their assignment to calls is scheduling-dependent.",
    ),
    LockComponent(
        module="src/repro/sources/network.py",
        cls="AvailabilityModel",
        locks=(
            LockDecl(
                attr="_lock",
                kind="Lock",
                guards=("_rng", "_forced_failures", "_forced_crashes", "_forced_kills"),
                rank=51,
                guards_doc="the seeded RNG and armed failure/crash/kill lists",
            ),
        ),
        notes="`available` is a deliberately unguarded hard switch: a plain "
        "bool flipped by tests, torn reads impossible.",
    ),
)

# --------------------------------------------------------------------------- dispatch
HIERARCHIES: tuple[Hierarchy, ...] = (
    Hierarchy(name="logical", module="src/repro/algebra/logical.py", root="LogicalOp"),
    Hierarchy(name="physical", module="src/repro/algebra/physical.py", root="PhysicalOp"),
    Hierarchy(name="expr", module="src/repro/algebra/expressions.py", root="Expr"),
)

#: why Field never needs a dispatch arm (shared by several physical sites)
_FIELD = "Field is the source placeholder inside Exec, never a plan root"
#: the operators that only exist above the wrapper boundary
_MEDIATOR_ONLY = "mediator-side only: the planner never pushes it below the wrapper boundary"

DISPATCH_SITES: tuple[DispatchSite, ...] = (
    DispatchSite(
        name="unparser.unparse",
        module="src/repro/algebra/unparser.py",
        hierarchy="logical",
        functions=("_Unparser.unparse",),
    ),
    DispatchSite(
        name="unparser.decompose",
        module="src/repro/algebra/unparser.py",
        hierarchy="logical",
        functions=("_Unparser._decompose",),
    ),
    DispatchSite(
        name="unparser.substitute-variable",
        module="src/repro/algebra/unparser.py",
        hierarchy="expr",
        functions=("_substitute_variable",),
        exempt=(
            ("Const", "constants carry no variable references; the fall-through is the arm"),
            (
                "Subquery",
                "subquery predicates are never pushed (the capability vocabulary "
                "refuses them), so alias substitution cannot meet one",
            ),
        ),
    ),
    DispatchSite(
        name="cost.estimate",
        module="src/repro/optimizer/cost.py",
        hierarchy="physical",
        functions=("CostModel.estimate",),
        exempt=(("Field", _FIELD),),
    ),
    DispatchSite(
        name="implementation.implement",
        module="src/repro/optimizer/implementation.py",
        hierarchy="logical",
        functions=("implement",),
    ),
    DispatchSite(
        name="implementation.rebuild",
        module="src/repro/optimizer/implementation.py",
        hierarchy="logical",
        functions=("_rebuild",),
        exempt=(
            ("Get", "raw gets never survive planning; implement() raises on them first"),
            ("Join", "joins are implemented whole by implement(); alternatives are enumerated, not rebuilt"),
            ("BagLiteral", "leaf with no children to rebuild; implement() builds MkBag directly"),
        ),
    ),
    DispatchSite(
        name="partial_eval.to_logical",
        module="src/repro/runtime/partial_eval.py",
        hierarchy="physical",
        functions=("PartialAnswerBuilder.to_logical",),
        exempt=(("Field", _FIELD),),
    ),
    DispatchSite(
        name="partial_eval.evaluate_logical",
        module="src/repro/runtime/partial_eval.py",
        hierarchy="logical",
        functions=("PartialAnswerBuilder.evaluate_logical",),
    ),
    DispatchSite(
        name="executor.compose_rows",
        module="src/repro/runtime/executor.py",
        hierarchy="physical",
        functions=("Executor.compose_rows",),
        exempt=(("Field", _FIELD),),
    ),
    DispatchSite(
        name="degrade.strippable",
        module="src/repro/runtime/degrade.py",
        hierarchy="logical",
        constant="_STRIPPABLE",
        exempt=(
            ("Get", "the root scan itself: stripping it leaves nothing to submit"),
            ("Submit", "the degradation ladder runs *inside* one submit"),
            ("Apply", "computed attributes cannot be compensated row-wise without the source's rows"),
            ("Join", "multi-leaf pushdown: degrading means splitting, handled by the refuse-to-push path"),
            ("BindJoin", "probe shape is degraded by the probe runner, not the ladder"),
            ("Union", "multi-leaf pushdown: degraded by per-branch splitting, not stripping"),
            ("Distinct", "stripping distinct would re-ship duplicate rows the mediator cannot attribute"),
            ("BagLiteral", "literal leaf: nothing smaller to submit"),
        ),
    ),
    DispatchSite(
        name="wrappers.evaluate_stream",
        module="src/repro/wrappers/base.py",
        hierarchy="logical",
        functions=("AlgebraEvaluator.evaluate_stream",),
        exempt=(
            ("Submit", _MEDIATOR_ONLY),
            ("BindJoin", _MEDIATOR_ONLY),
            ("Apply", _MEDIATOR_ONLY),
            ("Distinct", "no `distinct` capability terminal exists; the grammar never routes it here"),
        ),
    ),
    DispatchSite(
        name="sqlwrapper.render",
        module="src/repro/wrappers/sqlwrapper.py",
        hierarchy="logical",
        exempt=(
            ("Submit", _MEDIATOR_ONLY),
            ("BindJoin", _MEDIATOR_ONLY),
            ("Apply", _MEDIATOR_ONLY),
            ("Distinct", "no `distinct` terminal in the Sql grammar"),
            ("Union", "no `union` terminal in the Sql grammar"),
            ("Flatten", "no `flatten` terminal in the Sql grammar"),
            ("BagLiteral", "no `bag` terminal in the Sql grammar"),
        ),
    ),
    DispatchSite(
        name="sqlwrapper.render-expr",
        module="src/repro/wrappers/sqlwrapper.py",
        hierarchy="expr",
        exempt=(
            ("Arithmetic", "not in the Sql predicate vocabulary; the grammar refuses it upstream"),
            ("StructExpr", "not in the Sql predicate vocabulary"),
            ("BagExpr", "not in the Sql predicate vocabulary"),
            ("FunctionCall", "aggregates reach SQL through GroupBy's aggregate list, never as a bare predicate"),
            ("Subquery", "never pushed below the wrapper boundary"),
        ),
    ),
    DispatchSite(
        name="capabilities.matches",
        module="src/repro/algebra/capabilities.py",
        hierarchy="logical",
        functions=("CapabilityGrammar._matches",),
        exempt=(
            ("Submit", "submits are what grammars gate, not what they contain"),
            ("BindJoin", "rewritten to batched probes before capability checking"),
            ("Apply", _MEDIATOR_ONLY),
            ("Distinct", "no `distinct` capability terminal exists"),
        ),
    ),
    DispatchSite(
        name="expressions.walk",
        module="src/repro/algebra/expressions.py",
        hierarchy="expr",
        functions=("walk_expr",),
        exempt=(
            ("Const", "leaf: yielded, nothing to recurse into"),
            ("Var", "leaf: yielded, nothing to recurse into"),
            ("Subquery", "deliberately opaque: rules that expand subqueries walk their bodies themselves"),
        ),
    ),
    DispatchSite(
        name="history.strip-constants",
        module="src/repro/optimizer/history.py",
        hierarchy="expr",
        functions=("_strip_constants_expr",),
        exempt=(
            ("Var", "variables carry no constants; the fall-through is the arm"),
            ("Subquery", "never appears in recorded pushdown shapes (not pushable)"),
        ),
    ),
)

# --------------------------------------------------------------------------- assembly
HYGIENE_SCAN: tuple[str, ...] = (
    "src/repro/runtime/",
    "src/repro/serving/",
    "src/repro/wrappers/",
    "src/repro/sources/",
)


def repo_spec() -> Spec:
    return Spec(
        scan=("src/repro",),
        lock_components=LOCK_COMPONENTS,
        hierarchies=HIERARCHIES,
        dispatch_sites=DISPATCH_SITES,
        hygiene_scan=HYGIENE_SCAN,
        drift=DriftSpec(),
        baseline="analysis-baseline.txt",
    )

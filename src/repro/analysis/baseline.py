"""The findings baseline.

Findings that are deliberate (a fault-isolation ``except Exception``, the
one sanctioned ``time.sleep`` fallback inside the cancellation module...)
are recorded in a baseline file, one per line::

    checker|rule|path|scope|detail :: one-line justification

Keys are :meth:`repro.analysis.core.Finding.key` -- no line numbers, so the
baseline survives unrelated edits.  The rules:

* a finding not in the baseline **fails** the run;
* a baseline entry with no justification **fails** the run;
* a baseline entry that no longer matches any finding is **stale** and
  fails the run -- fixed code must shed its exemptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.analysis.core import Finding

SEPARATOR = " :: "


@dataclass(frozen=True)
class BaselineEntry:
    key: str
    justification: str
    line: int


@dataclass
class Baseline:
    path: Path
    entries: dict[str, BaselineEntry]
    errors: list[str]

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        entries: dict[str, BaselineEntry] = {}
        errors: list[str] = []
        if path.is_file():
            for lineno, raw in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1
            ):
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                key, sep, justification = line.partition(SEPARATOR)
                key = key.strip()
                justification = justification.strip()
                if not sep or not justification:
                    errors.append(
                        f"{path.name}:{lineno}: baseline entry has no "
                        f"justification (expected `key{SEPARATOR}why`)"
                    )
                    continue
                if key in entries:
                    errors.append(f"{path.name}:{lineno}: duplicate baseline key {key!r}")
                    continue
                entries[key] = BaselineEntry(key, justification, lineno)
        return cls(path=path, entries=entries, errors=errors)

    def split(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """(new, baselined, stale) for this run's findings."""
        new: list[Finding] = []
        baselined: list[Finding] = []
        matched: set[str] = set()
        for finding in findings:
            key = finding.key()
            if key in self.entries:
                baselined.append(finding)
                matched.add(key)
            else:
                new.append(finding)
        stale = [e for k, e in self.entries.items() if k not in matched]
        return new, baselined, stale


def write_baseline(path: Path, findings: list[Finding], justification: str) -> None:
    """Write a fresh baseline for the given findings (used by
    ``--write-baseline``; the placeholder justification must be edited)."""
    lines = [
        "# repro.analysis findings baseline -- every entry needs a one-line",
        "# justification after ` :: `; stale entries fail the run.",
    ]
    for finding in sorted(findings, key=lambda f: f.key()):
        lines.append(f"{finding.key()}{SEPARATOR}{justification}")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")

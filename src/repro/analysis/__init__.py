"""Static-analysis suite for the repro codebase.

``python -m repro.analysis`` machine-checks the invariants the rest of the
repo only states in prose:

* **lock discipline** (:mod:`repro.analysis.locks`) -- writes to guarded
  state outside the guarding lock, acquisition-order violations, locks held
  across ``yield``, blocking calls made under a lock;
* **dispatch completeness** (:mod:`repro.analysis.dispatch`) -- every
  operator/expression subclass is handled (or explicitly exempted) at every
  ``isinstance``-ladder dispatch site;
* **cancellation hygiene** (:mod:`repro.analysis.hygiene`) -- broad
  ``except`` clauses that can swallow ``CancelledError``/``StreamClosed``,
  raw ``time.sleep`` in runtime code;
* **knob/report drift** (:mod:`repro.analysis.drift`) -- config knobs,
  report fields and the lock-discipline map cross-checked against README
  and docs/ARCHITECTURE.md.

The repo's own invariants live in :mod:`repro.analysis.spec`; a directory
with its own ``analysis_spec.py`` (the test fixtures) brings its own.
Findings are either fixed or recorded in ``analysis-baseline.txt`` with a
one-line justification; any non-baselined finding fails the run (and CI).
"""

from repro.analysis.core import (
    Finding,
    SourceModule,
    Spec,
    load_modules,
    load_spec_file,
)
from repro.analysis.lockspec import LockComponent, LockDecl, render_lock_table
from repro.analysis.dispatch import DispatchSite, Hierarchy
from repro.analysis.drift import DriftSpec
from repro.analysis.runner import run_suite

__all__ = [
    "Finding",
    "SourceModule",
    "Spec",
    "LockComponent",
    "LockDecl",
    "Hierarchy",
    "DispatchSite",
    "DriftSpec",
    "load_modules",
    "load_spec_file",
    "render_lock_table",
    "run_suite",
]

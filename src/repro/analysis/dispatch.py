"""Dispatch-completeness checker.

The algebra is dispatched by ``isinstance`` ladders all over the codebase
(unparser, cost model, implementation rules, partial-answer rebuilds, the
wrapper-side evaluator, the mini-SQL renderer, the capability grammar, the
degradation ladder...).  Each :class:`DispatchSite` names the functions (or
the module-level tuple constant) making up one ladder, which class
:class:`Hierarchy` it dispatches over, and which subclasses it
**deliberately** does not handle -- with a justification.  The checker
enumerates the hierarchy from the AST (transitively, across every scanned
module, so a subclass added anywhere is seen) and reports:

* **missing-arm** -- a subclass neither handled nor exempted;
* **stale-exemption** -- an exempted subclass the site now handles (the
  exemption list must shrink as coverage grows);
* **unknown-class** -- spec drift: an exemption naming a class that no
  longer exists.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.core import (
    Finding,
    SourceModule,
    Spec,
    isinstance_classes,
    tail_name,
)


@dataclass(frozen=True)
class Hierarchy:
    """A dispatchable class hierarchy, rooted at one base class."""

    name: str  #: e.g. "logical"
    module: str  #: repo-relative path of the module defining the root
    root: str  #: root class name, e.g. "LogicalOp"
    #: abstract intermediate bases that are not concrete dispatch targets
    abstract: tuple[str, ...] = ()


@dataclass(frozen=True)
class DispatchSite:
    """One isinstance ladder (or class-tuple constant) to hold complete."""

    name: str  #: display name, e.g. "unparser.unparse"
    module: str  #: repo-relative path containing the ladder
    hierarchy: str  #: Hierarchy.name this site dispatches over
    #: function qualnames ("Class.method" or "function") forming the ladder;
    #: empty means "scan the whole module"
    functions: tuple[str, ...] = ()
    #: module-level tuple/frozenset constant listing the handled classes
    constant: str = ""
    #: deliberately unhandled subclasses: ((class, justification), ...)
    exempt: tuple[tuple[str, str], ...] = ()


def collect_hierarchy(
    hierarchy: Hierarchy, modules: list[SourceModule]
) -> dict[str, int]:
    """All transitive subclasses of the root across every scanned module.

    Returns ``{class_name: lineno}``.  Matching is by simple name: base
    clauses like ``log.LogicalOp`` resolve through their attribute tail, so
    a subclass defined in another module still counts.
    """
    bases_of: dict[str, tuple[list[str], int]] = {}
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                names = [n for n in (tail_name(b) for b in node.bases) if n]
                bases_of[node.name] = (names, node.lineno)
    members: dict[str, int] = {}
    changed = True
    known = {hierarchy.root}
    while changed:
        changed = False
        for cls, (bases, lineno) in bases_of.items():
            if cls in known:
                continue
            if any(b in known for b in bases):
                known.add(cls)
                members[cls] = lineno
                changed = True
    for abstract in hierarchy.abstract:
        members.pop(abstract, None)
    return members


def _functions_in(module: SourceModule, qualnames: tuple[str, ...]) -> list[ast.AST]:
    """The AST nodes to scan: named functions, or the whole module."""
    if not qualnames:
        return [module.tree]
    wanted = set(qualnames)
    found: list[ast.AST] = []

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                if qual in wanted:
                    found.append(child)
                    wanted.discard(qual)
                walk(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                walk(child, f"{child.name}.")

    walk(module.tree, "")
    if wanted:
        found.append(ast.Module(body=[], type_ignores=[]))  # sentinel: missing fn
        found[-1]._missing = sorted(wanted)  # type: ignore[attr-defined]
    return found


def _handled_in_functions(
    module: SourceModule, qualnames: tuple[str, ...], universe: set[str]
) -> tuple[set[str], list[str], int]:
    """Classes from ``universe`` named in isinstance ladders (or raised as
    handled) inside the given functions.  Returns (handled, missing_fns,
    first_lineno)."""
    handled: set[str] = set()
    missing_fns: list[str] = []
    first_line = 1
    for node in _functions_in(module, qualnames):
        if hasattr(node, "_missing"):
            missing_fns.extend(node._missing)  # type: ignore[attr-defined]
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and first_line == 1:
            first_line = node.lineno
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "isinstance"
            ):
                handled.update(c for c in isinstance_classes(sub) if c in universe)
            elif isinstance(sub, ast.Call):
                # constructor mentions count too: a ladder arm that builds
                # `Project(...)` clearly knows about Project
                name = tail_name(sub.func)
                if name in universe:
                    handled.add(name)
    return handled, missing_fns, first_line


def _handled_in_constant(
    module: SourceModule, constant: str, universe: set[str]
) -> tuple[set[str], int] | None:
    for node in module.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(isinstance(t, ast.Name) and t.id == constant for t in targets):
            continue
        handled: set[str] = set()
        if value is not None:
            for sub in ast.walk(value):
                name = tail_name(sub) if isinstance(sub, (ast.Name, ast.Attribute)) else None
                if name in universe:
                    handled.add(name)
        return handled, node.lineno
    return None


def check_dispatch(spec: Spec, modules: list[SourceModule]) -> list[Finding]:
    findings: list[Finding] = []
    by_path = {m.path: m for m in modules}
    hierarchies = {h.name: h for h in spec.hierarchies}
    members_cache: dict[str, dict[str, int]] = {
        name: collect_hierarchy(h, modules) for name, h in hierarchies.items()
    }

    for site in spec.dispatch_sites:
        module = by_path.get(site.module)
        hierarchy = hierarchies.get(site.hierarchy)
        if module is None or hierarchy is None:
            findings.append(
                Finding(
                    checker="dispatch",
                    rule="spec-error",
                    path=site.module,
                    line=1,
                    scope=site.name,
                    message="dispatch spec names a module or hierarchy that does not exist",
                    detail=f"bad-site@{site.name}",
                )
            )
            continue
        members = members_cache[site.hierarchy]
        universe = set(members)
        if site.constant:
            found = _handled_in_constant(module, site.constant, universe)
            if found is None:
                findings.append(
                    Finding(
                        checker="dispatch",
                        rule="spec-error",
                        path=site.module,
                        line=1,
                        scope=site.name,
                        message=f"constant `{site.constant}` not found at module level",
                        detail=f"missing-constant@{site.name}",
                    )
                )
                continue
            handled, line = found
        else:
            handled, missing_fns, line = _handled_in_functions(
                module, site.functions, universe
            )
            for fn in missing_fns:
                findings.append(
                    Finding(
                        checker="dispatch",
                        rule="spec-error",
                        path=site.module,
                        line=1,
                        scope=site.name,
                        message=f"dispatch spec names function `{fn}` not found in module",
                        detail=f"missing-function@{site.name}:{fn}",
                    )
                )
        exempt = {cls for cls, _ in site.exempt}
        for cls in sorted(exempt - universe):
            findings.append(
                Finding(
                    checker="dispatch",
                    rule="unknown-class",
                    path=site.module,
                    line=line,
                    scope=site.name,
                    message=f"exemption names `{cls}`, which is not a member of "
                    f"the `{site.hierarchy}` hierarchy",
                    detail=f"{cls}@{site.name}",
                )
            )
        for cls in sorted(exempt & handled):
            findings.append(
                Finding(
                    checker="dispatch",
                    rule="stale-exemption",
                    path=site.module,
                    line=line,
                    scope=site.name,
                    message=f"`{cls}` is exempted but the site handles it; drop "
                    "the exemption",
                    detail=f"{cls}@{site.name}",
                )
            )
        for cls in sorted(universe - handled - exempt):
            findings.append(
                Finding(
                    checker="dispatch",
                    rule="missing-arm",
                    path=site.module,
                    line=line,
                    scope=site.name,
                    message=f"`{cls}` ({site.hierarchy} hierarchy, defined at "
                    f"line {members[cls]}) has no arm at this dispatch site and "
                    "no exemption",
                    detail=f"{cls}@{site.name}",
                )
            )
    return findings

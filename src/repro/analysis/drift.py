"""Knob/report/doc drift checker.

The README documents the executor's knob surface and report fields; the
architecture doc embeds the lock-discipline table.  This checker keeps the
docs honest against the code (and the lock spec):

* **knob-undocumented / knob-unknown** -- `ExecutorConfig` dataclass fields
  vs the README knob table, both directions;
* **report-undocumented** -- every `ExecReport` field is mentioned in the
  README (backticked or as ``field=``);
* **ctor-undocumented** -- every `Mediator.__init__` keyword is mentioned
  in the README;
* **config-undocumented** -- every `ServerConfig` field is named in its own
  class docstring;
* **lockmap-drift** -- the generated lock table (from the machine-readable
  spec) differs from the marker-delimited block in docs/ARCHITECTURE.md;
  regenerate with ``python -m repro.analysis --write-docs``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.core import (
    Finding,
    SourceModule,
    Spec,
    class_fields,
    find_class,
    function_params,
)
from repro.analysis.lockspec import (
    LOCK_TABLE_BEGIN,
    LOCK_TABLE_END,
    render_lock_table,
)


@dataclass(frozen=True)
class DriftSpec:
    """Where the documented surfaces live."""

    readme: str = "README.md"
    architecture: str = "docs/ARCHITECTURE.md"
    executor_config: tuple[str, str] = ("src/repro/runtime/executor.py", "ExecutorConfig")
    exec_report: tuple[str, str] = ("src/repro/runtime/executor.py", "ExecReport")
    mediator: tuple[str, str] = ("src/repro/core/mediator.py", "Mediator")
    server_config: tuple[str, str] = ("src/repro/serving/server.py", "ServerConfig")


_KNOB_ROW = re.compile(r"^\|\s*`([A-Za-z_][A-Za-z0-9_]*)`\s*\|")


def _knob_table_rows(readme: str) -> dict[str, int]:
    """``{knob: lineno}`` for the rows of the "`ExecutorConfig` knobs" table."""
    rows: dict[str, int] = {}
    in_section = False
    for lineno, line in enumerate(readme.splitlines(), start=1):
        if line.startswith("#") and "ExecutorConfig" in line:
            in_section = True
            continue
        if in_section and line.startswith("#"):
            break
        if in_section:
            match = _KNOB_ROW.match(line)
            if match:
                rows[match.group(1)] = lineno
    return rows


def _mentioned(doc: str, name: str) -> bool:
    return f"`{name}`" in doc or f"{name}=" in doc or f".{name}" in doc


def _fields_of(
    modules_by_path: dict[str, SourceModule], where: tuple[str, str]
) -> tuple[list[str], int] | None:
    module = modules_by_path.get(where[0])
    if module is None:
        return None
    cls = find_class(module.tree, where[1])
    if cls is None:
        return None
    return class_fields(cls), cls.lineno


def check_drift(spec: Spec, modules: list[SourceModule], root: Path) -> list[Finding]:
    drift = spec.drift
    if drift is None:
        return []
    findings: list[Finding] = []
    by_path = {m.path: m for m in modules}

    def spec_error(path: str, message: str, detail: str) -> None:
        findings.append(
            Finding("drift", "spec-error", path, 1, "<module>", message, detail)
        )

    readme_path = root / drift.readme
    readme = readme_path.read_text(encoding="utf-8") if readme_path.is_file() else ""
    if not readme:
        spec_error(drift.readme, "README named by the drift spec is missing", "no-readme")
        return findings

    # -- ExecutorConfig <-> README knob table (both directions) ------------------------
    config = _fields_of(by_path, drift.executor_config)
    if config is None:
        spec_error(drift.executor_config[0], "ExecutorConfig class not found", "no-config")
    else:
        fields, line = config
        rows = _knob_table_rows(readme)
        for name in fields:
            if name not in rows:
                findings.append(
                    Finding(
                        "drift",
                        "knob-undocumented",
                        drift.executor_config[0],
                        line,
                        drift.executor_config[1],
                        f"knob `{name}` has no row in the README knob table",
                        name,
                    )
                )
        for name, row_line in sorted(rows.items()):
            if name not in fields:
                findings.append(
                    Finding(
                        "drift",
                        "knob-unknown",
                        drift.readme,
                        row_line,
                        "knob-table",
                        f"README documents knob `{name}`, which is not an "
                        "ExecutorConfig field",
                        name,
                    )
                )

    # -- ExecReport fields mentioned in the README ------------------------------------
    report = _fields_of(by_path, drift.exec_report)
    if report is None:
        spec_error(drift.exec_report[0], "ExecReport class not found", "no-report")
    else:
        fields, line = report
        for name in fields:
            if not _mentioned(readme, name):
                findings.append(
                    Finding(
                        "drift",
                        "report-undocumented",
                        drift.exec_report[0],
                        line,
                        drift.exec_report[1],
                        f"ExecReport field `{name}` is never mentioned in the README",
                        name,
                    )
                )

    # -- Mediator constructor keywords mentioned in the README -------------------------
    module = by_path.get(drift.mediator[0])
    cls = find_class(module.tree, drift.mediator[1]) if module else None
    init = None
    if cls is not None:
        for stmt in cls.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
                init = stmt
                break
    if init is None:
        spec_error(drift.mediator[0], "Mediator.__init__ not found", "no-mediator")
    else:
        for name in function_params(init):
            if not _mentioned(readme, name):
                findings.append(
                    Finding(
                        "drift",
                        "ctor-undocumented",
                        drift.mediator[0],
                        init.lineno,
                        "Mediator.__init__",
                        f"constructor keyword `{name}` is never mentioned in the README",
                        name,
                    )
                )

    # -- ServerConfig fields named in its own docstring --------------------------------
    module = by_path.get(drift.server_config[0])
    cls = find_class(module.tree, drift.server_config[1]) if module else None
    if cls is None:
        spec_error(drift.server_config[0], "ServerConfig class not found", "no-serverconfig")
    else:
        doc = ast.get_docstring(cls) or ""
        for name in class_fields(cls):
            if not _mentioned(doc, name) and name not in doc:
                findings.append(
                    Finding(
                        "drift",
                        "config-undocumented",
                        drift.server_config[0],
                        cls.lineno,
                        drift.server_config[1],
                        f"ServerConfig field `{name}` is not described in the "
                        "class docstring",
                        name,
                    )
                )

    # -- lock-discipline table in docs/ARCHITECTURE.md ---------------------------------
    findings.extend(check_lock_table(spec, root, drift.architecture))
    return findings


def extract_lock_block(doc: str) -> tuple[str, int] | None:
    """The current generated block (between markers) and its start line."""
    try:
        begin = doc.index(LOCK_TABLE_BEGIN)
        end = doc.index(LOCK_TABLE_END)
    except ValueError:
        return None
    start_line = doc[:begin].count("\n") + 1
    inner = doc[begin + len(LOCK_TABLE_BEGIN) : end].strip("\n")
    return inner, start_line


def check_lock_table(spec: Spec, root: Path, architecture: str) -> list[Finding]:
    if not spec.lock_components:
        return []
    path = root / architecture
    doc = path.read_text(encoding="utf-8") if path.is_file() else ""
    block = extract_lock_block(doc) if doc else None
    if block is None:
        return [
            Finding(
                "drift",
                "lockmap-drift",
                architecture,
                1,
                "lock-discipline-map",
                "no generated lock-discipline table found (markers missing); "
                "run `python -m repro.analysis --write-docs`",
                "missing-markers",
            )
        ]
    current, line = block
    expected = render_lock_table(spec.lock_components)
    if current != expected:
        return [
            Finding(
                "drift",
                "lockmap-drift",
                architecture,
                line,
                "lock-discipline-map",
                "lock-discipline table is out of date with the machine-readable "
                "lock spec; run `python -m repro.analysis --write-docs`",
                "stale-table",
            )
        ]
    return []


def write_lock_table(spec: Spec, root: Path, architecture: str) -> bool:
    """Regenerate the marker-delimited table in place.  True if changed."""
    path = root / architecture
    doc = path.read_text(encoding="utf-8")
    begin = doc.index(LOCK_TABLE_BEGIN)
    end = doc.index(LOCK_TABLE_END) + len(LOCK_TABLE_END)
    new_block = "\n".join(
        [LOCK_TABLE_BEGIN, render_lock_table(spec.lock_components), LOCK_TABLE_END]
    )
    updated = doc[:begin] + new_block + doc[end:]
    if updated != doc:
        path.write_text(updated, encoding="utf-8")
        return True
    return False

"""Suite driver shared by the CLI and the tests."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.core import Finding, Spec, load_modules, load_spec_file
from repro.analysis.dispatch import check_dispatch
from repro.analysis.drift import check_drift
from repro.analysis.hygiene import check_hygiene
from repro.analysis.locks import check_locks


@dataclass
class SuiteResult:
    findings: list[Finding]  #: every finding, baselined or not
    new: list[Finding]  #: findings not covered by the baseline
    baselined: list[Finding]
    stale: list[BaselineEntry]  #: baseline entries matching nothing
    baseline_errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.new and not self.stale and not self.baseline_errors


def resolve_spec(root: Path) -> Spec:
    """A directory's own ``analysis_spec.py``, or the built-in repo spec."""
    spec_file = root / "analysis_spec.py"
    if spec_file.is_file():
        return load_spec_file(spec_file)
    from repro.analysis.spec import repo_spec

    return repo_spec()


def run_checkers(spec: Spec, root: Path) -> list[Finding]:
    modules = load_modules(root, spec.scan)
    findings: list[Finding] = []
    findings.extend(check_locks(spec, modules))
    findings.extend(check_dispatch(spec, modules))
    findings.extend(check_hygiene(spec, modules))
    findings.extend(check_drift(spec, modules, root))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.detail))
    return findings


def run_suite(
    root: Path,
    spec: Spec | None = None,
    baseline_path: Path | None = None,
) -> SuiteResult:
    """Run every checker and apply the baseline.

    ``baseline_path=None`` uses ``spec.baseline`` (relative to root) when
    set; pass an explicit path to override.
    """
    spec = spec or resolve_spec(root)
    findings = run_checkers(spec, root)
    if baseline_path is None and spec.baseline:
        baseline_path = root / spec.baseline
    if baseline_path is None:
        return SuiteResult(findings=findings, new=findings, baselined=[], stale=[])
    baseline = Baseline.load(baseline_path)
    new, baselined, stale = baseline.split(findings)
    return SuiteResult(
        findings=findings,
        new=new,
        baselined=baselined,
        stale=stale,
        baseline_errors=baseline.errors,
    )

"""``python -m repro.analysis`` -- run the static-analysis suite.

Exit status 0 when every finding is fixed or baselined (with justification)
and no baseline entry is stale; 1 otherwise.  See the README's "Static
analysis" section.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import write_baseline
from repro.analysis.drift import write_lock_table
from repro.analysis.runner import resolve_spec, run_suite


def _default_root() -> Path:
    """The repo root: cwd when it holds ``src/repro``, else relative to us."""
    cwd = Path.cwd()
    if (cwd / "src" / "repro").is_dir():
        return cwd
    return Path(__file__).resolve().parents[3]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static-analysis suite: lock discipline, dispatch "
        "completeness, cancellation hygiene, knob/doc drift.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="codebase root to analyse (default: the repo; a root with its "
        "own analysis_spec.py uses that spec)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file (default: the spec's, analysis-baseline.txt for "
        "the repo)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to cover all current findings (edit the "
        "placeholder justifications before committing)",
    )
    parser.add_argument(
        "--write-docs",
        action="store_true",
        help="regenerate the lock-discipline table in docs/ARCHITECTURE.md "
        "from the lock spec",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="also list baselined findings, with their justifications",
    )
    args = parser.parse_args(argv)

    root = (args.root or _default_root()).resolve()
    spec = resolve_spec(root)

    if args.write_docs:
        if spec.drift is None:
            print("spec has no drift section; nothing to write", file=sys.stderr)
            return 2
        changed = write_lock_table(spec, root, spec.drift.architecture)
        print(
            f"{spec.drift.architecture}: "
            + ("lock-discipline table regenerated" if changed else "already up to date")
        )

    baseline_path = args.baseline
    if baseline_path is None and spec.baseline and not args.no_baseline:
        baseline_path = root / spec.baseline
    result = run_suite(root, spec=spec, baseline_path=baseline_path)

    if args.write_baseline:
        if baseline_path is None:
            print("no baseline path to write (spec has none)", file=sys.stderr)
            return 2
        write_baseline(baseline_path, result.findings, "TODO: justify this exemption")
        print(f"{baseline_path}: wrote {len(result.findings)} entries")
        return 0

    for error in result.baseline_errors:
        print(f"baseline error: {error}")
    for finding in result.new:
        print(finding.render())
    for entry in result.stale:
        print(
            f"{baseline_path}:{entry.line}: stale baseline entry (matches no "
            f"finding): {entry.key}"
        )
    if args.list:
        for finding in result.baselined:
            just = ""
            if baseline_path is not None:
                from repro.analysis.baseline import Baseline

                just = Baseline.load(baseline_path).entries[finding.key()].justification
            print(f"baselined: {finding.render()}  [{just}]")

    total = len(result.findings)
    print(
        f"repro.analysis: {total} finding(s) "
        f"({len(result.baselined)} baselined, {len(result.new)} new, "
        f"{len(result.stale)} stale baseline entr{'y' if len(result.stale) == 1 else 'ies'})"
    )
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

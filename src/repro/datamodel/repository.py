"""The ``Repository`` interface (paper Section 2.1).

A repository is "essentially the address of a database or some other type of
repository"; the paper's example is::

    r0 := Repository(host="rodin", name="db", address="123.45.6.7")

Repositories are first-class objects in the mediator data model and can carry
extra descriptive attributes (maintainer, access cost hints, ...).  In this
reproduction the repository also carries a reference to the *simulated* server
hosting the data source, which stands in for the 1995 network address.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import RepositoryError


@dataclass
class Repository:
    """Addressing information for one data-source host."""

    name: str
    host: str = "localhost"
    address: str = ""
    maintainer: str | None = None
    properties: dict[str, Any] = field(default_factory=dict)
    server: Any | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise RepositoryError("a repository needs a non-empty name")

    def describe(self) -> dict[str, Any]:
        """Return a plain dict description (used by the catalog mediator)."""
        return {
            "name": self.name,
            "host": self.host,
            "address": self.address,
            "maintainer": self.maintainer,
            **self.properties,
        }

    def is_bound(self) -> bool:
        """Return True when a concrete server object is attached."""
        return self.server is not None

    def bind(self, server: Any) -> "Repository":
        """Attach the simulated server hosting this repository's data sources."""
        self.server = server
        return self

    def __repr__(self) -> str:
        return f"Repository(name={self.name!r}, host={self.host!r}, address={self.address!r})"

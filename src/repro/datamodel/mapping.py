"""Local transformation maps (paper Section 2.2.2).

A map is "a list of strings", each string being either an equivalence between
the data-source relation name and the mediator extent name, or an equivalence
between a field of the data-source relation and a field of the mediator type::

    extent personprime0 of PersonPrime wrapper w0 repository r0
        map ((person0=personprime0), (name=n), (salary=s));

The mediator applies the map to queries *before* passing them to wrappers
(mediator name -> source name) and applies the inverse to rows coming back
from wrappers (source field -> mediator field).  Maps are flat: nested types
and value-conversion functions are future work in the paper and out of scope
here (see DESIGN.md Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.datamodel.values import Struct
from repro.errors import SchemaError


def rename_row(row: Mapping, renames: Mapping[str, str]) -> Struct:
    """Rename the fields of ``row`` according to ``renames``.

    The shared primitive behind :meth:`LocalTransformationMap.row_to_mediator`
    and the executor's multi-extent reverse mapping (a pushed-down join merges
    the rename maps of every extent it references).
    """
    return Struct({renames.get(key, key): value for key, value in dict(row).items()})


@dataclass(frozen=True)
class LocalTransformationMap:
    """Bidirectional flat renaming between a data source and a mediator type.

    ``source_name``/``extent_name`` record the relation-name equivalence;
    ``attribute_pairs`` records ``(source_field, mediator_field)`` pairs.
    """

    source_name: str | None = None
    extent_name: str | None = None
    attribute_pairs: tuple[tuple[str, str], ...] = ()

    # -- constructors -------------------------------------------------------
    @classmethod
    def identity(cls) -> "LocalTransformationMap":
        """The no-op map used when mediator and source types coincide."""
        return cls()

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[str, str]]) -> "LocalTransformationMap":
        """Build a map from ``(source_side, mediator_side)`` string pairs.

        The first pair whose *mediator side* names the extent is taken as the
        relation-name equivalence; this mirrors the paper's syntax where the
        relation pair and the attribute pairs share one list.
        """
        pairs = list(pairs)
        if not pairs:
            return cls.identity()
        source_name, extent_name = pairs[0]
        return cls(
            source_name=source_name,
            extent_name=extent_name,
            attribute_pairs=tuple(pairs[1:]),
        )

    # -- derived dictionaries -------------------------------------------------
    @property
    def mediator_to_source(self) -> dict[str, str]:
        """Attribute renaming applied to queries sent towards the source."""
        return {mediator: source for source, mediator in self.attribute_pairs}

    @property
    def source_to_mediator(self) -> dict[str, str]:
        """Attribute renaming applied to rows returned from the source."""
        return {source: mediator for source, mediator in self.attribute_pairs}

    def is_identity(self) -> bool:
        """Return True when the map performs no renaming at all."""
        return self.source_name is None and not self.attribute_pairs

    # -- application -----------------------------------------------------------
    def source_collection_name(self, extent_name: str) -> str:
        """Return the data-source relation name for ``extent_name``."""
        if self.source_name is not None and self.extent_name == extent_name:
            return self.source_name
        if self.source_name is not None and self.extent_name is None:
            return self.source_name
        return extent_name if self.source_name is None else self.source_name

    def attribute_to_source(self, mediator_attribute: str) -> str:
        """Translate a mediator attribute name into the source's name."""
        return self.mediator_to_source.get(mediator_attribute, mediator_attribute)

    def attribute_to_mediator(self, source_attribute: str) -> str:
        """Translate a source attribute name into the mediator's name."""
        return self.source_to_mediator.get(source_attribute, source_attribute)

    def row_to_mediator(self, row: Mapping) -> Struct:
        """Rename the fields of a source row into mediator vocabulary."""
        return rename_row(row, self.source_to_mediator)

    def validate(self) -> None:
        """Check the map is well formed (no duplicate or conflicting entries)."""
        seen_source: set[str] = set()
        seen_mediator: set[str] = set()
        for source, mediator in self.attribute_pairs:
            if source in seen_source:
                raise SchemaError(f"map renames source attribute {source!r} twice")
            if mediator in seen_mediator:
                raise SchemaError(f"map renames mediator attribute {mediator!r} twice")
            seen_source.add(source)
            seen_mediator.add(mediator)

    def describe(self) -> list[str]:
        """Render the map back into the paper's ``(a=b)`` string list form."""
        entries: list[str] = []
        if self.source_name is not None:
            entries.append(f"({self.source_name}={self.extent_name})")
        entries.extend(f"({source}={mediator})" for source, mediator in self.attribute_pairs)
        return entries

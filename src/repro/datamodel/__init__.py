"""ODMG-93 data model with the DISCO extensions (paper Section 2).

The package provides:

* value types -- :class:`~repro.datamodel.values.Bag`,
  :class:`~repro.datamodel.values.Struct` and helpers, matching the OQL value
  universe used in the paper's examples;
* the type system -- :class:`~repro.datamodel.types.InterfaceType` with
  attributes and ODMG subtyping;
* DISCO extensions -- multiple :class:`~repro.datamodel.extent.Extent` objects
  per interface recorded as :class:`~repro.datamodel.extent.MetaExtent`
  instances, :class:`~repro.datamodel.repository.Repository` objects,
  :class:`~repro.datamodel.mapping.LocalTransformationMap` type maps, and the
  :class:`~repro.datamodel.schema.Schema` container that a mediator's internal
  database stores.
"""

from repro.datamodel.values import Bag, Struct, make_bag, make_struct
from repro.datamodel.types import (
    AttributeSpec,
    InterfaceType,
    PrimitiveType,
    TypeSystem,
)
from repro.datamodel.repository import Repository
from repro.datamodel.mapping import LocalTransformationMap
from repro.datamodel.extent import Extent, MetaExtent
from repro.datamodel.schema import Schema, ViewDefinition

__all__ = [
    "Bag",
    "Struct",
    "make_bag",
    "make_struct",
    "AttributeSpec",
    "InterfaceType",
    "PrimitiveType",
    "TypeSystem",
    "Repository",
    "LocalTransformationMap",
    "Extent",
    "MetaExtent",
    "Schema",
    "ViewDefinition",
]

"""Extents and the ``MetaExtent`` meta-type (paper Sections 2.1-2.2).

The key DISCO idea is that *each extent represents the collection of data in
one data source*.  Declaring::

    extent person0 of Person wrapper w0 repository r0;

creates a :class:`MetaExtent` instance recording the extent name, interface,
wrapper, repository and optional local transformation map.  The implicit
extent of a type (``person``) is *defined as a query* over the MetaExtent
collection, which is what lets a new data source join a mediator type without
touching any existing query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.datamodel.mapping import LocalTransformationMap
from repro.datamodel.repository import Repository
from repro.errors import SchemaError


@dataclass
class Extent:
    """A named collection bound to one data source through a wrapper."""

    name: str
    interface_name: str
    wrapper_name: str
    repository: Repository
    map: LocalTransformationMap = field(default_factory=LocalTransformationMap.identity)
    source_collection: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("an extent needs a non-empty name")
        self.map.validate()

    def source_name(self) -> str:
        """Name of the collection inside the data source.

        Defaults to the extent name (the paper: "the extent name person0 is
        determined by the name of the data source in the repository") unless a
        map or an explicit ``source_collection`` overrides it.
        """
        if self.source_collection is not None:
            return self.source_collection
        return self.map.source_collection_name(self.name)


@dataclass
class MetaExtent:
    """One object of the paper's ``MetaExtent`` interface.

    Mirrors the ODL given in Section 2.1::

        interface MetaExtent (extent metaextent) {
            attribute String name;
            attribute Extent e;
            attribute Type interface;
            attribute Wrapper wrapper;
            attribute Repository repository;
            attribute Map map; }
    """

    name: str
    e: Extent
    interface: str
    wrapper: str
    repository: Repository
    map: LocalTransformationMap

    @classmethod
    def from_extent(cls, extent: Extent) -> "MetaExtent":
        """Build the meta-data object for ``extent``."""
        return cls(
            name=extent.name,
            e=extent,
            interface=extent.interface_name,
            wrapper=extent.wrapper_name,
            repository=extent.repository,
            map=extent.map,
        )

    def describe(self) -> dict[str, Any]:
        """Plain-dict description used by catalogs and the ``metaextent`` extent."""
        return {
            "name": self.name,
            "interface": self.interface,
            "wrapper": self.wrapper,
            "repository": self.repository.name,
            "map": self.map.describe(),
        }

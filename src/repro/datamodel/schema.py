"""The mediator's schema: types, extents, views, repositories and wrappers.

This is the data-model half of the mediator's "internal database" (paper
Section 3): everything the DBA declares through ODL ends up here.  Name
resolution for queries (implicit extents, ``type*`` expansion, views) is
implemented on top of this container by :mod:`repro.core.registry`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.datamodel.extent import Extent, MetaExtent
from repro.datamodel.mapping import LocalTransformationMap
from repro.datamodel.repository import Repository
from repro.datamodel.types import InterfaceType, TypeSystem
from repro.errors import SchemaError, ViewDefinitionError


@dataclass
class ViewDefinition:
    """A ``define <name> as <query>`` view (paper Sections 2.2.3 and 2.3).

    ``query_text`` keeps the original OQL text; ``ast`` caches the parsed
    query once the OQL parser has seen it (filled lazily by the registry so
    this module does not depend on the parser).
    """

    name: str
    query_text: str
    ast: Any | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ViewDefinitionError("a view needs a non-empty name")
        if not self.query_text or not self.query_text.strip():
            raise ViewDefinitionError(f"view {self.name!r} has an empty query body")


@dataclass
class Schema:
    """Container for every DBA-visible definition in one mediator."""

    types: TypeSystem = field(default_factory=TypeSystem)
    _extents: dict[str, MetaExtent] = field(default_factory=dict)
    _views: dict[str, ViewDefinition] = field(default_factory=dict)
    _repositories: dict[str, Repository] = field(default_factory=dict)
    _wrappers: dict[str, Any] = field(default_factory=dict)

    # -- interfaces ------------------------------------------------------------
    def define_interface(self, interface: InterfaceType) -> InterfaceType:
        """Register an interface type (delegates to the type system)."""
        return self.types.define(interface)

    def interface(self, name: str) -> InterfaceType:
        """Look up an interface by name."""
        return self.types.get(name)

    # -- repositories ------------------------------------------------------------
    def add_repository(self, repository: Repository) -> Repository:
        """Register a repository object under its name."""
        if repository.name in self._repositories:
            raise SchemaError(f"repository {repository.name!r} is already defined")
        self._repositories[repository.name] = repository
        return repository

    def repository(self, name: str) -> Repository:
        """Look up a repository by name."""
        try:
            return self._repositories[name]
        except KeyError:
            raise SchemaError(f"unknown repository {name!r}") from None

    def repositories(self) -> list[Repository]:
        """Return every registered repository."""
        return list(self._repositories.values())

    # -- wrappers ----------------------------------------------------------------
    def add_wrapper(self, name: str, wrapper: Any) -> Any:
        """Register a wrapper object under ``name``."""
        if name in self._wrappers:
            raise SchemaError(f"wrapper {name!r} is already defined")
        self._wrappers[name] = wrapper
        return wrapper

    def wrapper(self, name: str) -> Any:
        """Look up a wrapper by name."""
        try:
            return self._wrappers[name]
        except KeyError:
            raise SchemaError(f"unknown wrapper {name!r}") from None

    def wrappers(self) -> dict[str, Any]:
        """Return the wrapper registry (name -> wrapper object)."""
        return dict(self._wrappers)

    # -- extents -----------------------------------------------------------------
    def add_extent(
        self,
        name: str,
        interface_name: str,
        wrapper_name: str,
        repository_name: str,
        map: LocalTransformationMap | None = None,
        source_collection: str | None = None,
    ) -> MetaExtent:
        """Declare ``extent <name> of <interface> wrapper <w> repository <r> [map ...]``.

        Validates every referenced definition, then records a MetaExtent
        instance -- exactly the side effect the paper ascribes to the special
        extent syntax.
        """
        if name in self._extents:
            raise SchemaError(f"extent {name!r} is already defined")
        self.types.get(interface_name)
        self.wrapper(wrapper_name)
        repository = self.repository(repository_name)
        extent = Extent(
            name=name,
            interface_name=interface_name,
            wrapper_name=wrapper_name,
            repository=repository,
            map=map or LocalTransformationMap.identity(),
            source_collection=source_collection,
        )
        meta = MetaExtent.from_extent(extent)
        self._extents[name] = meta
        return meta

    def drop_extent(self, name: str) -> None:
        """Remove an extent declaration (deleting the MetaExtent object)."""
        if name not in self._extents:
            raise SchemaError(f"unknown extent {name!r}")
        del self._extents[name]

    def extent(self, name: str) -> MetaExtent:
        """Look up one extent's meta-data by extent name."""
        try:
            return self._extents[name]
        except KeyError:
            raise SchemaError(f"unknown extent {name!r}") from None

    def has_extent(self, name: str) -> bool:
        """Return True when an extent called ``name`` is declared."""
        return name in self._extents

    def extents(self) -> list[MetaExtent]:
        """Return every declared extent's meta-data (the ``metaextent`` extent)."""
        return list(self._extents.values())

    def extents_of_interface(self, interface_name: str, recursive: bool = False) -> list[MetaExtent]:
        """Return the extents bound to ``interface_name``.

        ``recursive=True`` implements the paper's ``type*`` syntax by also
        including extents of every transitive subtype.
        """
        if recursive:
            wanted = set(self.types.subtypes(interface_name))
        else:
            self.types.get(interface_name)
            wanted = {interface_name}
        return [meta for meta in self._extents.values() if meta.interface in wanted]

    # -- views -------------------------------------------------------------------
    def define_view(self, view: ViewDefinition) -> ViewDefinition:
        """Register a ``define ... as`` view."""
        if view.name in self._views:
            raise SchemaError(f"view {view.name!r} is already defined")
        if self.has_extent(view.name):
            raise SchemaError(f"view {view.name!r} collides with an extent name")
        self._views[view.name] = view
        return view

    def drop_view(self, name: str) -> None:
        """Remove a view definition."""
        if name not in self._views:
            raise SchemaError(f"unknown view {name!r}")
        del self._views[name]

    def view(self, name: str) -> ViewDefinition:
        """Look up a view by name."""
        try:
            return self._views[name]
        except KeyError:
            raise SchemaError(f"unknown view {name!r}") from None

    def has_view(self, name: str) -> bool:
        """Return True when a view called ``name`` is defined."""
        return name in self._views

    def views(self) -> list[ViewDefinition]:
        """Return every view definition."""
        return list(self._views.values())

    # -- summary -------------------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        """Return a catalog-friendly summary of the schema."""
        return {
            "interfaces": self.types.names(),
            "extents": [meta.describe() for meta in self._extents.values()],
            "views": [view.name for view in self._views.values()],
            "repositories": [repo.describe() for repo in self._repositories.values()],
            "wrappers": list(self._wrappers),
        }

    def statement_count(self) -> int:
        """Number of DBA-level definitions currently in the schema.

        Used by the integration-effort experiment (E3) to compare how many
        definitions a DBA touches when adding a data source in DISCO versus a
        unified-schema system.
        """
        return (
            len(self.types.names())
            + len(self._extents)
            + len(self._views)
            + len(self._repositories)
            + len(self._wrappers)
        )


def interfaces_from_pairs(pairs: Iterable[tuple[str, list[tuple[str, str]]]]) -> list[InterfaceType]:
    """Convenience builder: ``[("Person", [("name", "String"), ...]), ...]`` -> interfaces."""
    from repro.datamodel.types import AttributeSpec, PrimitiveType

    result = []
    for name, attributes in pairs:
        result.append(
            InterfaceType(
                name=name,
                attributes=tuple(
                    AttributeSpec(attr_name, PrimitiveType.from_name(attr_type))
                    for attr_name, attr_type in attributes
                ),
            )
        )
    return result

"""Value universe of the DISCO OQL subset.

The paper's answers are bags (``Bag("Mary", "Sam")``) and bags of structs
(``select struct(name: ..., salary: ...) ...``).  A :class:`Bag` is an
unordered collection with duplicates; two bags are equal when every element
occurs with the same multiplicity in both.  A :class:`Struct` is an immutable
record with named fields accessible both as attributes and by subscript, which
lets runtime operators treat rows coming from data sources and structs built
by ``struct(...)`` constructors uniformly.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Mapping
from typing import Any


class Struct(Mapping):
    """Immutable named-field record (the OQL ``struct(name: v, ...)`` value).

    Fields are accessible as attributes (``s.name``), by subscript
    (``s["name"]``) and through the full :class:`Mapping` protocol so that
    generic code (projections, join key extraction) can iterate over fields.
    """

    __slots__ = ("_fields",)

    def __init__(self, fields: Mapping[str, Any] | None = None, **kwargs: Any):
        merged: dict[str, Any] = dict(fields or {})
        merged.update(kwargs)
        object.__setattr__(self, "_fields", merged)

    # -- Mapping protocol -------------------------------------------------
    def __getitem__(self, key: str) -> Any:
        return self._fields[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    # -- attribute access --------------------------------------------------
    def __getattr__(self, name: str) -> Any:
        try:
            return self._fields[name]
        except KeyError:
            raise AttributeError(f"struct has no field {name!r}") from None

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Struct is immutable")

    # -- equality / hashing --------------------------------------------------
    def _key(self) -> tuple:
        return tuple(sorted(self._fields.items(), key=lambda kv: kv[0]))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Struct):
            return self._fields == other._fields
        if isinstance(other, Mapping):
            return dict(self._fields) == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        try:
            return hash(self._key())
        except TypeError:
            # Unhashable field values: fall back to identity-free constant so
            # that equal structs still compare equal via __eq__.
            return hash(tuple(sorted(self._fields)))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}: {v!r}" for k, v in self._fields.items())
        return f"struct({inner})"

    # -- conveniences ------------------------------------------------------
    def fields(self) -> dict[str, Any]:
        """Return a plain mutable dict copy of the fields."""
        return dict(self._fields)

    def project(self, names: Iterable[str]) -> "Struct":
        """Return a new struct containing only ``names`` (missing names error)."""
        return Struct({name: self._fields[name] for name in names})

    def renamed(self, renames: Mapping[str, str]) -> "Struct":
        """Return a struct with fields renamed according to ``renames``.

        Fields not mentioned in ``renames`` keep their names.  Used by the
        local transformation map to convert data-source rows into mediator
        rows (paper Section 2.2.2).
        """
        return Struct({renames.get(k, k): v for k, v in self._fields.items()})


class Bag:
    """Unordered collection with duplicates (the ODMG/OQL ``bag``).

    Equality ignores order but respects multiplicity, matching the paper's
    statement that "the union of two bags is a bag" and the example answers
    such as ``Bag("Mary", "Sam")``.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[Any] = ()):  # noqa: D401 - simple init
        self._items: list[Any] = list(items)

    # -- collection protocol -------------------------------------------------
    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: Any) -> bool:
        return item in self._items

    def __bool__(self) -> bool:
        return bool(self._items)

    # -- equality ------------------------------------------------------------
    def _counter(self) -> Counter:
        counter: Counter = Counter()
        for item in self._items:
            try:
                counter[item] += 1
            except TypeError:
                counter[_Unhashable(item)] += 1
        return counter

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bag):
            return NotImplemented
        if len(self._items) != len(other._items):
            return False
        return self._counter() == other._counter()

    def __hash__(self) -> int:
        return hash(frozenset(self._counter().items()))

    def __repr__(self) -> str:
        inner = ", ".join(repr(item) for item in sorted(self._items, key=repr))
        return f"Bag({inner})"

    # -- bag algebra -----------------------------------------------------------
    def union(self, other: "Bag") -> "Bag":
        """Additive bag union: multiplicities add up (paper Section 1.3)."""
        return Bag(self._items + list(other))

    def add(self, item: Any) -> None:
        """Append one element (used while accumulating answers)."""
        self._items.append(item)

    def extend(self, items: Iterable[Any]) -> None:
        """Append every element of ``items``."""
        self._items.extend(items)

    def map(self, func) -> "Bag":
        """Return a new bag with ``func`` applied to every element."""
        return Bag(func(item) for item in self._items)

    def filter(self, predicate) -> "Bag":
        """Return a new bag keeping elements for which ``predicate`` is true."""
        return Bag(item for item in self._items if predicate(item))

    def flatten(self) -> "Bag":
        """Flatten one level of nesting (the OQL ``flatten`` operator)."""
        flat: list[Any] = []
        for item in self._items:
            if isinstance(item, Bag):
                flat.extend(item)
            elif isinstance(item, (list, tuple, set, frozenset)):
                flat.extend(item)
            else:
                flat.append(item)
        return Bag(flat)

    def distinct(self) -> "Bag":
        """Return a bag with duplicates removed (first occurrence kept)."""
        seen: list[Any] = []
        for item in self._items:
            if item not in seen:
                seen.append(item)
        return Bag(seen)

    def to_list(self) -> list[Any]:
        """Return the elements as a plain list (order is arbitrary but stable)."""
        return list(self._items)

    def sorted(self, key=repr) -> list[Any]:
        """Return the elements sorted by ``key`` -- handy for deterministic tests."""
        return sorted(self._items, key=key)


class _Unhashable:
    """Wrapper giving unhashable elements a value-based identity inside Counters."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Unhashable) and self.value == other.value

    def __hash__(self) -> int:
        return hash(repr(self.value))


def make_bag(*items: Any) -> Bag:
    """Build a bag from positional elements: ``make_bag("Mary", "Sam")``."""
    return Bag(items)


def make_struct(**fields: Any) -> Struct:
    """Build a struct from keyword fields: ``make_struct(name="Mary", salary=200)``."""
    return Struct(fields)

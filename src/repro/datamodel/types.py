"""ODMG interface types, attributes and subtyping (paper Section 2).

A mediator models each kind of data as an :class:`InterfaceType` -- e.g. the
paper's ``Person`` interface with ``name: String`` and ``salary: Short``.
DISCO keeps the ODMG subtyping relation (``interface Student : Person``) and
adds the ``type*`` extent syntax that recursively includes the extents of all
subtypes; the :class:`TypeSystem` therefore records the subtype graph and can
enumerate a type's transitive subtypes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable, Mapping

from repro.datamodel.values import Struct
from repro.errors import SchemaError, TypeConflictError


class PrimitiveType(str, Enum):
    """ODL primitive attribute types used by the paper's examples."""

    STRING = "String"
    SHORT = "Short"
    LONG = "Long"
    FLOAT = "Float"
    DOUBLE = "Double"
    BOOLEAN = "Boolean"
    ANY = "Any"

    @classmethod
    def from_name(cls, name: str) -> "PrimitiveType":
        """Resolve an ODL type name (case-insensitive) to a primitive type."""
        for member in cls:
            if member.value.lower() == name.lower():
                return member
        raise SchemaError(f"unknown primitive type {name!r}")

    def accepts(self, value: Any) -> bool:
        """Return True when ``value`` is a legal instance of this primitive."""
        if value is None:
            return True
        if self is PrimitiveType.ANY:
            return True
        if self is PrimitiveType.STRING:
            return isinstance(value, str)
        if self is PrimitiveType.BOOLEAN:
            return isinstance(value, bool)
        if self in (PrimitiveType.SHORT, PrimitiveType.LONG):
            return isinstance(value, int) and not isinstance(value, bool)
        if self in (PrimitiveType.FLOAT, PrimitiveType.DOUBLE):
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        return False


@dataclass(frozen=True)
class AttributeSpec:
    """One ``attribute <type> <name>`` declaration in an interface."""

    name: str
    type: PrimitiveType = PrimitiveType.ANY

    def check(self, value: Any) -> None:
        """Raise :class:`TypeConflictError` when ``value`` does not fit the type."""
        if not self.type.accepts(value):
            raise TypeConflictError(
                f"attribute {self.name!r} expects {self.type.value}, got {value!r}"
            )


@dataclass
class InterfaceType:
    """An ODMG interface: a named type signature with attributes and a supertype.

    ``extent_name`` is the *implicit* extent declared in the interface header
    (``interface Person (extent person) {...}``); the actual member extents
    that mirror data sources live in the schema's MetaExtent collection.
    """

    name: str
    attributes: tuple[AttributeSpec, ...] = ()
    supertype: str | None = None
    extent_name: str | None = None

    def attribute_names(self) -> list[str]:
        """Return attribute names in declaration order."""
        return [attr.name for attr in self.attributes]

    def attribute(self, name: str) -> AttributeSpec:
        """Return the attribute spec called ``name`` or raise :class:`SchemaError`."""
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemaError(f"interface {self.name!r} has no attribute {name!r}")

    def has_attribute(self, name: str) -> bool:
        """Return True when the interface declares an attribute called ``name``."""
        return any(attr.name == name for attr in self.attributes)

    def validate_instance(self, row: Mapping[str, Any] | Struct) -> None:
        """Type-check a data-source row against this interface.

        The paper says the wrapper checks at run time that the type of the
        objects in the data source matches the mediator type; a mismatch is a
        :class:`TypeConflictError` unless a map resolves it (Section 2.2.2).
        """
        for attr in self.attributes:
            if attr.name not in row:
                raise TypeConflictError(
                    f"object {dict(row)!r} lacks attribute {attr.name!r} "
                    f"required by interface {self.name!r}"
                )
            attr.check(row[attr.name])


@dataclass
class TypeSystem:
    """Registry of interface types with the subtype relation.

    The type system is part of the mediator's internal database.  It answers
    the two questions DISCO needs: attribute lookup during name binding, and
    the set of transitive subtypes needed to expand ``person*`` (Section 2.2.1).
    """

    _interfaces: dict[str, InterfaceType] = field(default_factory=dict)

    def define(self, interface: InterfaceType) -> InterfaceType:
        """Register ``interface``; supertype must already exist; names are unique."""
        if interface.name in self._interfaces:
            raise SchemaError(f"interface {interface.name!r} is already defined")
        if interface.supertype is not None and interface.supertype not in self._interfaces:
            raise SchemaError(
                f"interface {interface.name!r} declares unknown supertype "
                f"{interface.supertype!r}"
            )
        if interface.supertype is not None:
            # ODMG inheritance: attributes of the supertype are visible on the
            # subtype.  We materialise them so lookups need no chain walking.
            parent = self._interfaces[interface.supertype]
            inherited = [
                attr for attr in parent.attributes if not interface.has_attribute(attr.name)
            ]
            interface = InterfaceType(
                name=interface.name,
                attributes=tuple(inherited) + tuple(interface.attributes),
                supertype=interface.supertype,
                extent_name=interface.extent_name,
            )
        self._interfaces[interface.name] = interface
        return interface

    def get(self, name: str) -> InterfaceType:
        """Return the interface called ``name`` or raise :class:`SchemaError`."""
        try:
            return self._interfaces[name]
        except KeyError:
            raise SchemaError(f"unknown interface {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._interfaces

    def names(self) -> list[str]:
        """Return the names of all defined interfaces."""
        return list(self._interfaces)

    def interfaces(self) -> Iterable[InterfaceType]:
        """Iterate over every defined interface."""
        return self._interfaces.values()

    def is_subtype(self, candidate: str, ancestor: str) -> bool:
        """Return True when ``candidate`` equals or transitively extends ``ancestor``."""
        current: str | None = candidate
        while current is not None:
            if current == ancestor:
                return True
            current = self.get(current).supertype
        return False

    def subtypes(self, name: str, include_self: bool = True) -> list[str]:
        """Return ``name`` plus every transitive subtype (used for ``type*``)."""
        self.get(name)  # raise early for unknown types
        result = [
            candidate
            for candidate in self._interfaces
            if self.is_subtype(candidate, name) and (include_self or candidate != name)
        ]
        return result

    def direct_subtypes(self, name: str) -> list[str]:
        """Return interfaces whose declared supertype is exactly ``name``."""
        return [i.name for i in self._interfaces.values() if i.supertype == name]

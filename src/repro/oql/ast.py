"""Query-level AST nodes of the OQL subset.

Scalar expressions (paths, comparisons, struct constructors, aggregates, ...)
are shared with the algebra and live in :mod:`repro.algebra.expressions`; the
nodes here represent whole *collections* (or a scalar top-level expression)
and the ``define ... as`` statement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.algebra.expressions import Expr
from repro.datamodel.extent import MetaExtent


class QueryNode:
    """Base class of query-level AST nodes."""

    def to_oql(self) -> str:
        """Render back to OQL text."""
        raise NotImplementedError

    def free_variables(self) -> set[str]:
        """Query variables referenced but not bound inside this node."""
        return set()

    def __repr__(self) -> str:
        return f"{type(self).__name__}<{self.to_oql()}>"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.to_oql() == other.to_oql()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.to_oql()))


@dataclass(eq=False)
class CollectionRef(QueryNode):
    """A named collection: an extent, a view or an implicit type extent.

    ``recursive=True`` is the paper's ``person*`` syntax (extents of the type
    and of all its subtypes).
    """

    name: str
    recursive: bool = False

    def to_oql(self) -> str:
        return f"{self.name}*" if self.recursive else self.name


@dataclass(eq=False)
class BoundExtent(QueryNode):
    """A collection resolved by the binder to one concrete data-source extent."""

    meta: MetaExtent

    def to_oql(self) -> str:
        return self.meta.name


@dataclass(eq=False)
class MetaExtentCollection(QueryNode):
    """The special ``metaextent`` collection holding every MetaExtent object."""

    def to_oql(self) -> str:
        return "metaextent"


@dataclass(eq=False)
class Binding:
    """One ``<variable> in <collection>`` element of a ``from`` clause."""

    variable: str
    collection: QueryNode

    def to_oql(self) -> str:
        """Render as ``variable in collection``."""
        return f"{self.variable} in {self.collection.to_oql()}"


@dataclass(eq=False)
class SelectQuery(QueryNode):
    """``select [distinct] <item> from <bindings> [where <p>] [group by <keys>] [limit <n>]``.

    ``group_by`` is ``None`` for a plain select; a (possibly empty) tuple of
    ``(name, expression)`` grouping keys turns the block into a summarization
    query.  Aggregate calls (``count``/``sum``/``min``/``max``/``avg``) in the
    select item over the block's variable likewise make the query aggregate,
    even without a ``group by`` clause (a scalar aggregate).
    """

    item: Expr
    bindings: tuple[Binding, ...]
    where: Expr | None = None
    distinct: bool = False
    limit: int | None = None
    group_by: tuple[tuple[str, Expr], ...] | None = None

    def to_oql(self) -> str:
        parts = ["select"]
        if self.distinct:
            parts.append("distinct")
        parts.append(self.item.to_oql())
        parts.append("from " + ", ".join(binding.to_oql() for binding in self.bindings))
        if self.where is not None:
            parts.append("where " + self.where.to_oql())
        if self.group_by is not None:
            parts.append(
                "group by "
                + ", ".join(f"{name}: {expr.to_oql()}" for name, expr in self.group_by)
            )
        if self.limit is not None:
            parts.append(f"limit {self.limit}")
        return " ".join(parts)

    def bound_variables(self) -> set[str]:
        """Variables introduced by this query's ``from`` clause."""
        return {binding.variable for binding in self.bindings}

    def free_variables(self) -> set[str]:
        bound = self.bound_variables()
        used: set[str] = set()
        used |= self.item.free_variables()
        if self.where is not None:
            used |= self.where.free_variables()
        for _, expr in self.group_by or ():
            used |= expr.free_variables()
        for binding in self.bindings:
            used |= binding.collection.free_variables()
        return used - bound


@dataclass(eq=False)
class UnionQuery(QueryNode):
    """``union(q1, q2, ...)`` -- additive bag union of sub-queries."""

    parts: tuple[QueryNode, ...]

    def to_oql(self) -> str:
        return "union(" + ", ".join(part.to_oql() for part in self.parts) + ")"

    def free_variables(self) -> set[str]:
        result: set[str] = set()
        for part in self.parts:
            result |= part.free_variables()
        return result


@dataclass(eq=False)
class FlattenQuery(QueryNode):
    """``flatten(q)`` -- flatten a bag of bags one level."""

    child: QueryNode

    def to_oql(self) -> str:
        return f"flatten({self.child.to_oql()})"

    def free_variables(self) -> set[str]:
        return self.child.free_variables()


@dataclass(eq=False)
class BagLiteralQuery(QueryNode):
    """``bag(v1, v2, ...)`` / ``Bag("Mary", "Sam")`` -- a literal collection."""

    items: tuple[Expr, ...] = ()

    def to_oql(self) -> str:
        return "bag(" + ", ".join(item.to_oql() for item in self.items) + ")"

    def free_variables(self) -> set[str]:
        result: set[str] = set()
        for item in self.items:
            result |= item.free_variables()
        return result


@dataclass(eq=False)
class ExprQuery(QueryNode):
    """A top-level scalar expression (e.g. ``sum(select z.salary from ...)``)."""

    expression: Expr

    def to_oql(self) -> str:
        return self.expression.to_oql()

    def free_variables(self) -> set[str]:
        return self.expression.free_variables()


@dataclass(eq=False)
class DefineStatement(QueryNode):
    """``define <name> as <query>`` -- a view definition (paper Section 2.2.3)."""

    name: str
    query: QueryNode

    def to_oql(self) -> str:
        return f"define {self.name} as {self.query.to_oql()}"

    def free_variables(self) -> set[str]:
        return self.query.free_variables()

"""Recursive-descent parser for the DISCO OQL subset."""

from __future__ import annotations

from typing import Any

from repro.algebra.expressions import (
    Arithmetic,
    BagExpr,
    BooleanExpr,
    Comparison,
    Const,
    Expr,
    FunctionCall,
    InList,
    Path,
    StructExpr,
    Subquery,
    Var,
)
from repro.errors import ParseError
from repro.oql.ast import (
    BagLiteralQuery,
    Binding,
    CollectionRef,
    DefineStatement,
    ExprQuery,
    FlattenQuery,
    QueryNode,
    SelectQuery,
    UnionQuery,
)
from repro.oql.lexer import OqlLexer, Token

_COMPARISON_OPS = ("=", "!=", "<>", "<", "<=", ">", ">=")


class OqlParser:
    """Parse OQL text into query AST nodes."""

    def __init__(self, text: str):
        self.text = text
        self._tokens = OqlLexer(text).tokens()
        self._index = 0
        #: >0 while parsing a from-clause collection expression.  ``and x in``
        #: continues the from clause only there; at depth 0 it is an in-list
        #: membership conjunct (``where flag and y in (1, 2)``).
        self._from_depth = 0

    # -- public entry points --------------------------------------------------------
    def parse_query(self) -> QueryNode:
        """Parse a single query; trailing input (except ``;``) is an error."""
        query = self._query()
        self._match_op(";")
        token = self._peek()
        if token.kind != "EOF":
            raise ParseError(
                f"unexpected trailing input {token.text!r}", line=token.line, column=token.column
            )
        return query

    def parse_statement(self) -> QueryNode:
        """Parse either a ``define ... as ...`` statement or a query."""
        if self._peek().is_keyword("define"):
            self._advance()
            name = self._expect("IDENT").text
            self._expect_keyword("as")
            query = self._query()
            self._match_op(";")
            return DefineStatement(name=name, query=query)
        return self.parse_query()

    # -- token helpers ----------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "EOF":
            self._index += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._advance()
        if token.kind != kind or (text is not None and token.text != text):
            raise ParseError(
                f"expected {text or kind}, got {token.text!r}",
                line=token.line,
                column=token.column,
            )
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._advance()
        if not token.is_keyword(word):
            raise ParseError(
                f"expected {word!r}, got {token.text!r}", line=token.line, column=token.column
            )
        return token

    def _expect_op(self, text: str) -> Token:
        token = self._advance()
        if not token.is_op(text):
            raise ParseError(
                f"expected {text!r}, got {token.text!r}", line=token.line, column=token.column
            )
        return token

    def _match_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def _match_op(self, text: str) -> bool:
        if self._peek().is_op(text):
            self._advance()
            return True
        return False

    # -- queries ------------------------------------------------------------------------
    def _query(self) -> QueryNode:
        token = self._peek()
        if token.is_keyword("select"):
            return self._select_query()
        if token.is_keyword("union"):
            self._advance()
            self._expect_op("(")
            parts = [self._query()]
            while self._match_op(","):
                parts.append(self._query())
            self._expect_op(")")
            return UnionQuery(tuple(parts))
        if token.is_keyword("flatten"):
            self._advance()
            self._expect_op("(")
            child = self._query()
            self._expect_op(")")
            return FlattenQuery(child)
        if token.is_keyword("bag"):
            self._advance()
            self._expect_op("(")
            items: list[Expr] = []
            if not self._peek().is_op(")"):
                items.append(self._expression_or_subquery())
                while self._match_op(","):
                    items.append(self._expression_or_subquery())
            self._expect_op(")")
            return BagLiteralQuery(tuple(items))
        if token.is_op("("):
            self._advance()
            inner = self._query()
            self._expect_op(")")
            return inner
        if token.kind == "IDENT":
            # Either a bare collection reference or a scalar expression such as
            # sum(select ...); a following "(" means a function call.
            if self._peek(1).is_op("("):
                return ExprQuery(self._expression())
            if self._peek(1).is_op("."):
                return ExprQuery(self._expression())
            return self._collection_ref()
        # Anything else is a scalar expression used as a query.
        return ExprQuery(self._expression())

    def _collection_ref(self) -> CollectionRef:
        name = self._expect("IDENT").text
        recursive = False
        if self._peek().is_op("*"):
            self._advance()
            recursive = True
        return CollectionRef(name=name, recursive=recursive)

    def _select_query(self) -> SelectQuery:
        self._expect_keyword("select")
        distinct = self._match_keyword("distinct")
        item = self._expression()
        self._expect_keyword("from")
        bindings = [self._binding()]
        while True:
            # A "," or "and" continues the from clause only when a binding
            # (IDENT "in" ...) follows; otherwise it belongs to an enclosing
            # construct such as union(select ..., select ...).
            if self._peek().is_op(",") and self._looks_like_binding(1):
                self._advance()
                bindings.append(self._binding())
                continue
            # The paper also separates bindings with "and":
            #   from x in person0 and y in person1
            if self._peek().is_keyword("and") and self._looks_like_binding(1):
                self._advance()
                bindings.append(self._binding())
                continue
            break
        where = None
        if self._match_keyword("where"):
            where = self._expression()
        group_by = self._group_by_clause()
        limit = self._limit_clause()
        return SelectQuery(
            item=item,
            bindings=tuple(bindings),
            where=where,
            distinct=distinct,
            limit=limit,
            group_by=group_by,
        )

    def _group_by_clause(self) -> tuple[tuple[str, Expr], ...] | None:
        # "group" and "by" are soft keywords exactly like "limit": only the
        # two identifiers in clause position (after from/where, before limit)
        # start the clause, so attributes named "group" keep working.
        token = self._peek()
        following = self._peek(1)
        if not (
            token.kind == "IDENT"
            and token.text.lower() == "group"
            and following.kind == "IDENT"
            and following.text.lower() == "by"
        ):
            return None
        self._advance()
        self._advance()
        keys = [self._group_key(0)]
        while self._match_op(","):
            keys.append(self._group_key(len(keys)))
        return tuple(keys)

    def _group_key(self, index: int) -> tuple[str, Expr]:
        # Either ``name: expression`` or a bare expression; bare keys take
        # their output name from the path attribute (or variable name) when
        # there is one, else a positional ``key<N>``.
        token = self._peek()
        if token.kind == "IDENT" and self._peek(1).is_op(":"):
            name = self._advance().text
            self._advance()
            return name, self._expression()
        expression = self._expression()
        if isinstance(expression, Path):
            return expression.attribute, expression
        if isinstance(expression, Var):
            return expression.name, expression
        return f"key{index}", expression

    def _limit_clause(self) -> int | None:
        # "limit" is a soft keyword: only the identifier "limit" in clause
        # position (after from/where) starts the clause, so attributes and
        # collections named "limit" keep working everywhere else.
        token = self._peek()
        if not (token.kind == "IDENT" and token.text.lower() == "limit"):
            return None
        self._advance()
        token = self._expect("NUMBER")
        if "." in token.text:
            raise ParseError(
                f"limit takes a non-negative integer, got {token.text!r}",
                line=token.line,
                column=token.column,
            )
        return int(token.text)

    def _looks_like_binding(self, offset: int) -> bool:
        return self._peek(offset).kind == "IDENT" and self._peek(offset + 1).is_keyword("in")

    def _binding(self) -> Binding:
        variable = self._expect("IDENT").text
        self._expect_keyword("in")
        self._from_depth += 1
        try:
            collection = self._collection_expression()
        finally:
            self._from_depth -= 1
        return Binding(variable=variable, collection=collection)

    def _collection_expression(self) -> QueryNode:
        token = self._peek()
        if token.kind == "IDENT" and not self._peek(1).is_op("("):
            return self._collection_ref()
        if (
            token.is_keyword("select")
            or token.is_keyword("union")
            or token.is_keyword("flatten")
            or token.is_keyword("bag")
            or token.is_op("(")
        ):
            return self._query()
        return ExprQuery(self._expression())

    # -- expressions -----------------------------------------------------------------------
    def _expression_or_subquery(self) -> Expr:
        if self._peek().is_keyword("select"):
            return Subquery(self._select_query())
        return self._expression()

    def _expression(self) -> Expr:
        return self._or_expression()

    def _or_expression(self) -> Expr:
        operands = [self._and_expression()]
        while self._match_keyword("or"):
            operands.append(self._and_expression())
        if len(operands) == 1:
            return operands[0]
        return BooleanExpr("or", tuple(operands))

    def _and_expression(self) -> Expr:
        operands = [self._not_expression()]
        while self._peek().is_keyword("and") and not (
            self._from_depth > 0 and self._looks_like_binding(1)
        ):
            self._advance()
            operands.append(self._not_expression())
        if len(operands) == 1:
            return operands[0]
        return BooleanExpr("and", tuple(operands))

    def _not_expression(self) -> Expr:
        if self._match_keyword("not"):
            return BooleanExpr("not", (self._not_expression(),))
        return self._comparison()

    def _comparison(self) -> Expr:
        left = self._additive()
        token = self._peek()
        if token.kind == "OP" and token.text in _COMPARISON_OPS:
            self._advance()
            op = "!=" if token.text == "<>" else token.text
            right = self._additive()
            return Comparison(op, left, right)
        # Set-valued membership: ``expr in (item, ...)``.  Only the form with
        # a parenthesized literal list is an expression; a bare ``x in coll``
        # remains a from-clause binding.
        if token.is_keyword("in") and self._peek(1).is_op("("):
            self._advance()
            self._expect_op("(")
            items: list[Expr] = []
            if not self._peek().is_op(")"):
                items.append(self._additive())
                while self._match_op(","):
                    items.append(self._additive())
            self._expect_op(")")
            return InList(left, tuple(items))
        return left

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while self._peek().is_op("+") or self._peek().is_op("-"):
            op = self._advance().text
            right = self._multiplicative()
            left = Arithmetic(op, left, right)
        return left

    def _multiplicative(self) -> Expr:
        left = self._primary()
        while self._peek().is_op("*") or self._peek().is_op("/"):
            op = self._advance().text
            right = self._primary()
            left = Arithmetic(op, left, right)
        return left

    def _primary(self) -> Expr:
        token = self._peek()
        if token.kind == "NUMBER":
            self._advance()
            value = float(token.text) if "." in token.text else int(token.text)
            return Const(value)
        if token.kind == "STRING":
            self._advance()
            return Const(token.text)
        if token.is_keyword("true"):
            self._advance()
            return Const(True)
        if token.is_keyword("false"):
            self._advance()
            return Const(False)
        if token.is_keyword("nil"):
            self._advance()
            return Const(None)
        if token.is_keyword("struct"):
            return self._struct_expression()
        if token.is_keyword("bag"):
            self._advance()
            self._expect_op("(")
            items: list[Expr] = []
            if not self._peek().is_op(")"):
                items.append(self._expression_or_subquery())
                while self._match_op(","):
                    items.append(self._expression_or_subquery())
            self._expect_op(")")
            return BagExpr(tuple(items))
        if token.is_keyword("union") or token.is_keyword("flatten"):
            name = self._advance().text
            self._expect_op("(")
            args = [self._expression_or_subquery()]
            while self._match_op(","):
                args.append(self._expression_or_subquery())
            self._expect_op(")")
            return FunctionCall(name, tuple(args))
        if token.is_keyword("select"):
            return Subquery(self._select_query())
        if token.is_op("("):
            self._advance()
            if self._peek().is_keyword("select"):
                inner: Expr = Subquery(self._select_query())
            else:
                inner = self._expression()
            self._expect_op(")")
            return inner
        if token.kind == "IDENT":
            return self._identifier_expression()
        raise ParseError(
            f"unexpected token {token.text!r} in expression",
            line=token.line,
            column=token.column,
        )

    def _struct_expression(self) -> Expr:
        self._expect_keyword("struct")
        self._expect_op("(")
        fields: list[tuple[str, Expr]] = []
        if not self._peek().is_op(")"):
            fields.append(self._struct_field())
            while self._match_op(","):
                fields.append(self._struct_field())
        self._expect_op(")")
        return StructExpr(tuple(fields))

    def _struct_field(self) -> tuple[str, Expr]:
        name = self._expect("IDENT").text
        self._expect_op(":")
        return name, self._expression_or_subquery()

    def _identifier_expression(self) -> Expr:
        name = self._expect("IDENT").text
        if self._peek().is_op("("):
            self._advance()
            args: list[Expr] = []
            if not self._peek().is_op(")"):
                args.append(self._expression_or_subquery())
                while self._match_op(","):
                    args.append(self._expression_or_subquery())
            self._expect_op(")")
            return FunctionCall(name, tuple(args))
        expression: Expr = Var(name)
        while self._peek().is_op("."):
            self._advance()
            attribute = self._expect("IDENT").text
            expression = Path(expression, attribute)
        return expression


def parse_query(text: str) -> QueryNode:
    """Parse ``text`` as one OQL query."""
    return OqlParser(text).parse_query()


def parse_statement(text: str) -> QueryNode:
    """Parse ``text`` as one OQL statement (a query or a ``define``)."""
    return OqlParser(text).parse_statement()

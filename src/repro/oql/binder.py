"""Name resolution: turning collection names into bound data-source extents.

The binder resolves the names appearing in ``from`` clauses against the
mediator's internal database:

* an **extent name** (``person0``) resolves to that single data source;
* an **implicit type extent** (``person``) resolves to the union of every
  extent currently declared for the type -- this is the paper's query
  definition expression over ``metaextent``, evaluated here dynamically so
  that adding a new source changes no query;
* a **recursive extent** (``person*``) also includes extents of subtypes;
* a **view name** expands to the view's own (recursively bound) query, with
  cycle detection ("a view can reference other views, as long as the
  references are not cyclic");
* ``metaextent`` resolves to the special meta-data collection.

The binder works against any object implementing :class:`CollectionResolver`;
the mediator registry is the production implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.algebra.expressions import (
    Arithmetic,
    BagExpr,
    BooleanExpr,
    Comparison,
    Expr,
    FunctionCall,
    Path,
    StructExpr,
    Subquery,
)
from repro.datamodel.extent import MetaExtent
from repro.errors import NameResolutionError, ViewDefinitionError
from repro.oql.ast import (
    BagLiteralQuery,
    Binding,
    BoundExtent,
    CollectionRef,
    DefineStatement,
    ExprQuery,
    FlattenQuery,
    MetaExtentCollection,
    QueryNode,
    SelectQuery,
    UnionQuery,
)


@dataclass
class ResolvedCollection:
    """What a collection name resolves to."""

    kind: str  # "extents", "view" or "metaextent"
    extents: tuple[MetaExtent, ...] = ()
    view_query: QueryNode | None = None
    view_name: str | None = None


class CollectionResolver(Protocol):
    """The interface the binder needs from the mediator's internal database."""

    def resolve_collection(self, name: str, recursive: bool = False) -> ResolvedCollection:
        """Resolve ``name`` (with the ``*`` flag) or raise :class:`NameResolutionError`."""
        ...


class Binder:
    """Rewrites a query AST so every collection reference is bound."""

    def __init__(self, resolver: CollectionResolver):
        self.resolver = resolver

    # -- queries ------------------------------------------------------------------------
    def bind(self, query: QueryNode, _expanding: frozenset[str] = frozenset()) -> QueryNode:
        """Return a copy of ``query`` with every collection name resolved."""
        if isinstance(query, DefineStatement):
            return DefineStatement(query.name, self.bind(query.query, _expanding))
        if isinstance(query, CollectionRef):
            return self._bind_collection(query, _expanding)
        if isinstance(query, (BoundExtent, MetaExtentCollection)):
            return query
        if isinstance(query, UnionQuery):
            return UnionQuery(tuple(self.bind(part, _expanding) for part in query.parts))
        if isinstance(query, FlattenQuery):
            return FlattenQuery(self.bind(query.child, _expanding))
        if isinstance(query, BagLiteralQuery):
            return BagLiteralQuery(
                tuple(self._bind_expr(item, _expanding) for item in query.items)
            )
        if isinstance(query, ExprQuery):
            return ExprQuery(self._bind_expr(query.expression, _expanding))
        if isinstance(query, SelectQuery):
            bindings = tuple(
                Binding(binding.variable, self.bind(binding.collection, _expanding))
                for binding in query.bindings
            )
            where = (
                self._bind_expr(query.where, _expanding) if query.where is not None else None
            )
            item = self._bind_expr(query.item, _expanding)
            group_by = (
                tuple(
                    (name, self._bind_expr(expr, _expanding))
                    for name, expr in query.group_by
                )
                if query.group_by is not None
                else None
            )
            return SelectQuery(
                item=item,
                bindings=bindings,
                where=where,
                distinct=query.distinct,
                limit=query.limit,
                group_by=group_by,
            )
        raise NameResolutionError(f"cannot bind query node {query!r}")

    # -- collections ---------------------------------------------------------------------
    def _bind_collection(self, ref: CollectionRef, expanding: frozenset[str]) -> QueryNode:
        resolved = self.resolver.resolve_collection(ref.name, recursive=ref.recursive)
        if resolved.kind == "metaextent":
            return MetaExtentCollection()
        if resolved.kind == "extents":
            bound = [BoundExtent(meta) for meta in resolved.extents]
            if not bound:
                # A type with no extents yet: the implicit extent is empty.
                return BagLiteralQuery(())
            if len(bound) == 1:
                return bound[0]
            return UnionQuery(tuple(bound))
        if resolved.kind == "view":
            view_name = resolved.view_name or ref.name
            if view_name in expanding:
                raise ViewDefinitionError(
                    f"cyclic view reference involving {view_name!r}"
                )
            if resolved.view_query is None:
                raise ViewDefinitionError(f"view {view_name!r} has no parsed query")
            return self.bind(resolved.view_query, expanding | {view_name})
        raise NameResolutionError(f"unknown collection kind {resolved.kind!r}")

    # -- expressions -------------------------------------------------------------------------
    def _bind_expr(self, expression: Expr, expanding: frozenset[str]) -> Expr:
        if isinstance(expression, Subquery):
            return Subquery(self.bind(expression.query, expanding))
        if isinstance(expression, Path):
            return Path(self._bind_expr(expression.base, expanding), expression.attribute)
        if isinstance(expression, Comparison):
            return Comparison(
                expression.op,
                self._bind_expr(expression.left, expanding),
                self._bind_expr(expression.right, expanding),
            )
        if isinstance(expression, Arithmetic):
            return Arithmetic(
                expression.op,
                self._bind_expr(expression.left, expanding),
                self._bind_expr(expression.right, expanding),
            )
        if isinstance(expression, BooleanExpr):
            return BooleanExpr(
                expression.op,
                tuple(self._bind_expr(operand, expanding) for operand in expression.operands),
            )
        if isinstance(expression, StructExpr):
            return StructExpr(
                tuple(
                    (name, self._bind_expr(value, expanding))
                    for name, value in expression.fields
                )
            )
        if isinstance(expression, BagExpr):
            return BagExpr(
                tuple(self._bind_expr(item, expanding) for item in expression.items)
            )
        if isinstance(expression, FunctionCall):
            return FunctionCall(
                expression.name,
                tuple(self._bind_expr(arg, expanding) for arg in expression.args),
            )
        return expression

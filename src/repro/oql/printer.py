"""Rendering OQL ASTs back to query text.

Every AST node already knows how to print itself (``to_oql``); this module
provides the public entry point plus a small pretty-printer that lays out
``select`` blocks over several lines the way the paper formats its examples.
"""

from __future__ import annotations

from repro.oql.ast import (
    Binding,
    FlattenQuery,
    QueryNode,
    SelectQuery,
    UnionQuery,
)


def query_to_oql(query: QueryNode) -> str:
    """Render ``query`` to compact single-line OQL text."""
    return query.to_oql()


def pretty(query: QueryNode, indent: int = 0) -> str:
    """Render ``query`` over several lines (the paper's layout)."""
    pad = " " * indent
    if isinstance(query, SelectQuery):
        lines = [pad + "select " + ("distinct " if query.distinct else "") + query.item.to_oql()]
        lines.append(pad + "from " + ", ".join(_binding_text(b) for b in query.bindings))
        if query.where is not None:
            lines.append(pad + "where " + query.where.to_oql())
        if query.group_by:
            lines.append(
                pad
                + "group by "
                + ", ".join(f"{name}: {expr.to_oql()}" for name, expr in query.group_by)
            )
        if query.limit is not None:
            lines.append(pad + f"limit {query.limit}")
        return "\n".join(lines)
    if isinstance(query, UnionQuery):
        parts = [pretty(part, indent + 6) for part in query.parts]
        return pad + "union(\n" + ",\n".join(parts) + ")"
    if isinstance(query, FlattenQuery):
        return pad + "flatten(\n" + pretty(query.child, indent + 8) + ")"
    return pad + query.to_oql()


def _binding_text(binding: Binding) -> str:
    return f"{binding.variable} in {binding.collection.to_oql()}"

"""Translation of bound OQL ASTs into logical algebra (paper Section 3.2).

"When the query optimizer transforms an OQL query into a logical expression,
references to extents are transformed into the submit operator."  The
translator does exactly that: every :class:`~repro.oql.ast.BoundExtent`
becomes ``submit(<repository>, get(<extent>))``, a query over an implicit
type extent becomes a union of submits (one per data source), and the select
block's projection and predicate become ``project`` / ``select`` operators on
top -- the starting point from which the transformation rules push work
towards the wrappers.
"""

from __future__ import annotations

from typing import Callable

from typing import Mapping

from repro.algebra.expressions import (
    AGGREGATE_FUNCTIONS,
    Arithmetic,
    BagExpr,
    BooleanExpr,
    Comparison,
    Const,
    Expr,
    FunctionCall,
    InList,
    Path,
    StructExpr,
    Subquery,
    Var,
    contains_subquery,
    walk_expr,
)
from repro.algebra.logical import (
    Apply,
    BagLiteral,
    BindJoin,
    Distinct,
    Flatten,
    Get,
    GroupBy,
    Limit,
    LogicalOp,
    Project,
    Select,
    Submit,
    Union,
)
from repro.datamodel.values import Struct
from repro.errors import NameResolutionError, QueryExecutionError
from repro.oql.ast import (
    BagLiteralQuery,
    BoundExtent,
    CollectionRef,
    ExprQuery,
    FlattenQuery,
    MetaExtentCollection,
    QueryNode,
    SelectQuery,
    UnionQuery,
)

MetaExtentRowsProvider = Callable[[], list[Struct]]


class Translator:
    """Translate bound query ASTs into logical plans."""

    def __init__(self, metaextent_rows: MetaExtentRowsProvider | None = None):
        self._metaextent_rows = metaextent_rows

    # -- entry point ----------------------------------------------------------------------
    def translate(self, query: QueryNode) -> LogicalOp:
        """Translate a *bound* collection query into a logical plan.

        Scalar queries (:class:`ExprQuery`) have no collection-level plan and
        are evaluated directly by the run-time system; asking for their plan
        is an error so callers handle them explicitly.
        """
        if isinstance(query, ExprQuery):
            raise QueryExecutionError(
                "scalar expression queries are evaluated directly, not planned"
            )
        return self._collection(query)

    # -- collections ------------------------------------------------------------------------
    def _collection(self, query: QueryNode) -> LogicalOp:
        if isinstance(query, BoundExtent):
            meta = query.meta
            return Submit(meta.repository.name, Get(meta.name), extent_name=meta.name)
        if isinstance(query, CollectionRef):
            raise NameResolutionError(
                f"collection {query.name!r} was not bound before translation"
            )
        if isinstance(query, MetaExtentCollection):
            rows = self._metaextent_rows() if self._metaextent_rows is not None else []
            return BagLiteral(tuple(rows))
        if isinstance(query, UnionQuery):
            return Union(tuple(self._collection(part) for part in query.parts))
        if isinstance(query, FlattenQuery):
            return Flatten(self._collection(query.child))
        if isinstance(query, BagLiteralQuery):
            return self._bag_literal(query)
        if isinstance(query, SelectQuery):
            return self._select(query)
        raise QueryExecutionError(f"cannot translate query node {query!r}")

    def _bag_literal(self, query: BagLiteralQuery) -> LogicalOp:
        """Translate ``bag(...)`` used as a collection.

        Constant items become literal data.  Items that are themselves queries
        (the paper's ``personnew`` view builds a bag of two selects) are
        evaluated by the mediator: the whole constructor becomes a single
        apply over a dummy element, producing one bag value that combines the
        sub-results; ``flatten`` then merges them exactly as in the paper.
        """
        if any(contains_subquery(item) or item.free_variables() for item in query.items):
            from repro.algebra.expressions import BagExpr

            return Apply("_bag", BagExpr(tuple(query.items)), BagLiteral((0,)))
        return BagLiteral(tuple(item.evaluate({}) for item in query.items))

    # -- select blocks -----------------------------------------------------------------------
    def _select(self, query: SelectQuery) -> LogicalOp:
        if len(query.bindings) == 1:
            plan = self._single_binding_select(query)
        else:
            if query.group_by is not None:
                raise QueryExecutionError(
                    "group by supports a single from binding; join in a nested "
                    "select and group over its result instead"
                )
            plan = self._multi_binding_select(query)
        if query.distinct:
            plan = Distinct(plan)
        if query.limit is not None:
            # Outermost: the limit applies to the final answer; the rewrite
            # rules then push it through projections/applies/unions.
            plan = Limit(query.limit, plan)
        return plan

    def _single_binding_select(self, query: SelectQuery) -> LogicalOp:
        binding = query.bindings[0]
        variable = binding.variable
        plan = self._collection(binding.collection)
        if query.where is not None:
            plan = Select(variable, query.where, plan)
        aggregate_calls = _grouping_aggregates(query.item, variable)
        if query.group_by is not None or aggregate_calls:
            return self._grouped_select(query, variable, plan, aggregate_calls)
        return self._apply_item(plan, variable, query.item)

    def _grouped_select(
        self,
        query: SelectQuery,
        variable: str,
        plan: LogicalOp,
        aggregate_calls: list[FunctionCall],
    ) -> LogicalOp:
        """Translate a summarization block into a :class:`GroupBy` plan.

        The grouping keys and the aggregate calls move into the ``groupby``
        operator; the select item is then rewritten over the operator's
        output rows -- each key expression becomes a path to its key
        attribute and each aggregate call a path to its aggregate attribute
        -- so an item that merely lists them needs no operator at all, and
        anything else (arithmetic over aggregates, renamed fields) becomes
        the usual mediator-side apply.
        """
        keys = tuple(query.group_by or ())
        taken = {name for name, _ in keys}
        aggregates: list[tuple[str, str, Expr]] = []
        element = Var(variable)
        replacements: dict[Expr, Expr] = {}
        for call in aggregate_calls:
            name = _aggregate_name(query.item, call, taken)
            taken.add(name)
            aggregates.append((name, call.name, call.args[0]))
            replacements[call] = Path(element, name)
        for name, expr in keys:
            replacements.setdefault(expr, Path(element, name))
        grouped = GroupBy(variable, keys, tuple(aggregates), plan)
        item = _replace_expressions(query.item, replacements)
        outputs = grouped.output_attributes()
        _check_grouped_item(item, variable, set(outputs))
        canonical = StructExpr(tuple((name, Path(element, name)) for name in outputs))
        if item == canonical:
            # The item is exactly the group row: the groupby already
            # produces the answer shape.
            return grouped
        return self._apply_item(grouped, variable, item)

    def _apply_item(self, plan: LogicalOp, variable: str, item: Expr) -> LogicalOp:
        # ``select x from ...`` keeps the element unchanged.
        if isinstance(item, Var) and item.name == variable:
            return plan
        # ``select x.name from ...`` yields bare values: the column reduction
        # (project, pushable to the wrapper) is followed by a mediator-side
        # apply extracting the value out of the single-field record.
        if isinstance(item, Path) and isinstance(item.base, Var) and item.base.name == variable:
            return Apply(variable, item, Project((item.attribute,), plan))
        # ``select struct(a: x.a, b: x.b) from ...`` with matching field names
        # is a pure projection (the answer is a bag of structs).
        if isinstance(item, StructExpr) and self._is_simple_projection(item, variable):
            return Project(tuple(name for name, _ in item.fields), plan)
        # Anything else (arithmetic, renamed fields, aggregates, nested
        # subqueries) is computed by the mediator.
        return Apply(variable, item, plan)

    def _is_simple_projection(self, item: StructExpr, variable: str) -> bool:
        for name, value in item.fields:
            if not (
                isinstance(value, Path)
                and isinstance(value.base, Var)
                and value.base.name == variable
                and value.attribute == name
            ):
                return False
        return True

    def _multi_binding_select(self, query: SelectQuery) -> LogicalOp:
        # Fold the bindings left to right into a BindJoin tree whose elements
        # are variable environments; predicates and the select item are then
        # evaluated over those environments at the mediator.
        bindings = list(query.bindings)
        plan = self._collection(bindings[0].collection)
        bound_variables = [bindings[0].variable]
        for binding in bindings[1:]:
            right = self._collection(binding.collection)
            plan = BindJoin(
                plan,
                right,
                left_variable=bound_variables[-1] if len(bound_variables) == 1 else "_env",
                right_variable=binding.variable,
                condition=None,
            )
            bound_variables.append(binding.variable)
        if query.where is not None:
            plan = Select("_env", query.where, plan)
        item = query.item
        if isinstance(item, Var) and len(bound_variables) == 1:
            return plan
        return Apply("_env", item, plan)


def _grouping_aggregates(item: Expr, variable: str) -> list[FunctionCall]:
    """Aggregate calls in ``item`` that range over the select block itself.

    ``count(x)`` / ``sum(x.salary)`` summarize the block's rows and turn the
    select into an aggregate query.  ``sum(select ...)`` -- an aggregate over
    a nested subquery -- keeps its existing scalar-expression semantics and
    is *not* collected; :func:`walk_expr` does not descend into subqueries,
    so aggregates inside a nested select stay invisible here too.
    """
    calls: list[FunctionCall] = []
    for node in walk_expr(item):
        if (
            isinstance(node, FunctionCall)
            and node.name in AGGREGATE_FUNCTIONS
            and len(node.args) == 1
            and not isinstance(node.args[0], Subquery)
            and variable in node.args[0].free_variables()
            and node not in calls
        ):
            calls.append(node)
    return calls


def _aggregate_name(item: Expr, call: FunctionCall, taken: set[str]) -> str:
    """Output attribute name for one aggregate call.

    A struct field whose value is exactly the call donates its name
    (``struct(total: sum(x.sal), ...)`` -> ``total``); a bare aggregate item
    is named after its function; anything else gets a positional ``agg<N>``.
    """
    preferred: str | None = None
    if isinstance(item, StructExpr):
        for name, value in item.fields:
            if value == call:
                preferred = name
                break
    if preferred is None and item == call:
        preferred = call.name
    if preferred is not None and preferred not in taken:
        return preferred
    index = 0
    while f"agg{index}" in taken:
        index += 1
    return f"agg{index}"


def _replace_expressions(expression: Expr, replacements: Mapping[Expr, Expr]) -> Expr:
    """Structurally replace sub-expressions (checked before recursion).

    Relies on the text-based equality/hashing of :class:`Expr`, so two
    occurrences of the same aggregate call or key expression map to the same
    replacement; matched sub-trees are not descended into.
    """
    replaced = replacements.get(expression)
    if replaced is not None:
        return replaced
    if isinstance(expression, Path):
        return Path(_replace_expressions(expression.base, replacements), expression.attribute)
    if isinstance(expression, Comparison):
        return Comparison(
            expression.op,
            _replace_expressions(expression.left, replacements),
            _replace_expressions(expression.right, replacements),
        )
    if isinstance(expression, Arithmetic):
        return Arithmetic(
            expression.op,
            _replace_expressions(expression.left, replacements),
            _replace_expressions(expression.right, replacements),
        )
    if isinstance(expression, BooleanExpr):
        return BooleanExpr(
            expression.op,
            tuple(_replace_expressions(operand, replacements) for operand in expression.operands),
        )
    if isinstance(expression, InList):
        return InList(
            _replace_expressions(expression.operand, replacements),
            tuple(_replace_expressions(item, replacements) for item in expression.items),
        )
    if isinstance(expression, StructExpr):
        return StructExpr(
            tuple(
                (name, _replace_expressions(value, replacements))
                for name, value in expression.fields
            )
        )
    if isinstance(expression, BagExpr):
        return BagExpr(
            tuple(_replace_expressions(item, replacements) for item in expression.items)
        )
    if isinstance(expression, FunctionCall):
        return FunctionCall(
            expression.name,
            tuple(_replace_expressions(arg, replacements) for arg in expression.args),
        )
    return expression


def _check_grouped_item(item: Expr, variable: str, outputs: set[str]) -> None:
    """Reject grouped-item references that are not keys or aggregates.

    After rewriting, every remaining reference to the block variable must be
    a path to one of the groupby's output attributes: ``select struct(d:
    x.dept, nm: x.name) from x in ... group by d: x.dept`` has no
    well-defined value for ``x.name`` within a group.
    """
    if (
        isinstance(item, Path)
        and isinstance(item.base, Var)
        and item.base.name == variable
    ):
        if item.attribute not in outputs:
            raise QueryExecutionError(
                f"attribute {item.attribute!r} in a grouped select item is "
                "neither a grouping key nor an aggregate"
            )
        return
    if isinstance(item, Var) and item.name == variable:
        raise QueryExecutionError(
            f"the select item of a grouped query may reference {variable!r} "
            "only inside grouping keys or aggregate calls"
        )
    if isinstance(item, Path):
        _check_grouped_item(item.base, variable, outputs)
    elif isinstance(item, (Comparison, Arithmetic)):
        _check_grouped_item(item.left, variable, outputs)
        _check_grouped_item(item.right, variable, outputs)
    elif isinstance(item, BooleanExpr):
        for operand in item.operands:
            _check_grouped_item(operand, variable, outputs)
    elif isinstance(item, InList):
        _check_grouped_item(item.operand, variable, outputs)
        for element in item.items:
            _check_grouped_item(element, variable, outputs)
    elif isinstance(item, StructExpr):
        for _, value in item.fields:
            _check_grouped_item(value, variable, outputs)
    elif isinstance(item, (BagExpr, FunctionCall)):
        children = item.items if isinstance(item, BagExpr) else item.args
        for child in children:
            _check_grouped_item(child, variable, outputs)


def submit_for(meta) -> Submit:
    """Convenience used in tests: the canonical submit plan for one extent."""
    return Submit(meta.repository.name, Get(meta.name), extent_name=meta.name)

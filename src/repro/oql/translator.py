"""Translation of bound OQL ASTs into logical algebra (paper Section 3.2).

"When the query optimizer transforms an OQL query into a logical expression,
references to extents are transformed into the submit operator."  The
translator does exactly that: every :class:`~repro.oql.ast.BoundExtent`
becomes ``submit(<repository>, get(<extent>))``, a query over an implicit
type extent becomes a union of submits (one per data source), and the select
block's projection and predicate become ``project`` / ``select`` operators on
top -- the starting point from which the transformation rules push work
towards the wrappers.
"""

from __future__ import annotations

from typing import Callable

from repro.algebra.expressions import (
    Const,
    Expr,
    Path,
    StructExpr,
    Var,
    contains_subquery,
)
from repro.algebra.logical import (
    Apply,
    BagLiteral,
    BindJoin,
    Distinct,
    Flatten,
    Get,
    Limit,
    LogicalOp,
    Project,
    Select,
    Submit,
    Union,
)
from repro.datamodel.values import Struct
from repro.errors import NameResolutionError, QueryExecutionError
from repro.oql.ast import (
    BagLiteralQuery,
    BoundExtent,
    CollectionRef,
    ExprQuery,
    FlattenQuery,
    MetaExtentCollection,
    QueryNode,
    SelectQuery,
    UnionQuery,
)

MetaExtentRowsProvider = Callable[[], list[Struct]]


class Translator:
    """Translate bound query ASTs into logical plans."""

    def __init__(self, metaextent_rows: MetaExtentRowsProvider | None = None):
        self._metaextent_rows = metaextent_rows

    # -- entry point ----------------------------------------------------------------------
    def translate(self, query: QueryNode) -> LogicalOp:
        """Translate a *bound* collection query into a logical plan.

        Scalar queries (:class:`ExprQuery`) have no collection-level plan and
        are evaluated directly by the run-time system; asking for their plan
        is an error so callers handle them explicitly.
        """
        if isinstance(query, ExprQuery):
            raise QueryExecutionError(
                "scalar expression queries are evaluated directly, not planned"
            )
        return self._collection(query)

    # -- collections ------------------------------------------------------------------------
    def _collection(self, query: QueryNode) -> LogicalOp:
        if isinstance(query, BoundExtent):
            meta = query.meta
            return Submit(meta.repository.name, Get(meta.name), extent_name=meta.name)
        if isinstance(query, CollectionRef):
            raise NameResolutionError(
                f"collection {query.name!r} was not bound before translation"
            )
        if isinstance(query, MetaExtentCollection):
            rows = self._metaextent_rows() if self._metaextent_rows is not None else []
            return BagLiteral(tuple(rows))
        if isinstance(query, UnionQuery):
            return Union(tuple(self._collection(part) for part in query.parts))
        if isinstance(query, FlattenQuery):
            return Flatten(self._collection(query.child))
        if isinstance(query, BagLiteralQuery):
            return self._bag_literal(query)
        if isinstance(query, SelectQuery):
            return self._select(query)
        raise QueryExecutionError(f"cannot translate query node {query!r}")

    def _bag_literal(self, query: BagLiteralQuery) -> LogicalOp:
        """Translate ``bag(...)`` used as a collection.

        Constant items become literal data.  Items that are themselves queries
        (the paper's ``personnew`` view builds a bag of two selects) are
        evaluated by the mediator: the whole constructor becomes a single
        apply over a dummy element, producing one bag value that combines the
        sub-results; ``flatten`` then merges them exactly as in the paper.
        """
        if any(contains_subquery(item) or item.free_variables() for item in query.items):
            from repro.algebra.expressions import BagExpr

            return Apply("_bag", BagExpr(tuple(query.items)), BagLiteral((0,)))
        return BagLiteral(tuple(item.evaluate({}) for item in query.items))

    # -- select blocks -----------------------------------------------------------------------
    def _select(self, query: SelectQuery) -> LogicalOp:
        if len(query.bindings) == 1:
            plan = self._single_binding_select(query)
        else:
            plan = self._multi_binding_select(query)
        if query.distinct:
            plan = Distinct(plan)
        if query.limit is not None:
            # Outermost: the limit applies to the final answer; the rewrite
            # rules then push it through projections/applies/unions.
            plan = Limit(query.limit, plan)
        return plan

    def _single_binding_select(self, query: SelectQuery) -> LogicalOp:
        binding = query.bindings[0]
        variable = binding.variable
        plan = self._collection(binding.collection)
        if query.where is not None:
            plan = Select(variable, query.where, plan)
        return self._apply_item(plan, variable, query.item)

    def _apply_item(self, plan: LogicalOp, variable: str, item: Expr) -> LogicalOp:
        # ``select x from ...`` keeps the element unchanged.
        if isinstance(item, Var) and item.name == variable:
            return plan
        # ``select x.name from ...`` yields bare values: the column reduction
        # (project, pushable to the wrapper) is followed by a mediator-side
        # apply extracting the value out of the single-field record.
        if isinstance(item, Path) and isinstance(item.base, Var) and item.base.name == variable:
            return Apply(variable, item, Project((item.attribute,), plan))
        # ``select struct(a: x.a, b: x.b) from ...`` with matching field names
        # is a pure projection (the answer is a bag of structs).
        if isinstance(item, StructExpr) and self._is_simple_projection(item, variable):
            return Project(tuple(name for name, _ in item.fields), plan)
        # Anything else (arithmetic, renamed fields, aggregates, nested
        # subqueries) is computed by the mediator.
        return Apply(variable, item, plan)

    def _is_simple_projection(self, item: StructExpr, variable: str) -> bool:
        for name, value in item.fields:
            if not (
                isinstance(value, Path)
                and isinstance(value.base, Var)
                and value.base.name == variable
                and value.attribute == name
            ):
                return False
        return True

    def _multi_binding_select(self, query: SelectQuery) -> LogicalOp:
        # Fold the bindings left to right into a BindJoin tree whose elements
        # are variable environments; predicates and the select item are then
        # evaluated over those environments at the mediator.
        bindings = list(query.bindings)
        plan = self._collection(bindings[0].collection)
        bound_variables = [bindings[0].variable]
        for binding in bindings[1:]:
            right = self._collection(binding.collection)
            plan = BindJoin(
                plan,
                right,
                left_variable=bound_variables[-1] if len(bound_variables) == 1 else "_env",
                right_variable=binding.variable,
                condition=None,
            )
            bound_variables.append(binding.variable)
        if query.where is not None:
            plan = Select("_env", query.where, plan)
        item = query.item
        if isinstance(item, Var) and len(bound_variables) == 1:
            return plan
        return Apply("_env", item, plan)


def submit_for(meta) -> Submit:
    """Convenience used in tests: the canonical submit plan for one extent."""
    return Submit(meta.repository.name, Get(meta.name), extent_name=meta.name)

"""The DISCO OQL subset (paper Sections 1.2, 2 and 4).

The subset implements every construct the paper's examples use:

* ``select <item> from <var> in <collection> [and <var> in <collection>]*``
  ``[where <predicate>]`` with ``struct(...)`` select items;
* collections that are extents, implicit type extents, ``type*`` recursive
  extents, views, ``union(...)``, ``flatten(...)``, ``bag(...)`` /
  ``Bag(...)`` literals and nested selects;
* aggregate functions (``sum``, ``count``, ``min``, ``max``, ``avg``) over
  nested selects -- the reconciliation functions of Section 2.2.3;
* ``define <name> as <query>`` view definitions.

Modules: :mod:`lexer`, :mod:`ast` (query nodes), :mod:`parser`,
:mod:`printer` (AST -> text), :mod:`binder` (name resolution against a
mediator registry) and :mod:`translator` (AST -> logical algebra).
"""

from repro.oql.parser import OqlParser, parse_query, parse_statement
from repro.oql.printer import query_to_oql
from repro.oql.binder import Binder
from repro.oql.translator import Translator

__all__ = [
    "OqlParser",
    "parse_query",
    "parse_statement",
    "query_to_oql",
    "Binder",
    "Translator",
]

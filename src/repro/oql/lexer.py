"""Tokenizer for the DISCO OQL subset."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = {
    "select",
    "from",
    "in",
    "where",
    "and",
    "or",
    "not",
    "union",
    "flatten",
    "bag",
    "struct",
    "define",
    "as",
    "distinct",
    # NOTE: "limit" is deliberately NOT reserved -- it is a *soft* keyword
    # recognized positionally by the parser, so schemas with an attribute or
    # collection called "limit" (x.limit, rate limits, ...) stay queryable.
    "true",
    "false",
    "nil",
}

OPERATORS = (
    "<=",
    ">=",
    "!=",
    "<>",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "(",
    ")",
    ",",
    ".",
    ":",
    ";",
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its position (for error messages)."""

    kind: str  # KEYWORD, IDENT, NUMBER, STRING, OP, EOF
    text: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        """True when this token is the keyword ``word`` (case-insensitive)."""
        return self.kind == "KEYWORD" and self.text == word.lower()

    def is_op(self, text: str) -> bool:
        """True when this token is the operator ``text``."""
        return self.kind == "OP" and self.text == text


class OqlLexer:
    """Hand-written scanner producing :class:`Token` objects."""

    def __init__(self, text: str):
        self.text = text
        self.position = 0
        self.line = 1
        self.column = 1

    def tokens(self) -> list[Token]:
        """Tokenize the whole input, ending with an EOF token."""
        result: list[Token] = []
        while True:
            token = self._next_token()
            result.append(token)
            if token.kind == "EOF":
                return result

    # -- internals -------------------------------------------------------------------
    def _advance_char(self) -> str:
        char = self.text[self.position]
        self.position += 1
        if char == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return char

    def _skip_whitespace_and_comments(self) -> None:
        while self.position < len(self.text):
            char = self.text[self.position]
            if char.isspace():
                self._advance_char()
                continue
            if self.text.startswith("//", self.position):
                while self.position < len(self.text) and self.text[self.position] != "\n":
                    self._advance_char()
                continue
            return

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        if self.position >= len(self.text):
            return Token("EOF", "", self.line, self.column)
        line, column = self.line, self.column
        char = self.text[self.position]
        if char == '"':
            return self._string(line, column)
        if char.isdigit():
            return self._number(line, column)
        if char.isalpha() or char == "_":
            return self._word(line, column)
        for operator in OPERATORS:
            if self.text.startswith(operator, self.position):
                for _ in operator:
                    self._advance_char()
                return Token("OP", operator, line, column)
        raise ParseError(f"unexpected character {char!r} in OQL", line=line, column=column)

    def _string(self, line: int, column: int) -> Token:
        self._advance_char()  # opening quote
        chars: list[str] = []
        while self.position < len(self.text):
            char = self._advance_char()
            if char == "\\" and self.position < len(self.text):
                chars.append(self._advance_char())
                continue
            if char == '"':
                return Token("STRING", "".join(chars), line, column)
            chars.append(char)
        raise ParseError("unterminated string literal", line=line, column=column)

    def _number(self, line: int, column: int) -> Token:
        chars: list[str] = []
        while self.position < len(self.text) and (
            self.text[self.position].isdigit() or self.text[self.position] == "."
        ):
            chars.append(self._advance_char())
        return Token("NUMBER", "".join(chars), line, column)

    def _word(self, line: int, column: int) -> Token:
        chars: list[str] = []
        while self.position < len(self.text) and (
            self.text[self.position].isalnum() or self.text[self.position] == "_"
        ):
            chars.append(self._advance_char())
        text = "".join(chars)
        if text.lower() in KEYWORDS:
            # "Bag(...)" (capitalised, as in the paper's answers) maps to the
            # same keyword as "bag(...)".
            return Token("KEYWORD", text.lower(), line, column)
        return Token("IDENT", text, line, column)

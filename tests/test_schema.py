"""Tests for extents, MetaExtent, repositories and the schema container."""

import pytest

from repro.datamodel.extent import Extent, MetaExtent
from repro.datamodel.mapping import LocalTransformationMap
from repro.datamodel.repository import Repository
from repro.datamodel.schema import Schema, ViewDefinition, interfaces_from_pairs
from repro.datamodel.types import InterfaceType
from repro.errors import RepositoryError, SchemaError, ViewDefinitionError


class FakeWrapper:
    """A stand-in wrapper object; the schema only stores it."""


def base_schema():
    schema = Schema()
    for interface in interfaces_from_pairs(
        [("Person", [("name", "String"), ("salary", "Short")])]
    ):
        schema.define_interface(interface)
    schema.define_interface(InterfaceType(name="Student", supertype="Person"))
    schema.add_repository(Repository(name="r0", host="rodin"))
    schema.add_repository(Repository(name="r1"))
    schema.add_wrapper("w0", FakeWrapper())
    return schema


class TestRepository:
    def test_requires_a_name(self):
        with pytest.raises(RepositoryError):
            Repository(name="")

    def test_describe_includes_properties(self):
        repo = Repository(name="r0", host="rodin", properties={"cost": "low"})
        assert repo.describe()["cost"] == "low"
        assert repo.describe()["host"] == "rodin"

    def test_bind_attaches_a_server(self):
        repo = Repository(name="r0")
        assert not repo.is_bound()
        repo.bind(object())
        assert repo.is_bound()


class TestExtent:
    def test_source_name_defaults_to_extent_name(self):
        extent = Extent("person0", "Person", "w0", Repository(name="r0"))
        assert extent.source_name() == "person0"

    def test_source_name_uses_map(self):
        mapping = LocalTransformationMap.from_pairs([("person0", "personprime0")])
        extent = Extent("personprime0", "PersonPrime", "w0", Repository(name="r0"), map=mapping)
        assert extent.source_name() == "person0"

    def test_metaextent_mirrors_extent(self):
        extent = Extent("person0", "Person", "w0", Repository(name="r0"))
        meta = MetaExtent.from_extent(extent)
        assert meta.name == "person0"
        assert meta.interface == "Person"
        assert meta.wrapper == "w0"
        assert meta.describe()["repository"] == "r0"


class TestSchema:
    def test_add_extent_records_metaextent(self):
        schema = base_schema()
        meta = schema.add_extent("person0", "Person", "w0", "r0")
        assert schema.extent("person0") is meta
        assert schema.has_extent("person0")
        assert [m.name for m in schema.extents()] == ["person0"]

    def test_add_extent_unknown_interface_raises(self):
        schema = base_schema()
        with pytest.raises(SchemaError):
            schema.add_extent("x0", "Nope", "w0", "r0")

    def test_add_extent_unknown_wrapper_raises(self):
        schema = base_schema()
        with pytest.raises(SchemaError):
            schema.add_extent("x0", "Person", "nope", "r0")

    def test_add_extent_unknown_repository_raises(self):
        schema = base_schema()
        with pytest.raises(SchemaError):
            schema.add_extent("x0", "Person", "w0", "nope")

    def test_duplicate_extent_raises(self):
        schema = base_schema()
        schema.add_extent("person0", "Person", "w0", "r0")
        with pytest.raises(SchemaError):
            schema.add_extent("person0", "Person", "w0", "r1")

    def test_drop_extent(self):
        schema = base_schema()
        schema.add_extent("person0", "Person", "w0", "r0")
        schema.drop_extent("person0")
        assert not schema.has_extent("person0")
        with pytest.raises(SchemaError):
            schema.drop_extent("person0")

    def test_extents_of_interface_non_recursive(self):
        schema = base_schema()
        schema.add_extent("person0", "Person", "w0", "r0")
        schema.add_extent("student0", "Student", "w0", "r1")
        names = [m.name for m in schema.extents_of_interface("Person")]
        assert names == ["person0"]

    def test_extents_of_interface_recursive_includes_subtypes(self):
        schema = base_schema()
        schema.add_extent("person0", "Person", "w0", "r0")
        schema.add_extent("student0", "Student", "w0", "r1")
        names = {m.name for m in schema.extents_of_interface("Person", recursive=True)}
        assert names == {"person0", "student0"}

    def test_views_are_registered_and_unique(self):
        schema = base_schema()
        schema.define_view(ViewDefinition(name="rich", query_text="select x from x in person"))
        assert schema.has_view("rich")
        with pytest.raises(SchemaError):
            schema.define_view(ViewDefinition(name="rich", query_text="select 1 from x in person"))

    def test_view_name_may_not_collide_with_extent(self):
        schema = base_schema()
        schema.add_extent("person0", "Person", "w0", "r0")
        with pytest.raises(SchemaError):
            schema.define_view(ViewDefinition(name="person0", query_text="select x from x in person"))

    def test_empty_view_body_rejected(self):
        with pytest.raises(ViewDefinitionError):
            ViewDefinition(name="v", query_text="   ")

    def test_drop_view(self):
        schema = base_schema()
        schema.define_view(ViewDefinition(name="rich", query_text="select x from x in person"))
        schema.drop_view("rich")
        assert not schema.has_view("rich")

    def test_statement_count_tracks_definitions(self):
        schema = base_schema()
        before = schema.statement_count()
        schema.add_extent("person0", "Person", "w0", "r0")
        assert schema.statement_count() == before + 1

    def test_describe_summarises_everything(self):
        schema = base_schema()
        schema.add_extent("person0", "Person", "w0", "r0")
        description = schema.describe()
        assert "Person" in description["interfaces"]
        assert description["extents"][0]["name"] == "person0"
        assert "w0" in description["wrappers"]

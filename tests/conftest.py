"""Shared fixtures: the paper's running example and workload builders."""

from __future__ import annotations

import pytest

from repro import Mediator, RelationalWrapper
from repro.sources import RelationalEngine, SimulatedServer, TableSchema


def build_person_engine(index: int, rows: list[dict]) -> tuple[RelationalEngine, SimulatedServer]:
    """One relational source holding a ``person<index>`` table."""
    engine = RelationalEngine(name=f"persondb{index}")
    engine.create_table(
        f"person{index}",
        schema=TableSchema.of(("id", int), ("name", str), ("salary", int)),
        rows=rows,
    )
    server = SimulatedServer(name=f"host{index}", store=engine)
    return engine, server


def build_paper_mediator(**mediator_kwargs):
    """The running example of the paper.

    Two repositories: r0 holds Mary (salary 200), r1 holds Sam (salary 50);
    one relational wrapper per source; a Person interface with implicit extent
    ``person`` and member extents ``person0`` / ``person1``.

    Returns (mediator, servers) so tests can take sources down.
    """
    _, server0 = build_person_engine(0, [{"id": 1, "name": "Mary", "salary": 200}])
    _, server1 = build_person_engine(1, [{"id": 1, "name": "Sam", "salary": 50}])
    mediator = Mediator(name="paper", **mediator_kwargs)
    mediator.register_wrapper("w0", RelationalWrapper("w0", server0))
    mediator.register_wrapper("w1", RelationalWrapper("w1", server1))
    mediator.create_repository("r0", host="rodin", address="123.45.6.7")
    mediator.create_repository("r1", host="umiacs")
    mediator.define_interface(
        "Person",
        [("id", "Long"), ("name", "String"), ("salary", "Short")],
        extent_name="person",
    )
    mediator.add_extent("person0", "Person", "w0", "r0")
    mediator.add_extent("person1", "Person", "w1", "r1")
    return mediator, [server0, server1]


@pytest.fixture
def paper_mediator():
    """The paper's two-source Person mediator."""
    mediator, _servers = build_paper_mediator()
    return mediator


@pytest.fixture
def paper_mediator_with_servers():
    """The paper mediator plus its servers (for availability experiments)."""
    return build_paper_mediator()

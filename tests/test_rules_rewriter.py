"""Tests for the transformation rules and the rewrite engine."""

from repro.algebra.capabilities import grammar_for
from repro.algebra.expressions import Comparison, Const, Path, Subquery, Var
from repro.algebra.logical import Get, Join, Project, Select, Submit, Union
from repro.algebra.rewriter import Rewriter
from repro.algebra.rules import (
    CommuteSelectProject,
    PushJoinIntoSubmit,
    PushProjectIntoSubmit,
    PushProjectThroughUnion,
    PushSelectIntoSubmit,
    PushSelectThroughUnion,
)


def full_capabilities(submit):
    return grammar_for({"get", "project", "select", "join", "union", "flatten"})


def get_only_capabilities(submit):
    return grammar_for({"get"})


def submit0() -> Submit:
    return Submit("r0", Get("person0"), extent_name="person0")


def salary_predicate():
    return Comparison(">", Path(Var("x"), "salary"), Const(10))


class TestPushdownRules:
    def test_push_project_into_submit_when_supported(self):
        node = Project(("name",), submit0())
        results = PushProjectIntoSubmit().apply(node, full_capabilities)
        assert len(results) == 1
        assert results[0].to_text() == "submit(r0, project(name, get(person0)))"

    def test_push_project_refused_for_get_only_wrapper(self):
        node = Project(("name",), submit0())
        assert PushProjectIntoSubmit().apply(node, get_only_capabilities) == []

    def test_push_select_into_submit_when_supported(self):
        node = Select("x", salary_predicate(), submit0())
        results = PushSelectIntoSubmit().apply(node, full_capabilities)
        assert results[0].to_text() == "submit(r0, select(x: x.salary > 10, get(person0)))"

    def test_push_select_refused_when_predicate_references_other_variables(self):
        predicate = Comparison("=", Path(Var("x"), "id"), Path(Var("y"), "id"))
        node = Select("x", predicate, submit0())
        assert PushSelectIntoSubmit().apply(node, full_capabilities) == []

    def test_push_select_refused_when_predicate_contains_subquery(self):
        predicate = Comparison(">", Path(Var("x"), "salary"), Subquery(object()))
        node = Select("x", predicate, submit0())
        assert PushSelectIntoSubmit().apply(node, full_capabilities) == []

    def test_push_join_into_submit_same_source(self):
        """The paper's employee/manager example."""
        join = Join(
            Submit("r0", Get("employee0"), extent_name="employee0"),
            Submit("r0", Get("manager0"), extent_name="manager0"),
            "dept",
        )
        results = PushJoinIntoSubmit().apply(join, full_capabilities)
        assert results[0].to_text() == "submit(r0, join(get(employee0), get(manager0), dept))"

    def test_push_join_refused_across_sources(self):
        join = Join(
            Submit("r0", Get("employee0"), extent_name="employee0"),
            Submit("r1", Get("manager0"), extent_name="manager0"),
            "dept",
        )
        assert PushJoinIntoSubmit().apply(join, full_capabilities) == []

    def test_push_join_refused_without_join_capability(self):
        join = Join(
            Submit("r0", Get("employee0"), extent_name="employee0"),
            Submit("r0", Get("manager0"), extent_name="manager0"),
            "dept",
        )

        def caps(submit):
            return grammar_for({"get", "project"})

        assert PushJoinIntoSubmit().apply(join, caps) == []

    def test_push_project_and_select_through_union(self):
        union = Union((submit0(), Submit("r1", Get("person1"), extent_name="person1")))
        projected = Project(("name",), union)
        distributed = PushProjectThroughUnion().apply(projected, full_capabilities)[0]
        assert isinstance(distributed, Union)
        assert all(child.op_name == "project" for child in distributed.children())
        selected = Select("x", salary_predicate(), union)
        distributed = PushSelectThroughUnion().apply(selected, full_capabilities)[0]
        assert all(child.op_name == "select" for child in distributed.children())

    def test_commute_select_project_requires_surviving_attributes(self):
        inner = Project(("name", "salary"), Get("person0"))
        node = Select("x", salary_predicate(), inner)
        results = CommuteSelectProject().apply(node, full_capabilities)
        assert results and results[0].op_name == "project"
        narrow = Select("x", salary_predicate(), Project(("name",), Get("person0")))
        assert CommuteSelectProject().apply(narrow, full_capabilities) == []


class TestRewriter:
    def paper_query_plan(self):
        """project over select over union of two submits (the translated query)."""
        union = Union(
            (
                Submit("r0", Get("person0"), extent_name="person0"),
                Submit("r1", Get("person1"), extent_name="person1"),
            )
        )
        return Project(("name",), Select("x", salary_predicate(), union))

    def test_greedy_rewrite_reaches_full_pushdown(self):
        rewriter = Rewriter(full_capabilities)
        result = rewriter.rewrite_greedy(self.paper_query_plan())
        assert result.to_text() == (
            "union(submit(r0, project(name, select(x: x.salary > 10, get(person0)))), "
            "submit(r1, project(name, select(x: x.salary > 10, get(person1)))))"
        )

    def test_greedy_rewrite_respects_get_only_wrappers(self):
        rewriter = Rewriter(get_only_capabilities)
        result = rewriter.rewrite_greedy(self.paper_query_plan())
        # The work distributes over the union but stays at the mediator.
        assert result.to_text().count("submit(r0, get(person0))") == 1
        assert "submit(r0, project" not in result.to_text()
        assert "submit(r0, select" not in result.to_text()

    def test_mixed_capabilities_paper_example(self):
        """r0 supports {get, project, compose} while r1 supports only {get}."""

        def caps(submit):
            if submit.source == "r0":
                return grammar_for({"get", "project"})
            return grammar_for({"get"})

        plan = Union(
            (
                Project(("name",), Submit("r0", Get("person0"), extent_name="person0")),
                Project(("name",), Submit("r1", Get("person1"), extent_name="person1")),
            )
        )
        result = Rewriter(caps).rewrite_greedy(plan)
        assert result.to_text() == (
            "union(submit(r0, project(name, get(person0))), "
            "project(name, submit(r1, get(person1))))"
        )

    def test_alternatives_contains_original_and_rewrites(self):
        rewriter = Rewriter(full_capabilities)
        plan = self.paper_query_plan()
        alternatives = rewriter.alternatives(plan)
        texts = {alt.to_text() for alt in alternatives}
        assert plan.to_text() in texts
        assert len(alternatives) > 1

    def test_alternatives_is_bounded(self):
        rewriter = Rewriter(full_capabilities, max_alternatives=4)
        assert len(rewriter.alternatives(self.paper_query_plan())) <= 4

    def test_alternatives_are_unique(self):
        rewriter = Rewriter(full_capabilities)
        alternatives = rewriter.alternatives(self.paper_query_plan())
        texts = [alt.to_text() for alt in alternatives]
        assert len(texts) == len(set(texts))

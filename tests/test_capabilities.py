"""Tests for wrapper capability sets and grammars (paper Section 3.2)."""

import pytest

from repro.algebra.capabilities import CapabilityGrammar, CapabilitySet, grammar_for
from repro.algebra.expressions import Comparison, Const, Path, Var
from repro.algebra.logical import Flatten, Get, Join, Project, Select, Union


def project_of_get() -> Project:
    return Project(("name",), Get("person0"))


def select_of_get() -> Select:
    return Select("x", Comparison(">", Path(Var("x"), "salary"), Const(10)), Get("person0"))


class TestCapabilitySet:
    def test_of_rejects_unknown_operator(self):
        with pytest.raises(ValueError):
            CapabilitySet.of("teleport")

    def test_presets(self):
        assert CapabilitySet.get_only().operators == frozenset({"get"})
        assert CapabilitySet.full().supports("join")

    def test_supports(self):
        caps = CapabilitySet.of("get", "project")
        assert caps.supports("project")
        assert not caps.supports("join")


class TestGrammarConstruction:
    def test_get_is_always_included(self):
        grammar = grammar_for({"project"})
        assert grammar.supports("get")

    def test_paper_non_composing_grammar(self):
        """The paper's wrapper that understands get and project but not composition."""
        grammar = grammar_for({"get", "project"}, compose=False)
        assert grammar.accepts(Get("person0"))
        assert grammar.accepts(project_of_get())
        # project over project requires composition
        assert not grammar.accepts(Project(("name",), project_of_get()))
        # select is not supported at all
        assert not grammar.accepts(select_of_get())

    def test_paper_composing_grammar(self):
        """The paper's wrapper that understands get, project and their composition."""
        grammar = grammar_for({"get", "project"}, compose=True)
        assert grammar.accepts(project_of_get())
        assert grammar.accepts(Project(("salary",), project_of_get()))

    def test_join_grammar(self):
        grammar = grammar_for({"get", "join"})
        join = Join(Get("employee0"), Get("manager0"), "dept")
        assert grammar.accepts(join)
        assert not grammar_for({"get"}).accepts(join)

    def test_select_project_composition(self):
        grammar = grammar_for({"get", "project", "select"})
        assert grammar.accepts(Project(("name",), select_of_get()))
        assert grammar.accepts(Select("x", Comparison(">", Path(Var("x"), "salary"), Const(10)), project_of_get()))

    def test_union_and_flatten(self):
        grammar = grammar_for({"get", "union", "flatten"})
        assert grammar.accepts(Union((Get("a"), Get("b"))))
        assert grammar.accepts(Flatten(Get("a")))
        assert not grammar.accepts(Union((project_of_get(), Get("b"))))

    def test_capability_set_to_grammar_round_trip(self):
        caps = CapabilitySet.of("get", "project", "select", compose=True)
        grammar = caps.to_grammar()
        assert grammar.supported_operators() == {"get", "project", "select"}

    def test_render_produces_paper_style_productions(self):
        rendered = grammar_for({"get", "project"}, compose=False).render()
        assert "get OPEN SOURCE CLOSE" in rendered
        assert "project OPEN ATTRIBUTE COMMA SOURCE CLOSE" in rendered

    def test_render_composing_grammar_mentions_nonterminal(self):
        rendered = grammar_for({"get", "project"}, compose=True).render()
        assert "project OPEN ATTRIBUTE COMMA s CLOSE" in rendered
        assert "s :- SOURCE" in rendered

    def test_empty_grammar_rejects_everything(self):
        grammar = CapabilityGrammar(start="a", productions=())
        assert not grammar.accepts(Get("person0"))

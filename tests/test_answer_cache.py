"""The semantic answer cache: hits, subsumption, staleness, repair, safety.

Covers the cache's whole contract surface: exact hits with zero wrapper
calls, subsumption hits for every supported delta (limit / select /
project / distinct / appended conjunct), the refusal cases (aggregates,
environment items, foreign-variable and subquery predicates),
``schema_version`` invalidation (lazy and eager), LRU eviction under the
row budget, partial-answer patch-on-recovery (the DISCO twist), the
mutate-between-miss-and-patch staleness race, thread safety under a client
fleet, and the statistics counters.  The dynamic cross-check -- cache-on
answers multiset-equal to cache-off over random workloads -- lives in the
differential harness (``tests/test_engine_equivalence.py``).
"""

from __future__ import annotations

import threading

import pytest

from repro import AnswerCache, Mediator, RelationalWrapper
from repro.algebra import logical as log
from repro.algebra.expressions import Comparison, Const, FunctionCall, Path, Var
from repro.sources import RelationalEngine, SimulatedServer, TableSchema

from tests.test_engine_equivalence import build_mediator, multiset


def make_mediator(answer_cache=None, rows: int = 12):
    """One relational Person source under a cache-carrying mediator."""
    engine = RelationalEngine(name="db0")
    engine.create_table(
        "person0",
        schema=TableSchema.of(("id", int), ("name", str), ("salary", int)),
        rows=[
            {"id": i, "name": f"p{i % 5}", "salary": i % 7} for i in range(rows)
        ],
    )
    server = SimulatedServer(name="host0", store=engine)
    mediator = Mediator(name="cache-test", answer_cache=answer_cache)
    mediator.register_wrapper("w0", RelationalWrapper("w0", server))
    mediator.create_repository("r0")
    mediator.define_interface(
        "Person",
        [("id", "Long"), ("name", "String"), ("salary", "Short")],
        extent_name="person",
    )
    mediator.add_extent("person0", "Person", "w0", "r0")
    return mediator, server


# -- exact hits -----------------------------------------------------------------------
def test_exact_hit_serves_without_touching_the_source():
    mediator, server = make_mediator(answer_cache=True)
    try:
        query = "select x.name from x in person0 where x.salary > 2"
        first = mediator.query(query)
        assert not first.from_answer_cache
        calls = server.statistics.requests
        # Formatting variants share the canonical key, like the plan cache.
        second = mediator.query("select   x.name from x in person0 where x.salary > 2")
        assert second.from_answer_cache
        assert server.statistics.requests == calls  # zero wrapper calls
        assert multiset(second.rows()) == multiset(first.rows())
        stats = mediator.statistics()
        assert stats["answer_cache_hits"] == 1
        assert stats["answer_cache_misses"] == 1
    finally:
        mediator.close()


def test_query_stream_serves_exact_hits_materialized():
    mediator, server = make_mediator(answer_cache=True)
    try:
        query = "select x from x in person0"
        reference = multiset(mediator.query(query).rows())
        calls = server.statistics.requests
        streamed = mediator.query_stream(query)
        assert streamed.from_answer_cache
        assert multiset(list(streamed.iter_rows())) == reference
        assert server.statistics.requests == calls
    finally:
        mediator.close()


# -- subsumption hits ------------------------------------------------------------------
@pytest.mark.parametrize(
    "narrower",
    [
        "select x from x in person0 limit 4",
        "select x from x in person0 where x.salary > 3",
        "select x.name from x in person0",
        "select distinct x.name from x in person0",
        "select struct(n: x.name, s: x.salary) from x in person0",
    ],
)
def test_subsumption_serves_deltas_from_a_cached_broad_query(narrower):
    cached_mediator, cached_server = make_mediator(answer_cache=True)
    plain_mediator, _plain_server = make_mediator(answer_cache=None)
    try:
        cached_mediator.query("select x from x in person0")  # the superset
        calls = cached_server.statistics.requests
        served = cached_mediator.query(narrower)
        assert served.from_answer_cache
        assert cached_server.statistics.requests == calls  # replayed locally
        reference = plain_mediator.query(narrower)
        if "limit" in narrower:
            full = multiset(plain_mediator.query("select x from x in person0").rows())
            assert len(served.rows()) == len(reference.rows())
            assert not multiset(served.rows()) - full
        else:
            assert multiset(served.rows()) == multiset(reference.rows())
        assert cached_mediator.statistics()["answer_cache_subsumption_hits"] == 1
    finally:
        cached_mediator.close()
        plain_mediator.close()


def test_subsumption_serves_an_appended_conjunct_from_a_cached_selection():
    mediator, server = make_mediator(answer_cache=True)
    try:
        mediator.query("select x from x in person0 where x.salary > 2")
        calls = server.statistics.requests
        served = mediator.query(
            "select x from x in person0 where x.salary > 2 and x.id > 5"
        )
        assert served.from_answer_cache
        assert server.statistics.requests == calls
        expected = [
            row
            for row in mediator.query("select x from x in person0").rows()
            if dict(row)["salary"] > 2 and dict(row)["id"] > 5
        ]
        assert multiset(served.rows()) == multiset(expected)
    finally:
        mediator.close()


def test_a_subsumption_hit_promotes_itself_to_an_exact_entry():
    mediator, _server = make_mediator(answer_cache=True)
    try:
        mediator.query("select x from x in person0")
        mediator.query("select x from x in person0 limit 3")  # subsumption
        mediator.query("select x from x in person0 limit 3")  # now exact
        stats = mediator.statistics()
        assert stats["answer_cache_subsumption_hits"] == 1
        assert stats["answer_cache_hits"] == 1
    finally:
        mediator.close()


# -- refusals --------------------------------------------------------------------------
BASE = log.Submit("r0", log.Get("person0"), extent_name="person0")


def seeded_cache() -> AnswerCache:
    cache = AnswerCache()
    cache.store_complete(
        "select x from x in person0", BASE, 3, ({"id": 1, "salary": 2},)
    )
    return cache


def test_refuses_aggregates_as_deltas():
    cache = seeded_cache()
    grouped = log.GroupBy("x", (), (("a", "count", Var("x")),), BASE)
    assert cache.find_subsumer(grouped, 3) is None
    aggregated_item = log.Apply(
        "x", FunctionCall("count", (Path(Var("x"), "id"),)), BASE
    )
    assert cache.find_subsumer(aggregated_item, 3) is None


def test_refuses_non_subsumable_predicates_and_items():
    cache = seeded_cache()
    foreign = log.Select("x", Comparison(">", Path(Var("y"), "id"), Const(1)), BASE)
    assert cache.find_subsumer(foreign, 3) is None
    env_item = log.Apply("_env", Path(Var("x"), "name"), BASE)
    assert cache.find_subsumer(env_item, 3) is None


def test_aggregate_queries_still_get_exact_hits():
    mediator, server = make_mediator(answer_cache=True)
    try:
        query = "select sum(x.salary) from x in person0"
        first = mediator.query(query)
        calls = server.statistics.requests
        second = mediator.query(query)
        assert second.from_answer_cache
        assert server.statistics.requests == calls
        assert multiset(second.rows()) == multiset(first.rows())
    finally:
        mediator.close()


# -- invalidation ----------------------------------------------------------------------
def test_schema_version_change_invalidates_entries():
    mediator, server = make_mediator(answer_cache=True)
    try:
        query = "select x from x in person0"
        mediator.query(query)
        mediator.define_interface("Other", [("id", "Long")], extent_name="others")
        calls = server.statistics.requests
        refreshed = mediator.query(query)
        assert not refreshed.from_answer_cache
        assert server.statistics.requests > calls
        assert mediator.statistics()["answer_cache_invalidations"] >= 1
    finally:
        mediator.close()


def test_extent_reregistration_evicts_eagerly():
    mediator, _server = make_mediator(answer_cache=True)
    try:
        mediator.query("select x from x in person0")
        assert len(mediator.answer_cache) == 1
        mediator.drop_extent("person0")
        assert len(mediator.answer_cache) == 0
        assert mediator.statistics()["answer_cache_invalidations"] >= 1
    finally:
        mediator.close()


def test_lru_eviction_under_the_row_budget():
    cache = AnswerCache(max_entries=128, max_rows=30)
    mediator, _server = make_mediator(answer_cache=cache, rows=12)
    try:
        mediator.query("select x from x in person0")  # 12 rows
        mediator.query("select x.name from x in person0")  # 12 rows
        mediator.query("select x.id from x in person0")  # 12 rows -> evicts
        stats = cache.stats()
        assert stats["evictions"] >= 1
        assert stats["rows"] <= 30
        # The coldest entry went; the newest survives as an exact hit.
        served = mediator.query("select x.id from x in person0")
        assert served.from_answer_cache
    finally:
        mediator.close()


def test_oversized_answers_are_never_stored():
    cache = AnswerCache(max_rows=5)
    mediator, _server = make_mediator(answer_cache=cache, rows=12)
    try:
        mediator.query("select x from x in person0")
        assert len(cache) == 0
        assert not mediator.query("select x from x in person0").from_answer_cache
    finally:
        mediator.close()


# -- partial answers: patch-on-recovery ------------------------------------------------
def test_partial_answer_patch_recontacts_only_the_missing_extent():
    mediator, servers = build_mediator()
    mediator.answer_cache = AnswerCache()
    try:
        query = "select x.name from x in person"
        reference = multiset(mediator.query(query).rows())
        mediator.define_interface("Bump", [("id", "Long")], extent_name="bumps")
        servers[1].take_down()
        partial = mediator.query(query)
        assert partial.is_partial
        servers[1].bring_up()
        healthy_calls = servers[0].statistics.requests
        patched = mediator.query(query)
        assert patched.from_answer_cache
        assert not patched.is_partial
        assert servers[0].statistics.requests == healthy_calls  # only person1 ran
        assert multiset(patched.rows()) == reference
        assert mediator.statistics()["answer_cache_patches"] == 1
        # The repaired answer is now a complete entry: next query is a hit.
        again = mediator.query(query)
        assert again.from_answer_cache
        assert multiset(again.rows()) == reference
    finally:
        mediator.close()


def test_partial_entry_still_partial_when_the_source_stays_down():
    mediator, servers = build_mediator()
    mediator.answer_cache = AnswerCache()
    try:
        query = "select x.name from x in person"
        servers[1].take_down()
        first = mediator.query(query)
        assert first.is_partial
        second = mediator.query(query)
        assert second.is_partial
        assert set(second.unavailable_sources) == set(first.unavailable_sources)
    finally:
        mediator.close()


def test_partial_patch_is_pinned_to_the_entry_schema_version():
    """Regression: the mutate-between-miss-and-patch race.

    A cached partial answer embeds rows resolved under the schema it was
    built with.  If a DBA mutates the registry before the patch runs, the
    pin must refuse the patch (dropping the entry) and fall back to a full
    run -- never weld old embedded rows onto a new schema's answer.
    """
    mediator, servers = build_mediator()
    mediator.answer_cache = AnswerCache()
    try:
        query = "select x.name from x in person"
        reference = multiset(mediator.query(query).rows())
        mediator.define_interface("Bump0", [("id", "Long")], extent_name="b0")
        servers[1].take_down()
        partial = mediator.query(query)
        assert partial.is_partial
        # The DBA mutates between the miss and the later patch attempt.
        mediator.define_interface("Bump1", [("id", "Long")], extent_name="b1")
        servers[1].bring_up()
        healthy_calls = servers[0].statistics.requests
        repaired = mediator.query(query)
        assert not repaired.is_partial
        assert multiset(repaired.rows()) == reference
        # Refused patch means a *full* run: the healthy source was re-contacted.
        assert servers[0].statistics.requests > healthy_calls
        assert mediator.statistics()["answer_cache_patches"] == 0
        assert mediator.statistics()["answer_cache_invalidations"] >= 1
    finally:
        mediator.close()


# -- concurrency -----------------------------------------------------------------------
def test_cache_is_safe_and_transparent_under_a_client_fleet():
    mediator, _servers = build_mediator()
    mediator.answer_cache = AnswerCache()
    try:
        queries = [
            "select x.name from x in person0",
            "select x from x in person0 where x.salary > 2",
            "select distinct x.name from x in person0",
            "select x.name from x in person0 limit 4",
        ]
        references = {q: multiset(mediator.query(q).rows()) for q in queries}
        errors: list[BaseException] = []

        def client(index: int) -> None:
            try:
                for turn in range(8):
                    query = queries[(index + turn) % len(queries)]
                    result = mediator.query(query)
                    rows = multiset(result.rows())
                    if "limit" in query:
                        assert not rows - references[
                            "select x.name from x in person0"
                        ]
                    else:
                        assert rows == references[query]
            except BaseException as exc:  # surfaced to the main thread
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        stats = mediator.statistics()
        assert stats["answer_cache_hits"] + stats["answer_cache_subsumption_hits"] > 0
    finally:
        mediator.close()


def test_server_workers_share_the_mediators_cache():
    mediator, server0_and_rest = build_mediator()
    mediator.answer_cache = AnswerCache()
    try:
        query = "select x.name from x in person0"
        reference = multiset(mediator.query(query).rows())
        with mediator.serve(workers=4) as server:
            futures = [server.submit(query) for _ in range(16)]
            for future in futures:
                assert multiset(future.result(timeout=30).rows()) == reference
            stats = server.stats()
        assert stats["answer_cache"]["hits"] >= 16
    finally:
        mediator.close()


# -- statistics ------------------------------------------------------------------------
def test_statistics_expose_every_counter():
    mediator, _server = make_mediator(answer_cache=True)
    try:
        stats = mediator.statistics()
        for counter in (
            "answer_cache_entries",
            "answer_cache_rows",
            "answer_cache_hits",
            "answer_cache_subsumption_hits",
            "answer_cache_misses",
            "answer_cache_patches",
            "answer_cache_stores",
            "answer_cache_invalidations",
            "answer_cache_evictions",
        ):
            assert counter in stats
        plain = Mediator(name="no-cache")
        assert "answer_cache_hits" not in plain.statistics()
        plain.close()
    finally:
        mediator.close()

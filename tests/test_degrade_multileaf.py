"""Executable documentation of the degradation ladder's multi-leaf stop.

The ladder (``runtime/degrade.py``) strips *unary* mediator-compensable
operators off a failing pushdown, one rung per retry.  A pushdown whose top
is **multi-leaf** -- a pushed ``join`` or ``union`` -- cannot be degraded by
stripping: recovering from a source-side capability failure there means
*splitting* the one exec call into per-leaf calls plus a mediator-side
recombine.  The namespace planner's refuse-to-push split
(``Executor._split_pushdown``) is most of that machinery already, but it
only runs at *planning* time (alias collisions); a capability failure
discovered at *call* time still dead-ends (see ROADMAP "Known smaller
gaps").

The strict xfail below pins the gap: when the split lands, the first test
starts passing (and the xfail fails the build until the marker is removed),
while the second test keeps the currently-promised behaviour -- a partial
answer, never a wrong one -- from regressing in the meantime.
"""

from __future__ import annotations

import pytest

from repro import CapabilityError, Mediator, RelationalWrapper
from repro.algebra.logical import Get, Join, Submit, walk
from repro.optimizer.implementation import implement
from repro.sources import RelationalEngine, SimulatedServer, TableSchema

from tests.test_engine_equivalence import multiset


class JoinRefusingWrapper(RelationalWrapper):
    """Declares ``join`` in its grammar but rejects it at call time.

    The stale-capability shape the degradation ladder exists for: the
    declared grammar is wider than what the translator actually handles.
    """

    def submit(self, expression):
        if any(isinstance(node, Join) for node in walk(expression)):
            raise CapabilityError("join refused at call time")
        return super().submit(expression)

    def submit_stream(self, expression, resume_from=None):
        if any(isinstance(node, Join) for node in walk(expression)):
            raise CapabilityError("join refused at call time")
        return super().submit_stream(expression, resume_from=resume_from)


def build_join_refusing_mediator():
    engine = RelationalEngine(name="dbj")
    engine.create_table(
        "t_a",
        schema=TableSchema.of(("id", int), ("name", str)),
        rows=[{"id": i, "name": f"a{i}"} for i in range(6)],
    )
    engine.create_table(
        "t_b",
        schema=TableSchema.of(("id", int), ("tag", str)),
        rows=[{"id": i, "tag": f"b{i % 2}"} for i in range(4)],
    )
    server = SimulatedServer(name="hj", store=engine)
    mediator = Mediator(name="multileaf", max_retries=3)
    mediator.register_wrapper("w0", JoinRefusingWrapper("w0", server))
    mediator.create_repository("r0")
    mediator.define_interface("A", [("id", "Long"), ("name", "String")], extent_name="aa")
    mediator.define_interface("B", [("id", "Long"), ("tag", "String")], extent_name="bb")
    mediator.add_extent("t_a", "A", "w0", "r0")
    mediator.add_extent("t_b", "B", "w0", "r0")
    return mediator


PUSHED_JOIN = Submit("r0", Join(Get("t_a"), Get("t_b"), "id"), extent_name="t_a")


@pytest.mark.xfail(
    strict=True,
    reason="degradation ladder stops at multi-leaf pushdowns: a call-time "
    "capability failure on a pushed join is not yet split into per-leaf "
    "calls with a mediator-side recombine (ROADMAP known smaller gap)",
)
def test_calltime_join_refusal_splits_per_leaf_and_recombines():
    mediator = build_join_refusing_mediator()
    try:
        result = mediator.executor.execute(implement(PUSHED_JOIN))
        # The desired end state: per-leaf gets succeed, the mediator joins.
        assert not result.is_partial
        rows = result.data.to_list()
        assert len(rows) == 4  # ids 0..3 match
        assert {dict(row)["id"] for row in rows} == {0, 1, 2, 3}
    finally:
        mediator.close()


def test_calltime_join_refusal_degrades_to_a_partial_answer_today():
    """Until the split exists, the promised behaviour: partial, never wrong."""
    mediator = build_join_refusing_mediator()
    try:
        result = mediator.executor.execute(implement(PUSHED_JOIN))
        assert result.is_partial
        assert result.data.to_list() == []
        assert "t_a" in result.unavailable_sources
        # Control: the same wrapper answers single-leaf pushdowns, so the
        # failure really is the multi-leaf shape, not the source's health.
        single = mediator.executor.execute(
            implement(Submit("r0", Get("t_a"), extent_name="t_a"))
        )
        assert not single.is_partial
        assert len(single.data.to_list()) == 6
    finally:
        mediator.close()


def test_multileaf_is_minimal_for_the_ladder():
    """The static half of the pin: ``degrade_pushdown`` has no rung below a
    multi-leaf top -- matching the spec exemptions for Join/Union."""
    from repro.runtime.degrade import degrade_pushdown

    assert degrade_pushdown(Join(Get("t_a"), Get("t_b"), "id")) is None

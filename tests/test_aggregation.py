"""Aggregation & GROUP BY end to end.

Pins the tentpole behaviours: OQL ``group by`` / aggregate syntax, pushdown
of grouping into submits (visible in the submitted mini-SQL), the cost story
(only grouped rows cross the wire), mediator-side compensation when the
source lacks the ``groupby`` terminal, the two-phase combine through unions
(``avg`` decomposing into sum+count partials), NULL semantics shared between
the mediator and the mini-SQL engine, partial-answer unparsing, and the
streaming engine's suppression of aggregates over known-incomplete input.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro import Mediator, RelationalWrapper
from repro.algebra.capabilities import PUSHABLE_OPERATORS, CapabilitySet
from repro.errors import ParseError, QueryExecutionError
from repro.oql.parser import parse_query
from repro.runtime import operators as ops
from repro.sources import RelationalEngine, SimulatedServer
from repro.sources.sql.engine import SqlEngine
from repro.wrappers import SqlWrapper

PEOPLE = [
    {"id": i, "name": ["ann", "bob", "cleo"][i % 3], "salary": (i * 7) % 5}
    for i in range(20)
]

#: everything except ``groupby``: grouped queries degrade and the mediator
#: compensates by aggregating the raw rows itself.
NO_GROUPBY_CAPS = CapabilitySet.of(
    *(operator for operator in PUSHABLE_OPERATORS if operator != "groupby")
)


class RecordingSqlWrapper(SqlWrapper):
    """A SqlWrapper that remembers every statement it shipped."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.statements: list[str] = []

    def to_sql(self, expression):
        sql = super().to_sql(expression)
        self.statements.append(sql)
        return sql


def build_sql_mediator(capabilities=None, rows=PEOPLE):
    engine = SqlEngine(name="pg")
    engine.create_table("person0", rows=rows)
    server = SimulatedServer(name="pg-host", store=engine)
    wrapper = RecordingSqlWrapper("w0", server, capabilities=capabilities)
    mediator = Mediator(name="agg")
    mediator.register_wrapper("w0", wrapper)
    mediator.create_repository("r0")
    mediator.define_interface(
        "Person",
        [("id", "Long"), ("name", "String"), ("salary", "Short")],
        extent_name="person",
    )
    mediator.add_extent("person0", "Person", "w0", "r0")
    return mediator, server, wrapper


def build_union_mediator(capabilities=None):
    """Two relational Person sources behind the implicit ``person`` union."""
    mediator = Mediator(name="aggu")
    servers = []
    for index in range(2):
        engine = RelationalEngine(name=f"db{index}")
        engine.create_table(
            f"person{index}",
            rows=[
                {"id": i, "name": ["ann", "bob"][i % 2], "salary": (i + index) % 4}
                for i in range(10 + index * 3)
            ],
        )
        server = SimulatedServer(name=f"host{index}", store=engine)
        servers.append(server)
        mediator.register_wrapper(
            f"w{index}",
            RelationalWrapper(f"w{index}", server, capabilities=capabilities),
        )
        mediator.create_repository(f"r{index}")
    mediator.define_interface(
        "Person",
        [("id", "Long"), ("name", "String"), ("salary", "Short")],
        extent_name="person",
    )
    mediator.add_extent("person0", "Person", "w0", "r0")
    mediator.add_extent("person1", "Person", "w1", "r1")
    return mediator, servers


def grouped_reference(rows, key, func, arg):
    """Brute-force one-key aggregation over plain dict rows."""
    groups: dict = {}
    order = []
    for row in rows:
        k = row[key]
        if k not in groups:
            groups[k] = []
            order.append(k)
        groups[k].append(row)
    out = []
    for k in order:
        values = [r[arg] for r in groups[k] if arg and r[arg] is not None]
        if func == "count":
            value = len(groups[k]) if arg is None else len(values)
        elif func == "sum":
            value = sum(values) if values else None
        elif func == "avg":
            value = sum(values) / len(values) if values else None
        elif func == "min":
            value = min(values) if values else None
        else:
            value = max(values) if values else None
        out.append((k, value))
    return Counter(out)


def grouped_multiset(rows, key_name="s", agg_name="a"):
    return Counter((dict(row)[key_name], dict(row)[agg_name]) for row in rows)


# -- syntax ----------------------------------------------------------------------------------------
def test_group_by_round_trips_through_the_printer():
    text = (
        "select struct(s: x.salary, a: avg(x.id)) from x in person "
        "group by s: x.salary limit 3"
    )
    query = parse_query(text)
    assert query.group_by == parse_query(query.to_oql()).group_by
    assert "group by s: x.salary" in query.to_oql()
    assert query.to_oql().index("group by") < query.to_oql().index("limit")


def test_bare_group_keys_take_their_path_name():
    query = parse_query("select struct(salary: x.salary, a: count(x)) from x in person group by x.salary")
    assert query.group_by[0][0] == "salary"


# -- pushdown --------------------------------------------------------------------------------------
def test_grouped_query_submits_group_by_server_side():
    mediator, server, wrapper = build_sql_mediator()
    try:
        rows = mediator.query(
            "select struct(s: x.salary, a: count(x)) from x in person0 "
            "group by s: x.salary"
        ).rows()
        assert grouped_multiset(rows) == grouped_reference(PEOPLE, "salary", "count", None)
        [sql] = wrapper.statements
        assert "GROUP BY salary" in sql
        assert "COUNT(*) AS a" in sql
        # The cost story: only one row per group crossed the wire.
        assert server.statistics.rows_returned == len(
            {row["salary"] for row in PEOPLE}
        )
    finally:
        mediator.close()


def test_each_aggregate_renders_and_agrees_with_the_mediator():
    for func, arg in [("sum", "id"), ("min", "id"), ("max", "id"), ("avg", "id"), ("count", "id")]:
        mediator, _server, wrapper = build_sql_mediator()
        try:
            rows = mediator.query(
                f"select struct(s: x.salary, a: {func}(x.{arg})) from x in person0 "
                "group by s: x.salary"
            ).rows()
            assert grouped_multiset(rows) == grouped_reference(
                PEOPLE, "salary", func, arg
            ), func
            assert f"{func.upper()}({arg}) AS a" in wrapper.statements[0]
        finally:
            mediator.close()


def test_keyless_aggregate_over_empty_input_yields_one_summary_row():
    mediator, _server, _wrapper = build_sql_mediator()
    try:
        assert mediator.query(
            "select count(x) from x in person0 where x.id > 1000"
        ).rows() == [0]
        assert mediator.query(
            "select sum(x.salary) from x in person0 where x.id > 1000"
        ).rows() == [None]
    finally:
        mediator.close()


def test_limit_applies_after_grouping():
    mediator, server, wrapper = build_sql_mediator()
    try:
        rows = mediator.query(
            "select struct(s: x.salary, a: count(x)) from x in person0 "
            "group by s: x.salary limit 2"
        ).rows()
        assert len(rows) == 2
        assert "GROUP BY salary LIMIT 2" in wrapper.statements[0]
        assert server.statistics.rows_returned == 2
    finally:
        mediator.close()


# -- compensation ----------------------------------------------------------------------------------
def test_groupby_incapable_source_is_compensated_at_the_mediator():
    pushed, _server, _w = build_sql_mediator()
    degraded, server, wrapper = build_sql_mediator(capabilities=NO_GROUPBY_CAPS)
    query = (
        "select struct(s: x.salary, a: avg(x.id)) from x in person0 "
        "group by s: x.salary"
    )
    try:
        reference = grouped_multiset(pushed.query(query).rows())
        rows = degraded.query(query).rows()
        assert grouped_multiset(rows) == reference
        # Every raw row shipped; the grouping happened at the mediator.
        assert server.statistics.rows_returned == len(PEOPLE)
        assert all("GROUP BY" not in sql for sql in wrapper.statements)
        # The streaming engine compensates identically.
        streamed = list(degraded.query_stream(query).iter_rows())
        assert grouped_multiset(streamed) == reference
    finally:
        pushed.close()
        degraded.close()


# -- the two-phase combine through unions ----------------------------------------------------------
def test_avg_over_a_union_combines_sum_and_count_partials():
    mediator, servers = build_union_mediator()
    try:
        all_rows = [
            row
            for server in servers
            for row in server.store.scan(server.store.table_names()[0])
        ]
        reference = grouped_reference(all_rows, "salary", "avg", "id")
        query = (
            "select struct(s: x.salary, a: avg(x.id)) from x in person "
            "group by s: x.salary"
        )
        # Cold start: with no history every exec estimates one row, so the
        # two-phase plan's extra mediator operators outweigh the (invisible)
        # transfer savings and the extents ship whole.  The warm-up run
        # teaches the history the real extent sizes.
        assert grouped_multiset(mediator.query(query).rows()) == reference
        mediator.planner.plan_cache.clear()
        baseline = [server.statistics.rows_returned for server in servers]
        for run in (
            lambda q: mediator.query(q).rows(),
            lambda q: list(mediator.query_stream(q).iter_rows()),
        ):
            rows = run(query)
            assert grouped_multiset(rows) == reference
        # Per-branch partials were pushed on the re-plan: each source returned
        # one row per local group (times the engines run above), not its raw
        # extent.
        for server, before in zip(servers, baseline):
            table = server.store.table_names()[0]
            local_groups = len({row["salary"] for row in server.store.scan(table)})
            assert server.statistics.rows_returned - before <= 2 * local_groups
    finally:
        mediator.close()


def test_grouped_partial_answer_unparses_and_resubmits():
    mediator, servers = build_union_mediator()
    try:
        query = (
            "select struct(s: x.salary, a: avg(x.id)) from x in person "
            "group by s: x.salary"
        )
        reference = grouped_multiset(mediator.query(query).rows())
        servers[1].take_down()
        partial = mediator.query(query)
        assert partial.is_partial and partial.rows() == []
        assert "group by" in partial.partial_query
        parse_query(partial.partial_query)  # the answer *is* a query
        # The streaming engine must not present an aggregate computed over
        # the one available branch as if it were the answer.
        streamed = mediator.query_stream(query)
        assert list(streamed.iter_rows()) == []
        assert streamed.is_partial
        servers[1].bring_up()
        resubmitted = mediator.resubmit(partial)
        assert grouped_multiset(resubmitted.rows()) == reference
    finally:
        mediator.close()


# -- shared NULL semantics -------------------------------------------------------------------------
def test_mediator_and_sql_engine_agree_on_null_semantics():
    rows = [
        {"g": "a", "v": 1},
        {"g": "a", "v": None},
        {"g": "b", "v": None},
    ]
    engine = SqlEngine()
    engine.create_table("t", rows=rows)
    sql = engine.execute(
        "SELECT g, COUNT(*) AS n, COUNT(v) AS nv, SUM(v) AS s, AVG(v) AS a, "
        "MIN(v) AS lo, MAX(v) AS hi FROM t GROUP BY g"
    )
    from repro.algebra.expressions import Path, Var

    v = Path(Var("x"), "v")
    mediated = list(
        ops.group_rows(
            rows,
            "x",
            (("g", Path(Var("x"), "g")),),
            (
                ("n", "count", Var("x")),
                ("nv", "count", v),
                ("s", "sum", v),
                ("a", "avg", v),
                ("lo", "min", v),
                ("hi", "max", v),
            ),
        )
    )
    assert [dict(row) for row in mediated] == sql
    assert sql == [
        {"g": "a", "n": 2, "nv": 1, "s": 1, "a": 1.0, "lo": 1, "hi": 1},
        {"g": "b", "n": 1, "nv": 0, "s": None, "a": None, "lo": None, "hi": None},
    ]


# -- error surfaces --------------------------------------------------------------------------------
def test_multi_binding_group_by_is_rejected():
    mediator, _server, _wrapper = build_sql_mediator()
    try:
        with pytest.raises(QueryExecutionError, match="single from binding"):
            mediator.query(
                "select struct(s: x.salary, a: count(y)) "
                "from x in person0, y in person0 "
                "where x.id = y.id group by s: x.salary"
            )
    finally:
        mediator.close()


def test_item_must_use_group_outputs_only():
    mediator, _server, _wrapper = build_sql_mediator()
    try:
        with pytest.raises(QueryExecutionError):
            mediator.query(
                "select struct(i: x.id, a: count(x)) from x in person0 "
                "group by s: x.salary"
            )
    finally:
        mediator.close()


def test_sql_dialect_rejects_malformed_aggregation():
    engine = SqlEngine()
    engine.create_table("t", rows=[{"g": 1, "v": 2}])
    with pytest.raises(ParseError, match="only COUNT"):
        engine.execute("SELECT SUM(*) FROM t")
    with pytest.raises(QueryExecutionError, match="GROUP BY"):
        engine.execute("SELECT * FROM t GROUP BY g")
    with pytest.raises(QueryExecutionError, match="must appear"):
        engine.execute("SELECT v, COUNT(*) AS n FROM t GROUP BY g")

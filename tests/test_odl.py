"""Tests for the ODL parser and loader, driven by the paper's declarations."""

import pytest

from repro.core.registry import Registry
from repro.datamodel.repository import Repository
from repro.errors import ParseError, SchemaError
from repro.odl.ast import DefineDecl, ExtentDecl, InterfaceDecl, RepositoryDecl
from repro.odl.loader import OdlLoader
from repro.odl.parser import parse_odl

PAPER_ODL = """
interface Person (extent person) {
    attribute String name;
    attribute Short salary;
}

interface Student : Person { }

interface PersonPrime {
    attribute String n;
    attribute Short s;
}

repository r0 (host="rodin", name="db", address="123.45.6.7");
repository r1 (host="umiacs");

extent person0 of Person wrapper w0 repository r0;
extent person1 of Person wrapper w0 repository r1;
extent personprime0 of PersonPrime wrapper w0 repository r0
    map ((person0=personprime0), (name=n), (salary=s));

define double as
    select struct(name: x.name, salary: x.salary + y.salary)
    from x in person0 and y in person1
    where x.id = y.id;
"""


class TestOdlParser:
    def test_parses_every_declaration_kind(self):
        declarations = parse_odl(PAPER_ODL)
        kinds = [type(d).__name__ for d in declarations]
        assert kinds == [
            "InterfaceDecl",
            "InterfaceDecl",
            "InterfaceDecl",
            "RepositoryDecl",
            "RepositoryDecl",
            "ExtentDecl",
            "ExtentDecl",
            "ExtentDecl",
            "DefineDecl",
        ]

    def test_interface_with_extent_and_attributes(self):
        person = parse_odl(PAPER_ODL)[0]
        assert isinstance(person, InterfaceDecl)
        assert person.name == "Person"
        assert person.extent_name == "person"
        assert [(a.type_name, a.name) for a in person.attributes] == [
            ("String", "name"),
            ("Short", "salary"),
        ]

    def test_interface_with_supertype(self):
        student = parse_odl(PAPER_ODL)[1]
        assert student.supertype == "Person"
        assert student.attributes == ()

    def test_extent_declaration(self):
        extent = parse_odl(PAPER_ODL)[5]
        assert isinstance(extent, ExtentDecl)
        assert (extent.name, extent.interface, extent.wrapper, extent.repository) == (
            "person0",
            "Person",
            "w0",
            "r0",
        )
        assert extent.map_pairs == ()

    def test_extent_with_map(self):
        extent = parse_odl(PAPER_ODL)[7]
        assert extent.map_pairs == (
            ("person0", "personprime0"),
            ("name", "n"),
            ("salary", "s"),
        )

    def test_define_keeps_raw_query_text(self):
        define = parse_odl(PAPER_ODL)[8]
        assert isinstance(define, DefineDecl)
        assert define.name == "double"
        assert define.query_text.startswith("select struct(name: x.name")
        assert define.query_text.endswith("x.id = y.id")

    def test_repository_properties(self):
        repository = parse_odl(PAPER_ODL)[3]
        assert isinstance(repository, RepositoryDecl)
        assert repository.property_dict() == {
            "host": "rodin",
            "name": "db",
            "address": "123.45.6.7",
        }

    def test_comments_are_ignored(self):
        declarations = parse_odl("// a comment\ninterface T { attribute Long x; }")
        assert declarations[0].name == "T"

    def test_unknown_declaration_raises(self):
        with pytest.raises(ParseError):
            parse_odl("table person (name);")

    def test_unterminated_define_raises(self):
        with pytest.raises(ParseError):
            parse_odl("define v as select x from x in person")

    def test_missing_semicolon_raises(self):
        with pytest.raises(ParseError):
            parse_odl("extent e0 of T wrapper w repository r")


class TestOdlLoader:
    class FakeWrapper:
        def submit_functionality(self):  # pragma: no cover - never called here
            raise NotImplementedError

    def load(self):
        registry = Registry()
        registry.add_wrapper("w0", self.FakeWrapper())
        OdlLoader(registry).load(PAPER_ODL)
        return registry

    def test_interfaces_are_defined(self):
        registry = self.load()
        assert registry.schema.interface("Person").extent_name == "person"
        assert registry.schema.interface("Student").supertype == "Person"

    def test_repositories_are_created(self):
        registry = self.load()
        assert registry.schema.repository("r0").host == "rodin"
        assert registry.schema.repository("r0").address == "123.45.6.7"

    def test_extents_create_metaextent_objects(self):
        registry = self.load()
        assert {meta.name for meta in registry.schema.extents()} == {
            "person0",
            "person1",
            "personprime0",
        }

    def test_map_is_attached_to_extent(self):
        registry = self.load()
        meta = registry.extent("personprime0")
        assert meta.map.attribute_to_source("n") == "name"
        assert meta.e.source_name() == "person0"

    def test_view_is_registered(self):
        registry = self.load()
        assert registry.schema.has_view("double")

    def test_unknown_attribute_types_are_accepted_as_any(self):
        registry = Registry()
        OdlLoader(registry).load("interface T { attribute Whatever x; };")
        assert registry.schema.interface("T").has_attribute("x")

    def test_extent_for_unknown_wrapper_fails(self):
        registry = Registry()
        loader = OdlLoader(registry)
        with pytest.raises(SchemaError):
            loader.load(
                "interface T { attribute Long x; } repository r0; "
                "extent t0 of T wrapper missing repository r0;"
            )

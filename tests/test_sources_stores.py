"""Tests for the key-value, text-search and CSV data sources."""

import pytest

from repro.errors import QueryExecutionError, SchemaError
from repro.sources.csv_store import CsvStore
from repro.sources.keyvalue_store import KeyValueStore
from repro.sources.text_store import Document, TextStore, tokenize


class TestKeyValueStore:
    def store(self):
        store = KeyValueStore("kv")
        store.create_collection("person0")
        store.put_many(
            "person0",
            [(1, {"name": "Mary", "salary": 200}), (2, {"name": "Sam", "salary": 50})],
        )
        return store

    def test_put_get_scan(self):
        store = self.store()
        assert store.get("person0", 1)["name"] == "Mary"
        assert len(store.scan("person0")) == 2
        assert store.cardinality("person0") == 2

    def test_put_replaces_existing_key(self):
        store = self.store()
        store.put("person0", 1, {"name": "Maria", "salary": 210})
        assert store.get("person0", 1)["name"] == "Maria"
        assert store.cardinality("person0") == 2

    def test_duplicate_collection_raises(self):
        store = self.store()
        with pytest.raises(SchemaError):
            store.create_collection("person0")

    def test_unknown_collection_and_key_raise(self):
        store = self.store()
        with pytest.raises(QueryExecutionError):
            store.scan("nope")
        with pytest.raises(QueryExecutionError):
            store.get("person0", 99)

    def test_scan_returns_copies(self):
        store = self.store()
        store.scan("person0")[0]["name"] = "Hacked"
        assert store.get("person0", 1)["name"] == "Mary"


class TestTextStore:
    def store(self):
        store = TextStore("wais")
        store.create_collection("reports")
        store.add_documents(
            "reports",
            [
                Document("d1", "water quality in the Seine is acceptable", {"site": "Seine"}),
                Document("d2", "nitrates rising in the Loire basin", {"site": "Loire"}),
                Document("d3", "Seine turbidity measurements", {"site": "Seine"}),
            ],
        )
        return store

    def test_tokenize_lowercases_and_splits(self):
        assert tokenize("Water-Quality 2024!") == ["water", "quality", "2024"]

    def test_scan_returns_all_documents_as_rows(self):
        rows = self.store().scan("reports")
        assert len(rows) == 3
        assert {"doc_id", "body", "site"} <= set(rows[0])

    def test_search_requires_all_keywords(self):
        store = self.store()
        assert {row["doc_id"] for row in store.search("reports", "seine")} == {"d1", "d3"}
        assert {row["doc_id"] for row in store.search("reports", "seine quality")} == {"d1"}
        assert store.search("reports", "absent") == []

    def test_search_with_empty_keywords_scans(self):
        assert len(self.store().search("reports", "")) == 3

    def test_search_matches_string_fields_too(self):
        assert {row["doc_id"] for row in self.store().search("reports", "loire")} == {"d2"}

    def test_unknown_collection_raises(self):
        with pytest.raises(QueryExecutionError):
            self.store().scan("nope")


class TestCsvStore:
    def test_write_and_scan_round_trip(self, tmp_path):
        store = CsvStore(tmp_path)
        store.write_collection("person0", [{"name": "Mary", "salary": 200, "active": True}])
        rows = store.scan("person0")
        assert rows == [{"name": "Mary", "salary": 200, "active": True}]

    def test_scan_with_projection(self, tmp_path):
        store = CsvStore(tmp_path)
        store.write_collection("person0", [{"name": "Mary", "salary": 200}])
        assert store.scan("person0", columns=["name"]) == [{"name": "Mary"}]

    def test_projection_unknown_column_raises(self, tmp_path):
        store = CsvStore(tmp_path)
        store.write_collection("person0", [{"name": "Mary"}])
        with pytest.raises(QueryExecutionError):
            store.scan("person0", columns=["age"])

    def test_overwrite_flag(self, tmp_path):
        store = CsvStore(tmp_path)
        store.write_collection("person0", [{"name": "Mary"}])
        with pytest.raises(SchemaError):
            store.write_collection("person0", [{"name": "Sam"}])
        store.write_collection("person0", [{"name": "Sam"}], overwrite=True)
        assert store.scan("person0") == [{"name": "Sam"}]

    def test_unknown_collection_raises(self, tmp_path):
        with pytest.raises(QueryExecutionError):
            CsvStore(tmp_path).scan("nope")

    def test_empty_collection(self, tmp_path):
        store = CsvStore(tmp_path)
        store.write_collection("empty", [])
        assert store.scan("empty") == []
        assert store.cardinality("empty") == 0

    def test_collection_names(self, tmp_path):
        store = CsvStore(tmp_path)
        store.write_collection("b", [{"x": 1}])
        store.write_collection("a", [{"x": 1}])
        assert store.collection_names() == ["a", "b"]

    def test_numeric_coercion(self, tmp_path):
        store = CsvStore(tmp_path)
        store.write_collection("m", [{"value": 3.5, "day": 12, "site": "Seine"}])
        row = store.scan("m")[0]
        assert isinstance(row["value"], float)
        assert isinstance(row["day"], int)
        assert isinstance(row["site"], str)

"""Tests for the miniature SQL dialect: lexer, parser and engine."""

import pytest

from repro.errors import ParseError, QueryExecutionError
from repro.sources.relational_engine import RelationalEngine
from repro.sources.sql import SqlEngine, SqlLexer, SqlParser
from repro.sources.sql.parser import ColumnRef, Comparison, Literal


def sample_engine() -> SqlEngine:
    storage = RelationalEngine("storage")
    storage.create_table(
        "person0",
        rows=[
            {"id": 1, "name": "Mary", "salary": 200},
            {"id": 2, "name": "Sam", "salary": 50},
            {"id": 3, "name": "Ana", "salary": 10},
        ],
    )
    storage.create_table(
        "dept",
        rows=[{"id": 1, "dept": "db"}, {"id": 2, "dept": "os"}],
    )
    return SqlEngine(storage)


class TestSqlLexer:
    def test_tokenizes_keywords_operators_and_literals(self):
        tokens = SqlLexer("SELECT name FROM t WHERE salary >= 10").tokens()
        kinds = [token.kind for token in tokens]
        assert kinds == ["KEYWORD", "IDENT", "KEYWORD", "IDENT", "KEYWORD", "IDENT", "OP", "NUMBER", "EOF"]

    def test_string_literal_with_escaped_quote(self):
        tokens = SqlLexer("SELECT * FROM t WHERE name = 'O''Brien'").tokens()
        strings = [token.text for token in tokens if token.kind == "STRING"]
        assert strings == ["O'Brien"]

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError):
            SqlLexer("SELECT * FROM t WHERE name = 'oops").tokens()

    def test_unexpected_character_raises(self):
        with pytest.raises(ParseError):
            SqlLexer("SELECT # FROM t").tokens()


class TestSqlParser:
    def test_parse_star_select(self):
        statement = SqlParser("SELECT * FROM person0").parse()
        assert statement.columns is None
        assert statement.table == "person0"
        assert statement.where is None

    def test_parse_projection_and_where(self):
        statement = SqlParser("SELECT name, salary FROM person0 WHERE salary > 10").parse()
        assert [c.name for c in statement.columns] == ["name", "salary"]
        assert isinstance(statement.where, Comparison)
        assert statement.where.op == ">"

    def test_parse_join(self):
        statement = SqlParser("SELECT name FROM person0 JOIN dept ON id = id").parse()
        assert len(statement.joins) == 1
        assert statement.joins[0].table == "dept"

    def test_parse_boolean_combination(self):
        statement = SqlParser(
            "SELECT * FROM person0 WHERE salary > 10 AND NOT (name = 'Sam' OR name = 'Ana')"
        ).parse()
        assert statement.where is not None

    def test_trailing_input_raises(self):
        with pytest.raises(ParseError):
            SqlParser("SELECT * FROM t garbage").parse()

    def test_literal_rendering_round_trip(self):
        assert Literal("O'Brien").render() == "'O''Brien'"
        assert Literal(None).render() == "NULL"
        assert Literal(True).render() == "TRUE"
        assert ColumnRef("name", table="t").render() == "t.name"


class TestSqlEngine:
    def test_select_star(self):
        assert len(sample_engine().execute("SELECT * FROM person0")) == 3

    def test_projection(self):
        rows = sample_engine().execute("SELECT name FROM person0")
        assert all(set(row) == {"name"} for row in rows)

    def test_where_filters(self):
        rows = sample_engine().execute("SELECT name FROM person0 WHERE salary > 10")
        assert {row["name"] for row in rows} == {"Mary", "Sam"}

    def test_string_equality(self):
        rows = sample_engine().execute("SELECT id FROM person0 WHERE name = 'Mary'")
        assert rows == [{"id": 1}]

    def test_and_or_not(self):
        rows = sample_engine().execute(
            "SELECT name FROM person0 WHERE salary > 5 AND (name = 'Sam' OR name = 'Ana')"
        )
        assert {row["name"] for row in rows} == {"Sam", "Ana"}
        rows = sample_engine().execute("SELECT name FROM person0 WHERE NOT salary > 10")
        assert {row["name"] for row in rows} == {"Ana"}

    def test_join(self):
        rows = sample_engine().execute(
            "SELECT name, dept FROM person0 JOIN dept ON id = id WHERE salary > 10"
        )
        assert {(row["name"], row["dept"]) for row in rows} == {("Mary", "db"), ("Sam", "os")}

    def test_comparison_with_unknown_column_raises(self):
        with pytest.raises(QueryExecutionError):
            sample_engine().execute("SELECT name FROM person0 WHERE age > 10")

    def test_comparisons_with_incompatible_types_are_false(self):
        rows = sample_engine().execute("SELECT name FROM person0 WHERE name > 10")
        assert rows == []

    def test_cardinality_and_table_names(self):
        engine = sample_engine()
        assert engine.cardinality("person0") == 3
        assert set(engine.table_names()) == {"person0", "dept"}

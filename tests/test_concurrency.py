"""Concurrency safety of the mediator core, plus admission and backpressure.

The serving-layer contract (ISSUE 6): one mediator shared by many threads
must produce, per query, exactly the answer a single-threaded run produces --
no cross-query row leakage, no corrupted plan cache, no history races -- and
close() must never leak pool threads or raise into an unrelated query.

The stress tests run real thread fleets; the unit tests pin the fairness
(stride scheduling), admission-verdict and bounded-queue semantics directly.
"""

from __future__ import annotations

import threading
import time
from collections import Counter

import pytest

from repro import Mediator, RelationalWrapper
from repro.errors import AdmissionError
from repro.runtime.admission import (
    CLOSED,
    QUEUE_TIMEOUT,
    REJECTED,
    AdmissionController,
    FairQueue,
    QueueClosed,
)
from repro.runtime.backpressure import BoundedRowQueue, StreamClosed
from repro.sources import RelationalEngine, SimulatedServer

ROWS = [{"id": i, "name": f"p{i}", "salary": i * 10} for i in range(40)]

QUERIES = [
    "select x.name from x in person0",
    "select x.name from x in person0 where x.salary > 100",
    "select x from x in person0 where x.salary < 50",
    "select x.salary from x in person0 where x.name = \"p7\"",
]


def build_mediator(**mediator_kwargs):
    engine = RelationalEngine(name="db0")
    engine.create_table("person0", rows=[dict(row) for row in ROWS])
    server = SimulatedServer(name="h0", store=engine)
    mediator = Mediator(name="stress", **mediator_kwargs)
    mediator.register_wrapper("w0", RelationalWrapper("w0", server))
    mediator.create_repository("r0")
    mediator.define_interface(
        "Person",
        [("id", "Long"), ("name", "String"), ("salary", "Short")],
        extent_name="person",
    )
    mediator.add_extent("person0", "Person", "w0", "r0")
    return mediator, server


def run_fleet(worker, n_threads):
    """Run ``worker(index)`` on N threads; re-raise the first failure."""
    errors: list[BaseException] = []

    def wrapped(index: int) -> None:
        try:
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(30)
    assert not any(thread.is_alive() for thread in threads), "worker thread hung"
    if errors:
        raise errors[0]


class TestConcurrentQueries:
    def test_results_match_single_threaded_runs(self):
        mediator, _ = build_mediator()
        expected = {text: sorted(map(repr, mediator.query(text).rows())) for text in QUERIES}
        mismatches: list[str] = []
        lock = threading.Lock()

        def worker(index: int) -> None:
            for round_number in range(6):
                text = QUERIES[(index + round_number) % len(QUERIES)]
                result = mediator.query(text)
                assert not result.is_partial
                got = sorted(map(repr, result.rows()))
                if got != expected[text]:
                    with lock:
                        mismatches.append(text)

        run_fleet(worker, 8)
        assert mismatches == []
        # Shared state stayed consistent: one cache entry per distinct query,
        # every signature intact.
        stats = mediator.statistics()
        assert stats["plan_cache_entries"] == len(QUERIES)
        assert stats["plan_cache_hits"] + stats["plan_cache_misses"] == 8 * 6 + len(QUERIES)
        mediator.close()

    def test_streaming_queries_interleave_without_corruption(self):
        mediator, _ = build_mediator()
        expected = sorted(f"p{i}" for i in range(40))

        def worker(index: int) -> None:
            for _ in range(4):
                result = mediator.query_stream("select x.name from x in person0")
                assert sorted(result.iter_rows()) == expected

        run_fleet(worker, 6)
        mediator.close()

    def test_queries_race_schema_mutations_safely(self):
        # A DBA thread adds/drops an extent while query threads run: queries
        # either see the old or the new schema, never a torn one, and the
        # plan cache never serves a plan across the version bump.
        mediator, _ = build_mediator()
        stop = threading.Event()

        def dba() -> None:
            flip = 0
            while not stop.is_set():
                name = f"extra{flip % 2}"
                try:
                    mediator.add_extent(name, "Person", "w0", "r0", source_collection="person0")
                    mediator.drop_extent(name)
                except Exception:  # noqa: BLE001 - schema races surface in queries
                    raise
                flip += 1

        dba_thread = threading.Thread(target=dba)
        dba_thread.start()
        try:
            def worker(index: int) -> None:
                for _ in range(10):
                    result = mediator.query("select x.name from x in person0")
                    assert sorted(result.rows()) == sorted(f"p{i}" for i in range(40))

            run_fleet(worker, 4)
        finally:
            stop.set()
            dba_thread.join(10)
        assert not dba_thread.is_alive()
        mediator.close()

    def test_history_estimates_race_recording(self):
        # estimate() iterates deques that workers append to; under the lock
        # this must never raise "deque mutated during iteration".
        mediator, _ = build_mediator()
        mediator.query(QUERIES[0])  # seed the history
        stop = threading.Event()
        failures: list[BaseException] = []

        def estimator() -> None:
            from repro.oql.parser import parse_query

            while not stop.is_set():
                try:
                    mediator.planner.plan(QUERIES[0], use_cache=False)
                except BaseException as exc:  # noqa: BLE001
                    failures.append(exc)
                    return

        estimator_thread = threading.Thread(target=estimator)
        estimator_thread.start()
        try:
            def worker(index: int) -> None:
                for _ in range(8):
                    mediator.query(QUERIES[index % len(QUERIES)])

            run_fleet(worker, 4)
        finally:
            stop.set()
            estimator_thread.join(10)
        assert failures == []
        mediator.close()


class TestCloseRaces:
    def test_cancel_close_degrades_inflight_queries_without_raising(self):
        from repro.sources import NetworkProfile

        engine = RelationalEngine(name="db0")
        engine.create_table("person0", rows=[dict(row) for row in ROWS])
        server = SimulatedServer(
            name="h0", store=engine, network=NetworkProfile(base_latency=0.5), real_sleep=True
        )
        mediator = Mediator(name="closing")
        mediator.register_wrapper("w0", RelationalWrapper("w0", server))
        mediator.create_repository("r0")
        mediator.define_interface(
            "Person",
            [("id", "Long"), ("name", "String"), ("salary", "Short")],
            extent_name="person",
        )
        mediator.add_extent("person0", "Person", "w0", "r0")
        results: list = []
        errors: list[BaseException] = []

        def worker() -> None:
            try:
                results.append(mediator.query("select x.name from x in person0", timeout=30))
            except BaseException as exc:  # noqa: BLE001 - the contract: never raises
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)  # let the calls reach the simulated latency sleep
        started = time.monotonic()
        mediator.close()
        close_took = time.monotonic() - started
        for thread in threads:
            thread.join(10)
        assert not any(thread.is_alive() for thread in threads)
        assert errors == []  # cancelled queries degrade, they never raise
        assert len(results) == 3 and all(result.is_partial for result in results)
        assert close_took < 5.0  # cancellation, not a drain of the 0.5s latency
        # wait=True in the shutdown: the pool threads are gone, not leaked.
        time.sleep(0.05)
        assert not [
            thread for thread in threading.enumerate() if thread.name.startswith("disco-exec")
        ]

    def test_drain_close_waits_for_completion(self):
        mediator, _ = build_mediator()
        results: list = []
        thread = threading.Thread(
            target=lambda: results.append(mediator.query("select x.name from x in person0"))
        )
        thread.start()
        mediator.close(drain=True, timeout=10)
        thread.join(10)
        assert len(results) == 1 and not results[0].is_partial

    def test_mediator_usable_again_after_close(self):
        mediator, _ = build_mediator()
        mediator.close()
        assert len(mediator.query("select x.name from x in person0").rows()) == 40
        mediator.close()


class TestAdmissionController:
    def test_inflight_budget_is_enforced(self):
        mediator, _ = build_mediator(max_concurrent_queries=2)
        peak = []

        def worker(index: int) -> None:
            for _ in range(5):
                result = mediator.query("select x.name from x in person0")
                assert not result.is_partial

        run_fleet(worker, 6)
        stats = mediator.statistics()["admission"]
        assert stats["max_inflight_seen"] <= 2
        assert stats["admitted"] == 6 * 5
        assert stats["inflight"] == 0 and stats["queued"] == 0
        mediator.close()

    def test_full_queue_rejects_with_verdict(self):
        controller = AdmissionController(max_inflight=1, max_queue_depth=0)
        controller.acquire()
        with pytest.raises(AdmissionError) as excinfo:
            controller.acquire(deadline=time.monotonic() + 5)
        assert excinfo.value.verdict == REJECTED
        controller.release()
        controller.close()

    def test_expired_deadline_times_out_in_queue(self):
        controller = AdmissionController(max_inflight=1)
        controller.acquire()
        started = time.monotonic()
        with pytest.raises(AdmissionError) as excinfo:
            controller.acquire(deadline=time.monotonic() + 0.05)
        assert excinfo.value.verdict == QUEUE_TIMEOUT
        assert time.monotonic() - started < 5.0
        assert controller.stats.timed_out == 1
        controller.release()
        assert controller.inflight == 0
        controller.close()

    def test_close_wakes_queued_waiters(self):
        controller = AdmissionController(max_inflight=1)
        controller.acquire()
        verdicts: list[str] = []

        def waiter() -> None:
            try:
                controller.acquire()
            except AdmissionError as exc:
                verdicts.append(exc.verdict)

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        controller.close()
        thread.join(5)
        assert not thread.is_alive()
        assert verdicts == [CLOSED]

    def test_queue_wait_is_deducted_from_the_execution_timeout(self):
        # A query admitted after waiting w seconds executes with timeout-w:
        # hold the only slot long enough that the remaining budget cannot
        # cover the source latency, and the queued query must come back
        # partial (its deadline was end-to-end, not execution-only).
        from repro.sources import NetworkProfile

        engine = RelationalEngine(name="db0")
        engine.create_table("person0", rows=[dict(row) for row in ROWS])
        server = SimulatedServer(
            name="h0", store=engine, network=NetworkProfile(base_latency=0.3), real_sleep=True
        )
        mediator = Mediator(name="deadline", max_concurrent_queries=1, timeout=1.0)
        mediator.register_wrapper("w0", RelationalWrapper("w0", server))
        mediator.create_repository("r0")
        mediator.define_interface(
            "Person",
            [("id", "Long"), ("name", "String"), ("salary", "Short")],
            extent_name="person",
        )
        mediator.add_extent("person0", "Person", "w0", "r0")
        outcomes: dict[str, object] = {}

        def first() -> None:
            outcomes["first"] = mediator.query("select x.name from x in person0", timeout=5.0)

        def second() -> None:
            outcomes["second"] = mediator.query("select x.name from x in person0", timeout=0.4)

        first_thread = threading.Thread(target=first)
        first_thread.start()
        time.sleep(0.05)  # first holds the slot, in its 0.3s latency
        second_thread = threading.Thread(target=second)
        second_thread.start()
        first_thread.join(10)
        second_thread.join(10)
        assert not outcomes["first"].is_partial
        # second waited ~0.25s of its 0.4s budget in the queue; the ~0.15s
        # left cannot cover the 0.3s source latency.
        assert outcomes["second"].is_partial
        mediator.close()


class TestFairQueue:
    def test_weighted_interleaving_is_proportional(self):
        queue = FairQueue()
        for i in range(30):
            queue.push(("lo", i), priority=1.0)
            queue.push(("hi", i), priority=3.0)
        first_twenty = [queue.pop(timeout=0)[0] for _ in range(20)]
        counts = Counter(first_twenty)
        # Stride scheduling: the weight-3 class is served ~3x as often.
        assert counts["hi"] == 15 and counts["lo"] == 5

    def test_within_class_order_is_fifo(self):
        queue = FairQueue()
        for i in range(5):
            queue.push(i, priority=2.0)
        assert [queue.pop(timeout=0) for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_idle_class_does_not_bank_credit(self):
        queue = FairQueue()
        # The high class drains 9 items, advancing its pass value.
        for i in range(9):
            queue.push(("hi", i), priority=3.0)
        for _ in range(9):
            queue.pop(timeout=0)
        # A newcomer class enters at the current virtual time, not at 0:
        # it must not monopolize the queue to "catch up" on credit it never
        # earned while idle.
        for i in range(6):
            queue.push(("hi", i), priority=3.0)
            queue.push(("lo", i), priority=1.0)
        first_four = [queue.pop(timeout=0)[0] for _ in range(4)]
        assert first_four.count("lo") <= 2

    def test_capacity_bound_rejects(self):
        queue = FairQueue(capacity=2)
        queue.push(1)
        queue.push(2)
        with pytest.raises(AdmissionError) as excinfo:
            queue.push(3)
        assert excinfo.value.verdict == REJECTED

    def test_close_drains_and_raises(self):
        queue = FairQueue()
        queue.push("a")
        queue.push("b", priority=2.0)
        assert sorted(queue.close()) == ["a", "b"]
        with pytest.raises(QueueClosed):
            queue.pop(timeout=0)
        with pytest.raises(QueueClosed):
            queue.push("c")


class TestBoundedRowQueue:
    def test_producer_stalls_at_capacity(self):
        queue = BoundedRowQueue(capacity=2)
        produced: list[int] = []

        def producer() -> None:
            for i in range(6):
                queue.put(i)
                produced.append(i)
            queue.finish()

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.1)
        # Backpressure: the producer is stalled at the bound, not 6 ahead.
        assert len(produced) <= 3 and queue.stalls >= 1
        assert list(queue) == [0, 1, 2, 3, 4, 5]
        thread.join(5)
        assert queue.delivered == 6

    def test_consumer_close_wakes_and_cancels_the_producer(self):
        queue = BoundedRowQueue(capacity=1)
        outcome: list[str] = []

        def producer() -> None:
            try:
                for i in range(100):
                    queue.put(i)
            except StreamClosed:
                outcome.append("cancelled")

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.05)
        queue.close()
        thread.join(5)
        assert not thread.is_alive()
        assert outcome == ["cancelled"]

    def test_producer_error_reraises_at_the_consumer(self):
        queue = BoundedRowQueue(capacity=4)
        queue.put(1)
        queue.finish(error=RuntimeError("source died"))
        iterator = iter(queue)
        assert next(iterator) == 1
        with pytest.raises(RuntimeError, match="source died"):
            next(iterator)

"""Differential testing: the barrier and streaming engines must agree.

With two execution engines live, equivalence is enforced by tests rather
than convention: ~100 seeded random OQL queries (joins, multi-variable bind
joins with batched probes, unions, distinct, limit, injected faults) are run
through both ``Mediator.query()`` and ``Mediator.query_stream()`` and
compared on row multisets, error reporting, and partial-answer shape.  The
mediator's ``bind_batch_size`` is itself swept per seed, so probe joins are
pinned at every batch-boundary shape.

The agreed semantics being pinned:

* complete answers are identical *multisets* (order is never promised);
* a ``limit n`` answer is any sub-multiset of size ``min(n, |full answer|)``
  of the unlimited answer -- which ``n`` rows arrive is completion-order
  dependent by design;
* when a referenced source is down, both engines report the same unavailable
  extents and error keys; the barrier engine returns a resubmittable partial
  answer (no rows), the streaming engine delivers the available sources' rows;
* a streaming ``limit`` satisfied by healthy sources may *cancel* the failing
  branch before observing its failure, in which case the stream legitimately
  completes -- the one sanctioned shape difference;
* a source killed *mid-stream* (after delivering rows) with retries remaining
  recovers in both engines to the identical complete multiset -- the barrier
  engine by retrying the whole materialization, the streaming engine by
  resuming past the delivered rows (exactly-once: no duplicates, no gaps).
  Per-call attempt shapes are *not* compared under a kill: which concurrent
  call to the server consumes the armed kill is scheduling-dependent.

When a new operator lands, extend the query generator below so both engines
see it -- and note that the *static* half of that coverage contract is
machine-checked: the dispatch-completeness checker in ``repro.analysis``
(``PYTHONPATH=src python -m repro.analysis``) fails the build if the new
operator is missing an arm at any dispatch ladder (unparser, cost model,
implementation, composer, ...), so only the generator extension here needs
remembering by hand.
"""

from __future__ import annotations

import os
import random
import tempfile
from collections import Counter
from collections.abc import Mapping

import pytest

from repro import Mediator, RelationalWrapper
from repro.algebra.capabilities import PUSHABLE_OPERATORS, CapabilitySet
from repro.algebra.logical import Get, Join, Select, Submit
from repro.datamodel.mapping import LocalTransformationMap
from repro.datamodel.values import Bag, Struct
from repro.optimizer.implementation import implement
from repro.sources import RelationalEngine, SimulatedServer, TableSchema
from repro.sources.csv_store import CsvStore
from repro.sources.text_store import Document, TextStore
from repro.wrappers import CsvWrapper, TextSearchWrapper

NAMES = ["ann", "bob", "cleo", "dan", "eve"]
#: the nightly CI job raises this to 1000 via DISCO_EQUIV_SEEDS.
SEEDS = range(int(os.environ.get("DISCO_EQUIV_SEEDS", "104")))
#: set DISCO_EQUIV_SERVER=1 to additionally run every seed's query through a
#: MediatorServer (both barrier and streamed submissions) and hold the served
#: answers to the same multiset contract -- the serving layer must be
#: answer-transparent.  Off by default: it roughly doubles the sweep's cost.
RUN_THROUGH_SERVER = os.environ.get("DISCO_EQUIV_SERVER", "") not in ("", "0")
#: set DISCO_EQUIV_CACHE=1 to run the answer-cache transparency axis over
#: *every* seed (the nightly sweep); by default a quarter of the seeds run
#: it, which keeps the tier-1 suite fast while still exercising the cache
#: against repeats, subsumed variants, schema mutations and faults.
RUN_FULL_CACHE_AXIS = os.environ.get("DISCO_EQUIV_CACHE", "") not in ("", "0")
CACHE_SEEDS = SEEDS if RUN_FULL_CACHE_AXIS else range(0, len(SEEDS), 4)

#: shared on-disk home for the CSV source's files; one directory per test run.
_CSV_DIR = tempfile.mkdtemp(prefix="disco-equiv-csv-")


def build_mediator(
    bind_batch_size: int = 256, no_groupby: bool = False, answer_cache=None
):
    """Two Person sources (members of the implicit ``person`` extent) plus a
    ``dept0`` collection co-hosted with person0 for join queries, plus a pair
    of *colliding* extents (``cat0``/``flag0`` both call their source column
    ``nm`` but map it to different mediator attributes) so the generator can
    produce queries that exercise the namespace planner's aliasing.

    Also on board: a file-backed CSV source (``note0``, get/project only) and
    a WAIS-like keyword-search source (``report0``, non-composing get/select),
    so the sweep covers the weakest wrappers' compensation paths.

    ``bind_batch_size`` is swept by the seeds (1/2/3/256) so the nightly run
    exercises batched probe joins at every batch-boundary shape: per-binding
    degeneration, mid-batch flushes, and one-call whole-side batches.
    ``no_groupby`` strips the ``groupby`` terminal from both relational
    wrappers, so grouped queries degrade and are compensated by mediator-side
    (partial) aggregation instead of pushing ``GROUP BY`` to the source."""
    engine0 = RelationalEngine(name="db0")
    engine0.create_table(
        "person0",
        schema=TableSchema.of(("id", int), ("name", str), ("salary", int)),
        rows=[
            {"id": i, "name": NAMES[i % len(NAMES)], "salary": i % 7} for i in range(12)
        ],
    )
    engine0.create_table(
        "dept0",
        schema=TableSchema.of(("id", int), ("dname", str)),
        rows=[{"id": i, "dname": f"d{i % 3}"} for i in range(8)],
    )
    engine0.create_table(
        "t_cat",
        schema=TableSchema.of(("id", int), ("nm", str)),
        rows=[{"id": i, "nm": f"cat{i % 4}"} for i in range(9)],
    )
    engine0.create_table(
        "t_flag",
        schema=TableSchema.of(("id", int), ("nm", str)),
        rows=[{"id": i, "nm": f"flag{i % 2}"} for i in range(7)],
    )
    engine1 = RelationalEngine(name="db1")
    engine1.create_table(
        "person1",
        schema=TableSchema.of(("id", int), ("name", str), ("salary", int)),
        rows=[
            {"id": i, "name": NAMES[(i + 2) % len(NAMES)], "salary": (i + 3) % 9}
            for i in range(10)
        ],
    )
    csv_store = CsvStore(_CSV_DIR)
    csv_store.write_collection(
        "note0",
        [{"id": i, "tag": f"t{i % 3}"} for i in range(6)],
        overwrite=True,
    )
    text_store = TextStore("wais")
    text_store.create_collection("report0")
    text_store.add_documents(
        "report0",
        [
            Document(f"d{i}", f"reading {i}", {"site": f"s{i % 3}", "value": i})
            for i in range(7)
        ],
    )
    server0 = SimulatedServer(name="host0", store=engine0)
    server1 = SimulatedServer(name="host1", store=engine1)
    server2 = SimulatedServer(name="host2", store=csv_store)
    server3 = SimulatedServer(name="host3", store=text_store)
    capabilities = (
        CapabilitySet.of(*(op for op in PUSHABLE_OPERATORS if op != "groupby"))
        if no_groupby
        else None
    )
    mediator = Mediator(
        name="diff", bind_batch_size=bind_batch_size, answer_cache=answer_cache
    )
    mediator.register_wrapper(
        "w0", RelationalWrapper("w0", server0, capabilities=capabilities)
    )
    mediator.register_wrapper(
        "w1", RelationalWrapper("w1", server1, capabilities=capabilities)
    )
    mediator.register_wrapper("w2", CsvWrapper("w2", server2))
    mediator.register_wrapper("w3", TextSearchWrapper("w3", server3))
    mediator.create_repository("r0")
    mediator.create_repository("r1")
    mediator.define_interface(
        "Person",
        [("id", "Long"), ("name", "String"), ("salary", "Short")],
        extent_name="person",
    )
    mediator.define_interface(
        "Dept", [("id", "Long"), ("dname", "String")], extent_name="dept"
    )
    mediator.add_extent("person0", "Person", "w0", "r0")
    mediator.add_extent("person1", "Person", "w1", "r1")
    mediator.add_extent("dept0", "Dept", "w0", "r0")
    mediator.define_interface(
        "Cat", [("id", "Long"), ("cat", "String")], extent_name="cats"
    )
    mediator.define_interface(
        "Flag", [("id", "Long"), ("flag", "String")], extent_name="flags"
    )
    mediator.add_extent(
        "cat0",
        "Cat",
        "w0",
        "r0",
        map=LocalTransformationMap.from_pairs([("t_cat", "cat0"), ("nm", "cat")]),
    )
    mediator.add_extent(
        "flag0",
        "Flag",
        "w0",
        "r0",
        map=LocalTransformationMap.from_pairs([("t_flag", "flag0"), ("nm", "flag")]),
    )
    mediator.create_repository("r2")
    mediator.create_repository("r3")
    mediator.define_interface(
        "Note", [("id", "Long"), ("tag", "String")], extent_name="note"
    )
    mediator.define_interface(
        "Report",
        [("doc_id", "String"), ("body", "String"), ("site", "String"), ("value", "Long")],
        extent_name="report",
    )
    mediator.add_extent("note0", "Note", "w2", "r2")
    mediator.add_extent("report0", "Report", "w3", "r3")
    return mediator, [server0, server1, server2, server3]


def random_query(rng: random.Random) -> tuple[str, int | None]:
    """One random OQL query; returns (text-without-limit, limit-or-None)."""
    roll = rng.random()
    if roll < 0.12:  # colliding schema: both extents' source column is "nm"
        item = rng.choice(
            ["struct(c: x.cat, f: y.flag)", "x.cat", "struct(i: x.id, f: y.flag)"]
        )
        text = f"select {item} from x in cat0 and y in flag0 where x.id = y.id"
        if rng.random() < 0.4:
            text += f" and x.id > {rng.randint(0, 5)}"
    elif roll < 0.28:  # bind-join over co-hosted and cross-source extents
        # With the equi condition pushed into the bind join these plan as
        # batched probe joins, so the sweep covers in-list probing (and its
        # per-binding degeneration when the mediator's batch size is 1).
        right = rng.choice(["dept0", "person1"])
        if right == "dept0":
            item = rng.choice(["x.name", "struct(n: x.name, d: y.dname)", "y.dname"])
        else:
            item = rng.choice(["x.name", "struct(a: x.name, b: y.name)"])
        text = f"select {item} from x in person0 and y in {right} where x.id = y.id"
        if rng.random() < 0.5:
            text += f" and x.salary > {rng.randint(0, 6)}"
    elif roll < 0.36:  # three bindings: probe chains threading environments
        item = rng.choice(
            [
                "struct(n: x.name, d: y.dname, b: z.name)",
                "x.name",
                "struct(d: y.dname, b: z.name)",
            ]
        )
        text = (
            f"select {item} from x in person0 and y in dept0 and z in person1 "
            "where x.id = y.id and y.id = z.id"
        )
        if rng.random() < 0.4:
            text += f" and x.salary > {rng.randint(0, 6)}"
    elif roll < 0.58:  # grouping & aggregation: pushdown, union combine, degrade
        collection = rng.choice(["person0", "person1", "person", "person"])
        aggregate = rng.choice(
            [
                "count(x)",
                "count(x.salary)",
                "sum(x.salary)",
                "min(x.id)",
                "max(x.id)",
                "avg(x.salary)",
            ]
        )
        where = ""
        if rng.random() < 0.4:
            where = f" where x.id {rng.choice(['>', '<='])} {rng.randint(0, 8)}"
        if rng.random() < 0.7:
            key_name, key_expr = rng.choice([("s", "x.salary"), ("n", "x.name")])
            text = (
                f"select struct({key_name}: {key_expr}, a: {aggregate}) "
                f"from x in {collection}{where} group by {key_name}: {key_expr}"
            )
        else:  # keyless: one summary row, even over empty input
            text = f"select {aggregate} from x in {collection}{where}"
    elif roll < 0.70:  # weakest wrappers: csv (get/project), non-composing textsearch
        if rng.random() < 0.5:
            item = rng.choice(["x", "x.tag", "struct(i: x.id, t: x.tag)"])
            text = f"select {item} from x in note0"
            if rng.random() < 0.4:
                # csv has no ``select``: the predicate is compensated above.
                text += f" where x.id > {rng.randint(0, 4)}"
        else:
            item = rng.choice(["x.doc_id", "struct(d: x.doc_id, s: x.site)"])
            text = f"select {item} from x in report0"
            if rng.random() < 0.5:
                text += rng.choice(
                    [' where x.site = "s1"', f" where x.value > {rng.randint(0, 4)}"]
                )
    else:
        collection = rng.choice(["person0", "person1", "person", "person"])
        item = rng.choice(
            ["x", "x.name", "x.salary", "struct(n: x.name, s: x.salary)"]
        )
        distinct = "distinct " if rng.random() < 0.3 else ""
        text = f"select {distinct}{item} from x in {collection}"
        if rng.random() < 0.6:
            attribute = rng.choice(["salary", "id"])
            op = rng.choice([">", "<", ">=", "="])
            text += f" where x.{attribute} {op} {rng.randint(0, 8)}"
    limit = rng.randint(0, 12) if rng.random() < 0.4 else None
    return text, limit


def canon(value):
    """Hashable, order-insensitive canonical form of one answer element."""
    if isinstance(value, (Struct, Mapping)):
        return (
            "struct",
            tuple(sorted((key, canon(item)) for key, item in dict(value).items())),
        )
    if isinstance(value, (Bag, list, tuple)):
        return ("bag", tuple(sorted((canon(item) for item in value), key=repr)))
    return ("value", repr(value))


def multiset(rows) -> Counter:
    return Counter(canon(row) for row in rows)


def report_shape(reports) -> dict:
    """Per-call attempt accounting, comparable across the two engines.

    Cancelled calls are excluded (a satisfied streaming limit may write off
    a call the barrier engine ran to completion); everything else must agree
    on how many wrapper attempts were made and whether the pushdown was
    split into per-leaf calls.
    """
    shape: dict = {}
    for report in reports:
        if report.cancelled:
            continue
        key = (report.extent_name, report.expression)
        shape[key] = (report.attempts, report.split_calls)
    return shape


@pytest.mark.parametrize("seed", SEEDS)
def test_engines_agree(seed):
    rng = random.Random(seed)
    mediator, servers = build_mediator(
        bind_batch_size=rng.choice([1, 2, 3, 256]),
        # A quarter of the sweep strips the relational wrappers' ``groupby``
        # terminal: grouped queries then degrade and the mediator compensates
        # with (partial) aggregation, which must be answer-identical.
        no_groupby=rng.random() < 0.25,
    )
    try:
        base_text, limit = random_query(rng)
        text = base_text if limit is None else f"{base_text} limit {limit}"
        fault_index = rng.choice([0, 1]) if rng.random() < 0.3 else None
        # Mid-stream fault injection: kill one server's row stream after K
        # rows, with enough retry budget for both engines to recover -- the
        # barrier engine by retrying the whole call, the streaming engine by
        # resuming past the delivered rows.  Kept disjoint from the
        # hard-down scenario so each failure mode is pinned separately.
        kill = None
        if rng.random() < 0.3:
            kill = (rng.choice([0, 1]), rng.randint(0, 8))
            fault_index = None
            mediator.executor.config.max_retries = 2
            mediator.executor.config.retry_backoff = 0.001

        # The fault-free, unlimited answer is the reference every comparison
        # is anchored to (computed before any server goes down).
        reference = multiset(mediator.query(base_text).rows())

        if RUN_THROUGH_SERVER:
            # Serving-layer transparency: the same query submitted through a
            # MediatorServer -- once barrier, once streamed -- must satisfy
            # the same multiset contract as a direct call.  Run before any
            # fault is armed so the injection choreography below is untouched.
            with mediator.serve(workers=2) as query_server:
                served = query_server.submit(text).result(timeout=30)
                served_stream_rows = list(
                    query_server.submit(text, stream=True).rows()
                )
            assert not served.is_partial
            if limit is None:
                assert multiset(served.rows()) == reference
                assert multiset(served_stream_rows) == reference
            else:
                expected = min(limit, sum(reference.values()))
                assert len(served.rows()) == expected
                assert len(served_stream_rows) == expected
                assert not multiset(served.rows()) - reference
                assert not multiset(served_stream_rows) - reference

        if fault_index is not None:
            servers[fault_index].take_down()

        if kill is not None:
            servers[kill[0]].availability.kill_after(kill[1])
        barrier = mediator.query(text)
        barrier_rows = barrier.rows()
        if kill is not None:
            servers[kill[0]].availability.kill_after(kill[1])
        streamed = mediator.query_stream(text)
        streamed_rows = list(streamed.iter_rows())

        faulted = bool(barrier.unavailable_sources)
        if not faulted:
            assert not barrier.is_partial and not streamed.is_partial
            assert streamed.errors() == {} and barrier.errors() == {}
            if limit is None:
                # The headline exactly-once property: a killed-and-recovered
                # stream is indistinguishable from a clean one -- identical
                # complete multiset, no duplicated and no dropped rows.
                assert multiset(barrier_rows) == reference
                assert multiset(streamed_rows) == reference
                if kill is None:
                    # Attempt accounting agrees call for call.  (With a kill
                    # armed, *which* concurrent call to the server consumes it
                    # is scheduling-dependent, so per-call shapes may differ.)
                    assert report_shape(streamed.reports) == report_shape(
                        barrier.reports
                    )
                else:
                    # A streaming recovery never re-delivers: any replayed
                    # rows were dropped at the mediator, and a resumed call
                    # reports the recovery.
                    for report in streamed.reports:
                        if report.resumed_calls:
                            assert report.available and not report.cancelled
            else:
                expected = min(limit, sum(reference.values()))
                assert len(barrier_rows) == expected
                assert len(streamed_rows) == expected
                # Any n rows of the full answer are a correct limited answer.
                assert not multiset(barrier_rows) - reference
                assert not multiset(streamed_rows) - reference
        else:
            # Barrier shape: a resubmittable partial answer, no rows.
            assert barrier.is_partial and barrier_rows == []
            assert barrier.partial_query is not None
            from repro.oql.parser import parse_query

            parse_query(barrier.partial_query)  # the answer *is* a query
            if limit is None:
                # Once the source recovers, resubmitting the partial answer
                # yields exactly the full answer.
                for server in servers:
                    server.bring_up()
                resubmitted = mediator.resubmit(barrier)
                assert multiset(resubmitted.rows()) == reference
                if fault_index is not None:
                    servers[fault_index].take_down()
            if limit is None:
                # Streaming shape: available sources' rows plus the same
                # failure report.
                assert streamed.is_partial
                assert set(streamed.unavailable_sources) == set(
                    barrier.unavailable_sources
                )
                assert set(streamed.errors()) == set(barrier.errors())
                assert report_shape(streamed.reports) == report_shape(barrier.reports)
                assert not multiset(streamed_rows) - reference
            else:
                # A satisfied limit may cancel the failing branch first, in
                # which case the stream completes; otherwise it must report
                # the same failures the barrier engine saw.
                assert len(streamed_rows) <= limit
                assert not multiset(streamed_rows) - reference
                if streamed.is_partial:
                    assert set(streamed.unavailable_sources) <= set(
                        barrier.unavailable_sources
                    )
                else:
                    assert len(streamed_rows) == min(limit, len(streamed_rows))
    finally:
        mediator.close()


def test_resubmitted_distinct_deduplicates_across_union_branches():
    """Regression (found by the 1000-seed sweep): ``distinct`` must stay
    *above* the union in a partial answer.  Distributing it per branch let a
    name present in both the embedded data and the recovered source survive
    resubmission twice."""
    mediator, servers = build_mediator()
    try:
        query = "select distinct x.name from x in person where x.id >= 3"
        reference = multiset(mediator.query(query).rows())
        servers[1].take_down()
        partial = mediator.query(query)
        assert partial.is_partial
        servers[1].bring_up()
        resubmitted = mediator.resubmit(partial)
        assert multiset(resubmitted.rows()) == reference
        # The text round trip deduplicates too: the answer *is* a query.
        assert multiset(mediator.query(partial.partial_query).rows()) == reference
    finally:
        mediator.close()


# -- the answer-cache axis -------------------------------------------------------------------
@pytest.mark.parametrize("seed", CACHE_SEEDS)
def test_cache_on_answers_match_cache_off(seed):
    """Cache transparency: a mediator with the answer cache on must answer
    exactly like one with it off, across warm repeats, subsumed variants,
    DBA schema mutations, and injected faults.  The one sanctioned
    asymmetry: when a source is down, the cached mediator may serve the
    complete answer it already has (serve-during-outage, the point of the
    cache) where the uncached one degrades to a partial answer -- in which
    case the cached rows must equal the fault-free reference."""
    from repro import AnswerCache

    rng = random.Random(31_000 + seed)
    params = dict(
        bind_batch_size=rng.choice([1, 2, 3, 256]),
        no_groupby=rng.random() < 0.25,
    )
    plain, plain_servers = build_mediator(**params)
    cached, cached_servers = build_mediator(**params, answer_cache=AnswerCache())

    def check(text, limit, reference):
        full = text if limit is None else f"{text} limit {limit}"
        off = plain.query(full)
        on = cached.query(full)
        off_rows, on_rows = off.rows(), on.rows()
        if off.is_partial and on.is_partial:
            # Identical partial-answer shape: same missing extents, no rows.
            assert set(on.unavailable_sources) == set(off.unavailable_sources)
            assert off_rows == [] and on_rows == []
        elif not off.is_partial and not on.is_partial:
            if limit is None:
                assert multiset(on_rows) == multiset(off_rows)
            else:
                assert len(on_rows) == len(off_rows)
                assert not multiset(on_rows) - reference
                assert not multiset(off_rows) - reference
        else:
            # Serve-during-outage: only the cached side may stay complete.
            assert off.is_partial and not on.is_partial
            assert on.from_answer_cache
            if limit is None:
                assert multiset(on_rows) == reference
            else:
                assert len(on_rows) == min(limit, sum(reference.values()))
                assert not multiset(on_rows) - reference

    try:
        queries = []
        for _ in range(3):
            text, limit = random_query(rng)
            queries.append((text, limit, multiset(plain.query(text).rows())))

        # Warm, then repeat (exact hits) and a subsumed limit variant.
        for text, limit, reference in queries:
            check(text, limit, reference)
        for text, limit, reference in queries:
            check(text, limit, reference)
            check(text, rng.randint(0, 12), reference)

        # DBA mutation on both sides: answers unchanged, cache invalidated.
        plain.define_interface("Mut", [("id", "Long")], extent_name="muts")
        cached.define_interface("Mut", [("id", "Long")], extent_name="muts")
        for text, limit, reference in queries:
            check(text, limit, reference)

        # Fault injection, mirrored: repeats under the fault, then recovery
        # (the cached side patches partial entries; answers must still agree).
        fault_index = rng.choice([0, 1])
        plain_servers[fault_index].take_down()
        cached_servers[fault_index].take_down()
        for text, limit, reference in queries:
            check(text, limit, reference)
            check(text, limit, reference)
        plain_servers[fault_index].bring_up()
        cached_servers[fault_index].bring_up()
        for text, limit, reference in queries:
            check(text, limit, reference)

        stats = cached.statistics()
        assert stats["answer_cache_hits"] + stats["answer_cache_subsumption_hits"] > 0
    finally:
        plain.close()
        cached.close()


# -- pushed colliding joins (plan-level differential) ----------------------------------------
#: OQL multi-variable queries join at the mediator, so pushed multi-extent
#: joins -- the shape the namespace planner aliases -- are exercised with
#: hand-built submit plans, randomly over rename-capable wrappers (aliased
#: pushdown) and rename-less ones (refuse-to-push split fallback).
PUSHDOWN_SEEDS = range(max(13, len(SEEDS) // 8))


def build_pushdown_mediator(with_rename: bool):
    engine = RelationalEngine(name="dbp")
    engine.create_table(
        "t_cat",
        schema=TableSchema.of(("id", int), ("nm", str)),
        rows=[{"id": i, "nm": f"cat{i % 4}"} for i in range(9)],
    )
    engine.create_table(
        "t_flag",
        schema=TableSchema.of(("id", int), ("nm", str)),
        rows=[{"id": i, "nm": f"flag{i % 2}"} for i in range(7)],
    )
    server = SimulatedServer(name="hp", store=engine)
    capabilities = (
        None if with_rename else CapabilitySet.of("get", "project", "select", "join")
    )
    mediator = Mediator(name="pushdiff")
    mediator.register_wrapper(
        "w0", RelationalWrapper("w0", server, capabilities=capabilities)
    )
    mediator.create_repository("r0")
    mediator.define_interface(
        "Cat", [("id", "Long"), ("cat", "String")], extent_name="cats"
    )
    mediator.define_interface(
        "Flag", [("id", "Long"), ("flag", "String")], extent_name="flags"
    )
    mediator.add_extent(
        "cat0",
        "Cat",
        "w0",
        "r0",
        map=LocalTransformationMap.from_pairs([("t_cat", "cat0"), ("nm", "cat")]),
    )
    mediator.add_extent(
        "flag0",
        "Flag",
        "w0",
        "r0",
        map=LocalTransformationMap.from_pairs([("t_flag", "flag0"), ("nm", "flag")]),
    )
    return mediator, server


@pytest.mark.parametrize("seed", PUSHDOWN_SEEDS)
def test_engines_agree_on_pushed_colliding_joins(seed):
    from repro.algebra.expressions import Comparison, Const, Path, Var

    rng = random.Random(77_000 + seed)
    with_rename = rng.random() < 0.5
    mediator, server = build_pushdown_mediator(with_rename)
    try:
        expression = Join(Get("cat0"), Get("flag0"), "id")
        if rng.random() < 0.5:
            predicate = Comparison(">", Path(Var("x"), "id"), Const(rng.randint(0, 6)))
            expression = Select("x", predicate, expression)
        plan = implement(Submit("r0", expression, extent_name="cat0"))

        healthy = mediator.executor.execute(plan)
        assert not healthy.is_partial
        reference = multiset(healthy.data.to_list())
        # The mediator vocabulary survives the collision in every row.
        for row in healthy.data.to_list():
            fields = dict(row)
            assert "cat" in fields and "flag" in fields and "nm" not in fields

        fault = rng.random() < 0.25
        if fault:
            server.take_down()
        barrier = mediator.executor.execute(plan)
        stream = mediator.executor.execute_stream(plan)
        streamed_rows = stream.to_list()
        if fault:
            assert barrier.is_partial and stream.is_partial
            assert set(barrier.unavailable_sources) == {"cat0"}
            assert set(stream.unavailable_sources) == {"cat0"}
            assert report_shape(stream.reports) == report_shape(barrier.reports)
        else:
            assert multiset(barrier.data.to_list()) == reference
            assert multiset(streamed_rows) == reference
            assert report_shape(stream.reports) == report_shape(barrier.reports)
            expected_split = 0 if with_rename else 2
            for report in (*barrier.reports, *stream.reports):
                assert report.split_calls == expected_split
    finally:
        mediator.close()

"""Tests for the simulated network, availability model and server."""

import pytest

from repro.errors import UnavailableSourceError
from repro.sources.network import AvailabilityModel, NetworkProfile
from repro.sources.relational_engine import RelationalEngine
from repro.sources.server import SimulatedServer


class TestNetworkProfile:
    def test_instant_profile_has_no_delay(self):
        assert NetworkProfile.instant().delay_for(1000) == 0.0

    def test_delay_scales_with_rows(self):
        profile = NetworkProfile(base_latency=0.001, per_row_latency=0.0001)
        assert profile.delay_for(0) == pytest.approx(0.001)
        assert profile.delay_for(100) == pytest.approx(0.011)

    def test_jitter_is_bounded_and_deterministic(self):
        profile_a = NetworkProfile(base_latency=0.0, jitter=0.01, seed=42)
        profile_b = NetworkProfile(base_latency=0.0, jitter=0.01, seed=42)
        delays_a = [profile_a.delay_for(0) for _ in range(5)]
        delays_b = [profile_b.delay_for(0) for _ in range(5)]
        assert delays_a == delays_b
        assert all(0 <= delay <= 0.01 for delay in delays_a)

    def test_lan_and_wan_presets(self):
        assert NetworkProfile.wan().base_latency > NetworkProfile.lan().base_latency


class TestAvailabilityModel:
    def test_available_by_default(self):
        AvailabilityModel().check("r0")

    def test_hard_switch(self):
        model = AvailabilityModel()
        model.set_available(False)
        with pytest.raises(UnavailableSourceError):
            model.check("r0")
        model.set_available(True)
        model.check("r0")

    def test_fail_next_injects_exactly_n_failures(self):
        model = AvailabilityModel()
        model.fail_next(2)
        for _ in range(2):
            with pytest.raises(UnavailableSourceError):
                model.check("r0")
        model.check("r0")

    def test_probabilistic_failures_are_seeded(self):
        outcomes = []
        for _ in range(2):
            model = AvailabilityModel(failure_probability=0.5, seed=7)
            run = []
            for _ in range(20):
                try:
                    model.check("r0")
                    run.append(True)
                except UnavailableSourceError:
                    run.append(False)
            outcomes.append(run)
        assert outcomes[0] == outcomes[1]
        assert not all(outcomes[0]) and any(outcomes[0])

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            AvailabilityModel(failure_probability=1.5)

    def test_error_carries_source_name(self):
        model = AvailabilityModel(available=False)
        with pytest.raises(UnavailableSourceError) as excinfo:
            model.check("r42")
        assert excinfo.value.source_name == "r42"


class TestSimulatedServer:
    def make_server(self, **kwargs) -> SimulatedServer:
        engine = RelationalEngine("db")
        engine.create_table("t", rows=[{"x": i} for i in range(5)])
        return SimulatedServer(name="host", store=engine, **kwargs)

    def test_call_runs_operation_against_store(self):
        server = self.make_server()
        rows = server.call(lambda engine: engine.scan("t"))
        assert len(rows) == 5

    def test_statistics_accumulate(self):
        server = self.make_server(network=NetworkProfile(base_latency=0.001))
        server.call(lambda engine: engine.scan("t"))
        server.call(lambda engine: engine.scan("t"))
        assert server.statistics.requests == 2
        assert server.statistics.rows_returned == 10
        assert server.statistics.simulated_seconds > 0
        server.reset_statistics()
        assert server.statistics.requests == 0

    def test_take_down_and_bring_up(self):
        server = self.make_server()
        server.take_down()
        assert not server.is_up()
        with pytest.raises(UnavailableSourceError):
            server.call(lambda engine: engine.scan("t"))
        assert server.statistics.failures == 1
        server.bring_up()
        assert server.call(lambda engine: engine.scan("t"))

    def test_unavailable_server_does_no_work(self):
        server = self.make_server()
        server.take_down()
        calls = []
        with pytest.raises(UnavailableSourceError):
            server.call(lambda engine: calls.append(1))
        assert calls == []

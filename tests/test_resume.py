"""Mid-stream retries via source-side resume tokens (exactly-once delivery).

The streaming engine's last structural failure-matrix gap: a source that dies
*after delivering rows*.  These tests pin the recovery contract:

* ``token`` wrappers resume source-side -- only the remaining rows are
  shipped (``ServerStatistics.rows_skipped`` counts the seek), delivery is
  exactly-once (no duplicates, no gaps), and the reopen consumes one
  ``max_retries`` attempt;
* ``replay`` wrappers reopen from scratch and the mediator skips the
  already-delivered prefix (``ExecReport.replayed_rows`` counts the re-ship);
* wrappers declaring no resume support -- and configurations without retry
  budget -- keep the documented write-off;
* a persistent mid-stream fault exhausts the budget instead of looping;
* a degraded (compensated) call recovers through the replay path, because
  token positions no longer line up with mediator-compensated rows.
"""

from __future__ import annotations

import pytest

from repro import Mediator, RelationalWrapper
from repro.errors import UnavailableSourceError, WrapperError
from repro.sources import RelationalEngine, SimulatedServer
from repro.wrappers.base import ResumableStream
from repro.wrappers.generator import GeneratorWrapper

ROWS = [{"id": i, "name": f"p{i}", "salary": i} for i in range(30)]
QUERY = "select x.name from x in person0"
EXPECTED = [f"p{i}" for i in range(30)]


def build_relational_mediator(resume="token", capabilities=None, **mediator_kwargs):
    engine = RelationalEngine(name="db0")
    engine.create_table("person0", rows=[dict(row) for row in ROWS])
    server = SimulatedServer(name="h0", store=engine)
    wrapper = RelationalWrapper("w0", server, capabilities=capabilities, resume=resume)
    mediator = Mediator(name="resume", **mediator_kwargs)
    mediator.register_wrapper("w0", wrapper)
    mediator.create_repository("r0")
    mediator.define_interface(
        "Person",
        [("id", "Long"), ("name", "String"), ("salary", "Short")],
        extent_name="person",
    )
    mediator.add_extent("person0", "Person", "w0", "r0")
    return mediator, server


class TestTokenResume:
    def test_killed_call_completes_exactly_once(self):
        mediator, server = build_relational_mediator(max_retries=1)
        server.availability.kill_after(10)
        result = mediator.query_stream(QUERY)
        assert list(result.iter_rows()) == EXPECTED  # no dupes, no gaps
        assert not result.is_partial and result.errors() == {}
        report = result.reports[0]
        assert report.available
        assert report.resumed_calls == 1
        assert report.replayed_rows == 0  # the source skipped, nothing re-shipped
        assert report.attempts == 2  # the reopen consumed one retry
        assert report.rows == 30
        # The server's resume capability seeked past the delivered rows.
        assert server.statistics.rows_skipped == 10
        # Shipped: 10 before the death + the 20 remaining. Never 30 again.
        assert server.statistics.rows_returned == 30
        mediator.close()

    def test_two_consecutive_deaths_need_two_retries(self):
        mediator, server = build_relational_mediator(max_retries=2)
        server.availability.kill_after(5)
        server.availability.kill_after(7)  # dies again 7 rows into the resume
        result = mediator.query_stream(QUERY)
        assert list(result.iter_rows()) == EXPECTED
        report = result.reports[0]
        assert report.resumed_calls == 2
        assert report.attempts == 3
        assert server.statistics.rows_skipped == 5 + 12
        mediator.close()

    def test_death_consumes_budget_with_open_retries(self):
        """Open failure + mid-stream death share one max_retries budget."""
        mediator, server = build_relational_mediator(max_retries=2)
        server.availability.fail_next(1)  # open fails once first
        server.availability.kill_after(4)
        result = mediator.query_stream(QUERY)
        assert list(result.iter_rows()) == EXPECTED
        report = result.reports[0]
        assert report.attempts == 3  # failed open + killed open + resume
        assert report.resumed_calls == 1
        mediator.close()

    def test_persistent_death_exhausts_the_budget(self):
        mediator, server = build_relational_mediator(max_retries=2)
        for _ in range(3):
            server.availability.kill_after(6)
        result = mediator.query_stream(QUERY)
        rows = list(result.iter_rows())
        # Three segments of 6 delivered before the budget ran out.
        assert rows == [f"p{i}" for i in range(18)]
        assert result.is_partial
        assert "person0" in result.errors()
        report = result.reports[0]
        assert not report.available
        assert report.resumed_calls == 2  # two successful recoveries, then out
        assert report.attempts == 3
        mediator.close()

    def test_failure_history_still_learns_from_recovered_deaths(self):
        mediator, server = build_relational_mediator(max_retries=1)
        server.availability.kill_after(10)
        result = mediator.query_stream(QUERY)
        assert len(list(result.iter_rows())) == 30
        # The death was recorded as a failure observation even though the
        # call recovered: availability drops below the optimistic 1.0.
        assert mediator.history.failures == 1
        assert mediator.history.availability("person0") < 1.0
        mediator.close()


class TestReplayResume:
    def test_replay_wrapper_reopens_and_skips(self):
        mediator, server = build_relational_mediator(resume="replay", max_retries=1)
        server.availability.kill_after(10)
        result = mediator.query_stream(QUERY)
        assert list(result.iter_rows()) == EXPECTED
        report = result.reports[0]
        assert report.available
        assert report.resumed_calls == 1
        assert report.replayed_rows == 10  # delivered prefix re-shipped, dropped
        assert server.statistics.rows_skipped == 0
        # Shipped: 10 before the death, then the full 30 again.
        assert server.statistics.rows_returned == 40
        mediator.close()

    def test_replay_disabled_keeps_the_write_off(self):
        mediator, server = build_relational_mediator(resume="replay", max_retries=1)
        mediator.executor.config.replay_resume = False
        server.availability.kill_after(10)
        result = mediator.query_stream(QUERY)
        assert list(result.iter_rows()) == [f"p{i}" for i in range(10)]
        assert result.is_partial
        assert result.reports[0].resumed_calls == 0
        mediator.close()


class TestWriteOffPreserved:
    def test_no_resume_support_keeps_the_write_off(self):
        mediator, server = build_relational_mediator(resume=None, max_retries=3)
        server.availability.kill_after(10)
        result = mediator.query_stream(QUERY)
        assert list(result.iter_rows()) == [f"p{i}" for i in range(10)]
        assert result.is_partial
        assert "person0" in result.errors()
        assert result.reports[0].resumed_calls == 0
        mediator.close()

    def test_no_retry_budget_keeps_the_write_off(self):
        """max_retries=0 (the default): behavior is unchanged from before."""
        mediator, server = build_relational_mediator()
        server.availability.kill_after(10)
        result = mediator.query_stream(QUERY)
        assert list(result.iter_rows()) == [f"p{i}" for i in range(10)]
        assert result.is_partial
        assert result.reports[0].resumed_calls == 0
        assert result.reports[0].attempts == 1
        mediator.close()

    def test_resume_midstream_off_keeps_the_write_off(self):
        mediator, server = build_relational_mediator(max_retries=3)
        mediator.executor.config.resume_midstream = False
        server.availability.kill_after(10)
        result = mediator.query_stream(QUERY)
        assert list(result.iter_rows()) == [f"p{i}" for i in range(10)]
        assert result.is_partial
        mediator.close()

    def test_barrier_engine_retries_whole_calls_and_never_resumes(self):
        """The barrier path materializes calls: a death is a whole-call retry."""
        mediator, server = build_relational_mediator(max_retries=1)
        server.availability.kill_after(10)
        result = mediator.query(QUERY)
        assert sorted(result.rows()) == sorted(EXPECTED)
        report = result.reports[0]
        assert report.attempts == 2
        assert report.resumed_calls == 0 and report.replayed_rows == 0
        mediator.close()


class FlakyScan:
    """A deterministic cursor factory whose first ``failures`` opens die at
    ``fail_at`` rows; later opens stream clean.  Counts rows actually pulled."""

    def __init__(self, total, fail_at, failures=1):
        self.total = total
        self.fail_at = fail_at
        self.failures = failures
        self.opens = 0

    def __call__(self):
        self.opens += 1
        dying = self.opens <= self.failures

        def rows():
            for i in range(self.total):
                if dying and i >= self.fail_at:
                    raise RuntimeError("cursor lost mid-stream")
                yield {"id": i, "name": f"p{i}", "salary": i}

        return rows()


def build_generator_mediator(scan, resume=None, **mediator_kwargs):
    mediator = Mediator(name="genresume", **mediator_kwargs)
    mediator.define_interface(
        "Person",
        [("id", "Long"), ("name", "String"), ("salary", "Short")],
        extent_name="person",
    )
    mediator.register_wrapper(
        "w0",
        GeneratorWrapper(
            "w0",
            {"person0": scan},
            attributes={"person0": ["id", "name", "salary"]},
            resume=resume,
        ),
    )
    mediator.create_repository("r0")
    mediator.add_extent("person0", "Person", "w0", "r0")
    return mediator


class TestGeneratorCursorResume:
    def test_token_resume_on_a_cursor_source(self):
        scan = FlakyScan(50, fail_at=20)
        mediator = build_generator_mediator(scan, resume="token", max_retries=1)
        result = mediator.query_stream(QUERY)
        assert list(result.iter_rows()) == [f"p{i}" for i in range(50)]
        report = result.reports[0]
        assert report.resumed_calls == 1 and report.replayed_rows == 0
        assert scan.opens == 2
        mediator.close()

    def test_deterministically_dying_cursor_gives_up(self):
        """Every reopen dies at the same row: the budget bounds the attempts."""
        scan = FlakyScan(50, fail_at=20, failures=99)
        mediator = build_generator_mediator(scan, resume="token", max_retries=2)
        result = mediator.query_stream(QUERY)
        rows = list(result.iter_rows())
        assert rows == [f"p{i}" for i in range(20)]  # still exactly-once
        assert result.is_partial
        assert scan.opens == 3
        mediator.close()

    def test_undeclared_generator_is_never_replayed(self):
        """No resume declaration on an arbitrary generator: write-off, even
        though retries remain -- replaying an undeclared source is unsound."""
        scan = FlakyScan(50, fail_at=20)
        mediator = build_generator_mediator(scan, resume=None, max_retries=3)
        result = mediator.query_stream(QUERY)
        assert list(result.iter_rows()) == [f"p{i}" for i in range(20)]
        assert result.is_partial
        assert scan.opens == 1
        mediator.close()


class LyingRelationalWrapper(RelationalWrapper):
    """Declares select but its translator rejects it (forces degradation)."""

    def _execute(self, expression):
        from repro.algebra.logical import Select, walk

        if any(isinstance(node, Select) for node in walk(expression)):
            raise WrapperError("translator cannot handle select")
        return super()._execute(expression)


class TestDegradedCallResume:
    def test_degraded_call_recovers_via_replay(self):
        """A compensated call cannot use token positions; replay must kick in
        and re-apply the stripped operators over the reopened stream."""
        engine = RelationalEngine(name="db0")
        engine.create_table("person0", rows=[dict(row) for row in ROWS])
        server = SimulatedServer(name="h0", store=engine)
        wrapper = LyingRelationalWrapper("w0", server)
        mediator = Mediator(name="degres", max_retries=3)
        mediator.register_wrapper("w0", wrapper)
        mediator.create_repository("r0")
        mediator.define_interface(
            "Person",
            [("id", "Long"), ("name", "String"), ("salary", "Short")],
            extent_name="person",
        )
        mediator.add_extent("person0", "Person", "w0", "r0")
        # Attempt 1 submits select(...) -> rejected; attempt 2 submits the
        # degraded bare get, which the kill then murders after 10 rows.
        server.availability.kill_after(10, count=1)
        result = mediator.query_stream(
            "select x.name from x in person0 where x.salary >= 0"
        )
        assert list(result.iter_rows()) == EXPECTED
        report = result.reports[0]
        assert report.available
        assert report.degraded_to is not None
        assert report.resumed_calls == 1
        # The mediator skipped the already-delivered compensated prefix.
        assert report.replayed_rows == 10
        mediator.close()


class DriftingRelationalWrapper(RelationalWrapper):
    """Accepts ``select`` on the first call, rejects it afterwards -- a source
    whose capabilities drift mid-query, forcing a *reopen* to degrade."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.calls = 0

    def _drift(self, expression):
        from repro.algebra.logical import Select, walk

        self.calls += 1
        if self.calls > 1 and any(isinstance(n, Select) for n in walk(expression)):
            raise WrapperError("translator no longer handles select")

    def _execute(self, expression):
        self._drift(expression)
        return super()._execute(expression)

    def _resume_stream(self, expression, token):
        self._drift(expression)
        return super()._resume_stream(expression, token)


class TestReopenEdgeCases:
    QUERY = "select x.name from x in person0 where x.salary >= 0"

    def build_drifting(self, **mediator_kwargs):
        engine = RelationalEngine(name="db0")
        engine.create_table("person0", rows=[dict(row) for row in ROWS])
        server = SimulatedServer(name="h0", store=engine)
        wrapper = DriftingRelationalWrapper("w0", server)
        mediator = Mediator(name="drift", **mediator_kwargs)
        mediator.register_wrapper("w0", wrapper)
        mediator.create_repository("r0")
        mediator.define_interface(
            "Person",
            [("id", "Long"), ("name", "String"), ("salary", "Short")],
            extent_name="person",
        )
        mediator.add_extent("person0", "Person", "w0", "r0")
        return mediator, server

    def test_token_reopen_that_degrades_falls_back_to_replay(self):
        """Capability drift during recovery: the token no longer matches the
        degraded stream, so the reopen replays and skips the delivered rows."""
        mediator, server = self.build_drifting(max_retries=3)
        server.availability.kill_after(10)
        result = mediator.query_stream(self.QUERY)
        assert list(result.iter_rows()) == EXPECTED
        report = result.reports[0]
        assert report.resumed_calls == 1
        assert report.replayed_rows == 10  # re-shipped, deduped at the mediator
        assert report.degraded_to is not None
        mediator.close()

    def test_token_reopen_that_degrades_respects_replay_resume_off(self):
        """replay_resume=False forbids re-shipping delivered rows; a reopen
        that can only proceed by replaying must give up instead."""
        mediator, server = self.build_drifting(max_retries=3)
        mediator.executor.config.replay_resume = False
        server.availability.kill_after(10)
        result = mediator.query_stream(self.QUERY)
        assert list(result.iter_rows()) == [f"p{i}" for i in range(10)]
        assert result.is_partial
        assert result.reports[0].resumed_calls == 0
        # Nothing was ever re-shipped: one killed call, one rejected reopen.
        assert server.statistics.rows_returned == 10
        mediator.close()

    def test_reopen_backoff_is_bounded_by_the_deadline(self):
        """Reopens run on the consumer thread: a huge retry backoff must not
        block iter_rows() past the query's designated time period."""
        import time

        mediator, server = build_relational_mediator(max_retries=2)
        mediator.executor.config.retry_backoff = 30.0
        server.availability.kill_after(10)
        started = time.monotonic()
        result = mediator.query_stream(QUERY, timeout=0.3)
        rows = list(result.iter_rows())
        elapsed = time.monotonic() - started
        assert elapsed < 5.0  # nowhere near the 30s backoff
        assert rows == [f"p{i}" for i in range(10)]  # still exactly-once
        assert result.is_partial
        mediator.close()


class TestResumableStreamProtocol:
    def test_token_tracks_ordinal_position(self):
        stream = ResumableStream(iter([{"a": 1}, {"a": 2}, {"a": 3}]))
        assert stream.token == 0
        next(stream)
        assert stream.token == 1
        assert [row["a"] for row in stream] == [2, 3]
        assert stream.token == 3

    def test_sized_answers_keep_the_open_time_history_fast_path(self):
        """A ResumableStream over a materialized reply is still a sized
        answer: a streaming call cancelled before full drain must record its
        open-time success observation exactly as it did pre-resume-tokens."""
        from repro.algebra.capabilities import CapabilitySet

        # No limit capability: the mklimit stays at the mediator and cancels
        # the call mid-drain once satisfied -- the open-time record is all
        # the history ever gets for this call.
        mediator, _server = build_relational_mediator(
            capabilities=CapabilitySet.of("get", "project", "select")
        )
        result = mediator.query_stream("select x.name from x in person0 limit 5")
        assert len(list(result.iter_rows())) == 5
        mediator.close()  # reap the cancelled remainder
        assert mediator.history.recorded_calls() == 1
        assert mediator.history.availability("person0") == 1.0

    def test_base_wrapper_rejects_resume_tokens(self):
        from repro.algebra.capabilities import CapabilitySet
        from repro.algebra.logical import Get
        from repro.errors import CapabilityError
        from repro.wrappers.base import Wrapper

        class Plain(Wrapper):
            def _execute(self, expression):
                return []

        wrapper = Plain("plain", CapabilitySet.get_only())
        with pytest.raises(CapabilityError):
            wrapper.submit_stream(Get("c"), resume_from=3)

    def test_kill_after_validates_and_arms(self):
        from repro.sources.network import AvailabilityModel

        model = AvailabilityModel()
        with pytest.raises(ValueError):
            model.kill_after(-1)
        model.kill_after(2, count=2)
        assert model.take_kill() == (2, None)
        assert model.take_kill() == (2, None)
        assert model.take_kill() is None

    def test_kill_after_with_custom_exception_class(self):
        mediator, server = build_relational_mediator(resume=None)
        server.availability.kill_after(3, exception=UnavailableSourceError)
        result = mediator.query_stream(QUERY)
        assert list(result.iter_rows()) == [f"p{i}" for i in range(3)]
        assert "UnavailableSourceError" in result.errors()["person0"]
        mediator.close()


class TestDedicatedResumeBudget:
    """``max_resumes``: mid-stream reopens get their own budget.

    The shared accounting makes fail-fast mediators unrecoverable: with
    ``max_retries=0`` a stream that dies mid-transfer is written off even
    though the source could resume it.  ``max_resumes`` decouples the two
    budgets -- fresh-call failures still fail fast, reopens draw from their
    own allowance, and ``ExecReport.resume_attempts`` accounts for them.
    """

    def test_fail_fast_mediator_still_recovers_midstream(self):
        # max_retries=0 (fresh calls fail fast) + max_resumes=2: previously
        # impossible -- the headline configuration this knob exists for.
        mediator, server = build_relational_mediator(max_retries=0, max_resumes=2)
        server.availability.kill_after(10)
        result = mediator.query_stream(QUERY)
        assert list(result.iter_rows()) == EXPECTED
        report = result.reports[0]
        assert report.available
        assert report.resumed_calls == 1
        assert report.resume_attempts == 1  # charged to the dedicated budget
        assert server.statistics.rows_skipped == 10
        mediator.close()

    def test_resumes_do_not_draw_down_retries(self):
        # One retry, one resume: a killed stream consumes the resume budget
        # and the attempt counter still shows the retry untouched (attempts
        # stays at the initial open).
        mediator, server = build_relational_mediator(max_retries=1, max_resumes=1)
        server.availability.kill_after(10)
        result = mediator.query_stream(QUERY)
        assert list(result.iter_rows()) == EXPECTED
        report = result.reports[0]
        assert report.resumed_calls == 1
        assert report.resume_attempts == 1
        mediator.close()

    def test_budget_exhaustion_writes_off(self):
        mediator, server = build_relational_mediator(max_retries=0, max_resumes=1)
        server.availability.kill_after(5)
        server.availability.kill_after(5)  # second death: no budget left
        result = mediator.query_stream(QUERY)
        rows = list(result.iter_rows())
        assert rows == [f"p{i}" for i in range(10)]  # 5 + 5 delivered, then cut
        assert result.is_partial
        report = result.reports[0]
        assert report.resumed_calls == 1
        assert report.resume_attempts == 1
        mediator.close()

    def test_zero_disables_recovery_outright(self):
        mediator, server = build_relational_mediator(max_retries=3, max_resumes=0)
        server.availability.kill_after(5)
        result = mediator.query_stream(QUERY)
        assert list(result.iter_rows()) == [f"p{i}" for i in range(5)]
        assert result.is_partial
        assert result.reports[0].resume_attempts == 0
        mediator.close()

    def test_legacy_accounting_reports_zero_resume_attempts(self):
        # Without max_resumes the reopen is charged to attempts, exactly as
        # before this knob existed; resume_attempts stays 0.
        mediator, server = build_relational_mediator(max_retries=1)
        server.availability.kill_after(10)
        result = mediator.query_stream(QUERY)
        assert list(result.iter_rows()) == EXPECTED
        report = result.reports[0]
        assert report.attempts == 2
        assert report.resume_attempts == 0
        mediator.close()

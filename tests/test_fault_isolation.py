"""Tests for the fault-isolating exec engine.

Any exception escaping a wrapper -- not just a clean
``UnavailableSourceError`` -- must degrade the query into a partial answer
(paper Section 4's availability claim), the failure must be visible on the
reports, retried when configured, recorded in the cost-model history with its
true elapsed time, and recoverable through ``resubmit()``.
"""

import time

import pytest

from repro import Bag
from repro.errors import TypeConflictError
from repro.sources.network import NetworkProfile
from tests.conftest import build_paper_mediator

QUERY = "select x.name from x in person"


class TestGenericCrashIsolation:
    def test_wrapper_crash_yields_partial_answer(self):
        """A generic exception mid-flight is unavailability, not a query failure."""
        mediator, servers = build_paper_mediator()
        servers[0].availability.crash_next(RuntimeError("connection reset by peer"))
        result = mediator.query(QUERY)
        assert result.is_partial
        assert result.unavailable_sources == ("person0",)
        # the healthy source's data is folded into the partial answer
        assert "Sam" in result.partial_query

    def test_error_is_surfaced_on_result_and_reports(self):
        mediator, servers = build_paper_mediator()
        servers[0].availability.crash_next(RuntimeError("connection reset by peer"))
        result = mediator.query(QUERY)
        assert result.errors() == {"person0": "RuntimeError: connection reset by peer"}
        failed = next(r for r in result.reports if not r.available)
        assert failed.extent_name == "person0"
        assert "connection reset" in failed.error
        healthy = next(r for r in result.reports if r.available)
        assert healthy.error is None

    def test_crash_next_accepts_exception_classes(self):
        mediator, servers = build_paper_mediator()
        servers[1].availability.crash_next(ValueError, count=1)
        result = mediator.query(QUERY)
        assert result.is_partial
        assert result.unavailable_sources == ("person1",)
        assert result.errors()["person1"].startswith("ValueError")

    def test_failed_calls_enter_history_with_true_elapsed(self):
        mediator, servers = build_paper_mediator()
        assert mediator.history.failures == 0
        servers[0].availability.crash_next(RuntimeError("boom"))
        mediator.query(QUERY)
        assert mediator.history.failures == 1

    def test_resubmit_after_source_recovers(self):
        """The partial answer is a query; re-running it after recovery completes it."""
        mediator, servers = build_paper_mediator()
        servers[0].availability.crash_next(RuntimeError("boom"))
        partial = mediator.query(QUERY)
        assert partial.is_partial
        recovered = mediator.resubmit(partial)
        assert not recovered.is_partial
        assert recovered.data == Bag(["Mary", "Sam"])

    def test_result_stream_crashing_mid_iteration_is_isolated_too(self):
        """A lazy wrapper result that dies halfway through is a source failure."""
        mediator, _ = build_paper_mediator()
        wrapper = mediator.registry.wrapper_object("w0")

        def broken_stream(expression):
            yield {"id": 1, "name": "Mary", "salary": 200}
            raise RuntimeError("stream broke mid-flight")

        wrapper.submit = broken_stream
        result = mediator.query(QUERY)
        assert result.is_partial
        assert result.unavailable_sources == ("person0",)
        assert "stream broke mid-flight" in result.errors()["person0"]

    def test_errors_aggregates_multiple_failures_per_extent(self):
        from repro.core.result import QueryResult
        from repro.runtime.executor import ExecReport

        def report(error):
            return ExecReport(
                extent_name="person0", source="r0", expression="get(person0)",
                elapsed=0.0, rows=0, available=False, error=error,
            )

        result = QueryResult(
            query_text="q", reports=(report("timed out after 0.1s"), report("RuntimeError: x"))
        )
        assert result.errors() == {"person0": "timed out after 0.1s; RuntimeError: x"}

    def test_mediator_side_type_conflict_still_raises(self):
        """Planning errors are DBA bugs, not source failures: they must not be masked."""
        mediator, _ = build_paper_mediator()
        mediator.define_interface(
            "PersonPrime", [("n", "String"), ("s", "Short")], extent_name="personprime"
        )
        mediator.add_extent(
            "personprime0", "PersonPrime", "w0", "r0", source_collection="person0"
        )
        with pytest.raises(TypeConflictError):
            mediator.query("select x.n from x in personprime0")


class TestQueryAbort:
    def test_abort_writes_off_inflight_retries(self):
        """A mediator-side error aborts the query AND stops sibling retry loops."""
        mediator, servers = build_paper_mediator(max_retries=5)
        mediator.executor.config.retry_backoff = 0.05
        wrapper0 = mediator.registry.wrapper_object("w0")
        wrapper0.source_attributes = lambda collection: ["id"]  # person0 type-conflicts
        servers[1].availability.crash_next(RuntimeError("flaky"), count=10)
        with pytest.raises(TypeConflictError):
            mediator.query(QUERY)
        # person1's worker was written off: at most its first attempt or two
        # landed in history; without the write-off it would retry 6 times
        # (~1.5s of backoff) and record 6 failures after the query returned.
        time.sleep(0.3)
        failures = mediator.history.failures
        assert failures <= 2
        time.sleep(0.2)
        assert mediator.history.failures == failures


class TestRetries:
    def test_retry_recovers_from_a_transient_crash(self):
        mediator, servers = build_paper_mediator(max_retries=2)
        mediator.executor.config.retry_backoff = 0.001
        servers[0].availability.crash_next(RuntimeError("transient"))
        result = mediator.query(QUERY)
        assert not result.is_partial
        report = next(r for r in result.reports if r.extent_name == "person0")
        assert report.attempts == 2
        assert mediator.history.failures == 1

    def test_exhausted_retries_degrade_to_partial(self):
        mediator, servers = build_paper_mediator(max_retries=1)
        mediator.executor.config.retry_backoff = 0.001
        servers[0].availability.crash_next(RuntimeError("persistent"), count=5)
        result = mediator.query(QUERY)
        assert result.is_partial
        report = next(r for r in result.reports if r.extent_name == "person0")
        assert report.attempts == 2
        assert mediator.history.failures == 2

    def test_retries_are_off_by_default(self):
        mediator, servers = build_paper_mediator()
        servers[0].availability.crash_next(RuntimeError("boom"), count=5)
        result = mediator.query(QUERY)
        assert result.is_partial
        report = next(r for r in result.reports if r.extent_name == "person0")
        assert report.attempts == 1


class TestGlobalDeadline:
    def test_deadline_bounds_wall_clock_not_sum_of_latencies(self):
        """Two sources slower than the deadline cost one deadline, not two."""
        mediator, servers = build_paper_mediator()
        for server in servers:
            server.network = NetworkProfile(base_latency=0.4)
            server.real_sleep = True
        started = time.monotonic()
        result = mediator.query(QUERY, timeout=0.15)
        elapsed = time.monotonic() - started
        assert result.is_partial
        assert set(result.unavailable_sources) == {"person0", "person1"}
        assert elapsed < 0.4  # well under the 0.8s the two sleeps sum to

    def test_timed_out_report_carries_true_elapsed_and_reason(self):
        mediator, servers = build_paper_mediator()
        servers[0].network = NetworkProfile(base_latency=0.5)
        servers[0].real_sleep = True
        result = mediator.query(QUERY, timeout=0.1)
        report = next(r for r in result.reports if r.extent_name == "person0")
        assert not report.available
        assert "timed out" in report.error
        assert report.elapsed >= 0.08  # the true time spent, not 0.0
        assert mediator.history.failures == 1

    def test_zombie_worker_does_not_record_a_second_observation(self):
        """A call that outlives the deadline is recorded once, at the deadline."""
        mediator, servers = build_paper_mediator()
        servers[0].network = NetworkProfile(base_latency=0.2)
        servers[0].real_sleep = True
        result = mediator.query(QUERY, timeout=0.05)
        assert result.unavailable_sources == ("person0",)
        assert mediator.history.failures == 1
        time.sleep(0.3)  # let the zombie worker finish its 0.2s sleep
        assert mediator.history.failures == 1
        person0_queues = [
            queue
            for key, queue in mediator.history._exact.items()
            if key.startswith("person0|")
        ]
        assert person0_queues and all(len(queue) == 1 for queue in person0_queues)

    def test_reports_stay_in_submission_order(self):
        """Collection is completion-order but reports stay deterministic."""
        mediator, servers = build_paper_mediator()
        # person0 answers *after* person1 despite being submitted first
        servers[0].network = NetworkProfile(base_latency=0.05)
        servers[0].real_sleep = True
        result = mediator.query(QUERY)
        assert [r.extent_name for r in result.reports] == ["person0", "person1"]


class TestSharedPool:
    def test_pool_is_shared_across_queries(self):
        mediator, _ = build_paper_mediator()
        mediator.query(QUERY)
        pool = mediator.executor._pool
        assert pool is not None
        mediator.query(QUERY)
        assert mediator.executor._pool is pool

    def test_close_releases_the_pool_and_queries_recreate_it(self):
        mediator, _ = build_paper_mediator()
        mediator.query(QUERY)
        mediator.close()
        assert mediator.executor._pool is None
        result = mediator.query(QUERY)  # transparently recreates the pool
        assert result.data == Bag(["Mary", "Sam"])
        mediator.close()

    def test_mediator_is_a_context_manager(self):
        mediator, _ = build_paper_mediator()
        with mediator:
            assert mediator.query(QUERY).data == Bag(["Mary", "Sam"])
        assert mediator.executor._pool is None


class TestPublicSubqueryApi:
    def test_evaluate_subquery_is_public_and_aliased(self):
        from repro.runtime.executor import Executor

        assert Executor._evaluate_subquery is Executor.evaluate_subquery

    def test_scalar_queries_use_the_public_entry_point(self):
        mediator, _ = build_paper_mediator()
        result = mediator.query("count(select x.name from x in person)")
        assert result.data == 2

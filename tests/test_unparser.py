"""Tests for rendering logical plans back to OQL (needed for partial answers)."""

import pytest

from repro.algebra.expressions import Comparison, Const, Path, Var
from repro.algebra.logical import (
    Apply,
    BagLiteral,
    Flatten,
    Get,
    Join,
    LogicalOp,
    Project,
    Select,
    Submit,
    Union,
)
from repro.algebra.unparser import logical_to_oql
from repro.datamodel.values import Struct
from repro.errors import QueryExecutionError
from repro.oql.parser import parse_query


def salary_predicate(var="x"):
    return Comparison(">", Path(Var(var), "salary"), Const(10))


class TestUnparser:
    def test_get_renders_as_trivial_select(self):
        assert logical_to_oql(Get("person0")) == "select x0 from x0 in person0"

    def test_submit_is_transparent(self):
        text = logical_to_oql(Submit("r0", Get("person0"), extent_name="person0"))
        assert text == "select x0 from x0 in person0"

    def test_project_single_attribute(self):
        text = logical_to_oql(Project(("name",), Get("person0")))
        assert text == "select x0.name from x0 in person0"

    def test_project_multiple_attributes_uses_struct(self):
        text = logical_to_oql(Project(("name", "salary"), Get("person0")))
        assert "struct(name: x0.name, salary: x0.salary)" in text

    def test_select_becomes_where_clause(self):
        text = logical_to_oql(Select("x", salary_predicate(), Get("person0")))
        assert text == "select x0 from x0 in person0 where x0.salary > 10"

    def test_paper_partial_answer_shape(self):
        """union(select ..., Bag("Sam")) -- the paper's Section 1.3 answer."""
        plan = Union(
            (
                Project(
                    ("name",),
                    Select("y", salary_predicate("y"), Submit("r0", Get("person0"))),
                ),
                BagLiteral(("Sam",)),
            )
        )
        text = logical_to_oql(plan)
        assert text == (
            'union(select x0.name from x0 in person0 where x0.salary > 10, Bag("Sam"))'
        )

    def test_partial_answer_text_is_parseable(self):
        plan = Union(
            (
                Project(("name",), Select("y", salary_predicate("y"), Submit("r0", Get("person0")))),
                BagLiteral(("Sam",)),
            )
        )
        parse_query(logical_to_oql(plan))

    def test_bag_literal_with_structs_is_parseable(self):
        plan = BagLiteral((Struct({"name": "Sam", "salary": 50}),))
        text = logical_to_oql(plan)
        assert text == 'Bag(struct(name: "Sam", salary: 50))'
        parse_query(text)

    def test_apply_renders_expression(self):
        plan = Apply("x", Path(Var("x"), "name"), Get("person0"))
        assert logical_to_oql(plan) == "select x0.name from x0 in person0"

    def test_join_renders_two_sources_and_condition(self):
        plan = Join(Get("employee0"), Get("manager0"), "dept")
        text = logical_to_oql(plan)
        assert "from x0 in employee0, x1 in manager0" in text
        assert "x0.dept = x1.dept" in text

    def test_flatten_and_nested_union(self):
        plan = Flatten(Union((Get("a"), Get("b"))))
        text = logical_to_oql(plan)
        assert text.startswith("flatten(union(")

    def test_union_as_from_source(self):
        plan = Project(("name",), Union((Get("a"), BagLiteral(("Sam",)))))
        text = logical_to_oql(plan)
        assert "in (union(" in text
        parse_query(text)

    def test_distinct_renders_as_select_distinct(self):
        from repro.algebra.logical import Distinct

        text = logical_to_oql(Distinct(Get("person0")))
        assert text == "select distinct x0 from x0 in person0"

    def test_bindjoin_renders_as_multi_variable_from(self):
        from repro.algebra.logical import BindJoin
        from repro.oql.parser import parse_query

        text = logical_to_oql(BindJoin(Get("a"), Get("b"), "x", "y"))
        assert text == "select struct(x: x, y: y) from x in a, y in b"
        parse_query(text)

    def test_unsupported_operator_raises(self):
        class Mystery(LogicalOp):
            op_name = "mystery"

            def to_text(self):
                return "mystery()"

        with pytest.raises(QueryExecutionError):
            logical_to_oql(Mystery())
